//! Golden-value regression test.
//!
//! A tiny fixed 6-sample / 3-class / 2-feature / 2-attribute dataset with the
//! trainer output committed as constants. The closed form
//! `W = (XᵀX + γI)⁻¹ XᵀYS (SᵀS + λI)⁻¹` with γ = λ = 0.1 was evaluated once
//! and frozen below; any future refactor of the matmul / Cholesky / trainer
//! hot paths that silently changes numerics fails this test.

// The frozen constants keep every digit the trainer produced, even where a
// shorter literal would round to the same f64.
#![allow(clippy::excessive_precision)]

use zsl_core::infer::{Classifier, Similarity};
use zsl_core::linalg::Matrix;
use zsl_core::model::EszslConfig;

/// Two samples per class. Class 0 lives near feature (1,0), class 1 near
/// (0,1), class 2 near (1,1) — mirroring the attribute signatures exactly.
fn golden_inputs() -> (Matrix, Vec<usize>, Matrix) {
    let x = Matrix::from_rows(&[
        vec![1.0, 0.0],
        vec![0.9, 0.1],
        vec![0.0, 1.0],
        vec![0.1, 0.9],
        vec![1.0, 1.0],
        vec![0.9, 1.1],
    ]);
    let labels = vec![0, 0, 1, 1, 2, 2];
    let s = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
    (x, labels, s)
}

/// Frozen output of the γ = λ = 0.1 closed form on `golden_inputs`.
const GOLDEN_W: [[f64; 2]; 2] = [
    [6.402_481_153_367_824e-1, -3.235_786_338_302_802_4e-1],
    [-2.923_777_792_887_737_3e-1, 6.102_536_207_248_247e-1],
];

/// Frozen cosine scores for the three probe samples below.
const GOLDEN_SCORES: [[f64; 3]; 3] = [
    [
        8.802_505_516_706_164e-1,
        -4.745_091_846_145_609_3e-1,
        2.869_024_720_532_368_8e-1,
    ],
    [
        -4.320_776_173_653_739_3e-1,
        9.018_364_222_916_824e-1,
        3.321_696_364_854_812e-1,
    ],
    [
        8.166_625_264_063_641e-1,
        5.771_155_152_684_554e-1,
        9.855_499_047_371_712e-1,
    ],
];

#[test]
fn trainer_reproduces_golden_weights() {
    let (x, labels, s) = golden_inputs();
    let model = EszslConfig::new()
        .gamma(0.1)
        .lambda(0.1)
        .build()
        .train(&x, &labels, &s)
        .expect("train");
    let w = model.weights();
    assert_eq!((w.rows(), w.cols()), (2, 2));
    for (r, golden_row) in GOLDEN_W.iter().enumerate() {
        for (c, &golden) in golden_row.iter().enumerate() {
            let got = w.get(r, c);
            assert!(
                (got - golden).abs() < 1e-12,
                "W[{r}][{c}] drifted: got {got:.17e}, golden {golden:.17e}"
            );
        }
    }
}

#[test]
fn classifier_reproduces_golden_scores_and_predictions() {
    let (x, labels, s) = golden_inputs();
    let model = EszslConfig::new()
        .gamma(0.1)
        .lambda(0.1)
        .build()
        .train(&x, &labels, &s)
        .expect("train");
    let clf = Classifier::new(model, s, Similarity::Cosine);

    let probes = Matrix::from_rows(&[vec![1.05, -0.05], vec![0.0, 1.1], vec![1.0, 0.95]]);
    assert_eq!(clf.predict(&probes), vec![0, 1, 2]);

    let scores = clf.scores(&probes);
    for (r, golden_row) in GOLDEN_SCORES.iter().enumerate() {
        for (c, &golden) in golden_row.iter().enumerate() {
            let got = scores.get(r, c);
            assert!(
                (got - golden).abs() < 1e-12,
                "score[{r}][{c}] drifted: got {got:.17e}, golden {golden:.17e}"
            );
        }
    }
}
