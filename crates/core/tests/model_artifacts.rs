//! Test layer for the `.zsm` model-artifact format: property round trips,
//! a committed golden artifact, and the `.zsb`-style error paths.
//!
//! Three layers, mirroring the dataset-bundle suites:
//!
//! 1. **Property** — random engines (dims × similarities × metadata) save
//!    and reload to bit-identical scores, predictions, weights, and cached
//!    banks.
//! 2. **Golden** — `tests/fixtures/tiny_bundle/model.zsm` is committed; it
//!    must load and reproduce the fixture's frozen `GzslReport` bits
//!    (`GOLDEN_REPORT_BITS`, shared with `golden_loader.rs`). Regenerate via
//!    the `--ignored regenerate_model_artifact` test after intentional
//!    format changes.
//! 3. **Errors** — truncation at every section boundary, bad magic, version
//!    skew, unknown flags, bad similarity codes, inconsistent normalization
//!    flags, trailing bytes, overflowing dims, non-UTF-8 metadata, and
//!    non-finite payloads are all typed [`DataError`]s, never panics.

use std::path::PathBuf;
use zsl_core::data::{DataError, DatasetBundle, Rng};
use zsl_core::eval::evaluate_gzsl_with;
use zsl_core::infer::{ScoringEngine, Similarity};
use zsl_core::linalg::Matrix;
use zsl_core::model::{EszslConfig, ProjectionModel};
use zsl_core::{ZslError, ZSM_HEADER_LEN};

/// Frozen `GzslReport` bits of the γ = λ = 1 cosine engine on the fixture —
/// the same constants `golden_loader.rs` pins (seen 0.25, unseen 0.5,
/// harmonic mean 1/3).
const GOLDEN_REPORT_BITS: [u64; 3] = [
    0x3fd0_0000_0000_0000,
    0x3fe0_0000_0000_0000,
    0x3fd5_5555_5555_5555,
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "zsl_model_artifact_{}_{tag}.zsm",
        std::process::id()
    ))
}

fn random_engine(seed: u64, d: usize, a: usize, z: usize, sim: Similarity) -> ScoringEngine {
    let mut rng = Rng::new(seed);
    let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
    ScoringEngine::new(ProjectionModel::from_weights(w), bank, sim)
}

/// The γ = λ = 1 cosine engine over the fixture's union bank — the engine
/// the committed golden artifact freezes.
fn fixture_engine() -> ScoringEngine {
    let ds = DatasetBundle::load(&fixture_dir())
        .expect("load fixture")
        .to_dataset()
        .expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine)
}

// ---------------------------------------------------------------------------
// Property layer
// ---------------------------------------------------------------------------

#[test]
fn random_models_round_trip_to_bit_identical_predictions() {
    let path = temp_path("property");
    let mut case = 0u64;
    for (d, a, z) in [(3usize, 2usize, 4usize), (17, 5, 3), (8, 8, 40), (1, 1, 1)] {
        for sim in [Similarity::Cosine, Similarity::Dot] {
            case += 1;
            let metadata = format!("case={case}; d={d}; a={a}; z={z}; sim={sim}; unicode=γλ✓");
            let engine = random_engine(0xA1 + case, d, a, z, sim);
            engine.save_with_metadata(&path, &metadata).expect("save");
            let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
            assert_eq!(meta, metadata);
            assert_eq!(back.similarity(), sim, "case {case}");
            assert_eq!(
                back.model().weights().as_slice(),
                engine.model().weights().as_slice(),
                "case {case}: weights drifted"
            );
            assert_eq!(
                back.signatures().as_slice(),
                engine.signatures().as_slice(),
                "case {case}: cached bank drifted"
            );
            // Scores and predictions over a random batch are bit-identical.
            let mut rng = Rng::new(0xBA7 + case);
            let x = Matrix::from_vec(11, d, (0..11 * d).map(|_| rng.normal()).collect());
            assert_eq!(
                back.scores(&x).as_slice(),
                engine.scores(&x).as_slice(),
                "case {case}: scores drifted"
            );
            assert_eq!(back.predict(&x), engine.predict(&x), "case {case}");
            // A second save of the reloaded engine is byte-identical: the
            // format is a fixed point, not an approximation.
            let path2 = temp_path("property2");
            back.save_with_metadata(&path2, &metadata).expect("resave");
            assert_eq!(
                std::fs::read(&path).expect("read a"),
                std::fs::read(&path2).expect("read b"),
                "case {case}: resave not byte-identical"
            );
            std::fs::remove_file(&path2).ok();
        }
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Golden layer
// ---------------------------------------------------------------------------

#[test]
fn committed_artifact_reproduces_the_frozen_gzsl_report() {
    let dir = fixture_dir();
    let (engine, metadata) =
        ScoringEngine::load_with_metadata(&dir.join("model.zsm")).expect("load golden artifact");
    assert!(
        metadata.contains("gamma=1") && metadata.contains("lambda=1"),
        "provenance metadata lost: {metadata}"
    );
    // Serving boots from the artifact + the evaluation source alone — no
    // training data, no re-solve.
    let ds = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let report = evaluate_gzsl_with(&engine, &ds).expect("evaluate");
    let got = [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ];
    assert_eq!(
        got, GOLDEN_REPORT_BITS,
        "served GzslReport drifted: got ({}, {}, {}), bits {got:#018x?}",
        report.seen_accuracy, report.unseen_accuracy, report.harmonic_mean
    );
    // And the artifact bytes themselves are what a fresh train would save.
    let fresh = fixture_engine();
    assert_eq!(
        engine.model().weights().as_slice(),
        fresh.model().weights().as_slice(),
        "artifact weights drifted from a fresh fixture train"
    );
    assert_eq!(
        engine.signatures().as_slice(),
        fresh.signatures().as_slice()
    );
}

/// Regenerate the committed golden artifact. Intentional format changes
/// only — run, then commit the new `tests/fixtures/tiny_bundle/model.zsm`:
/// `cargo test -p zsl-core --test model_artifacts -- --ignored regenerate`
#[test]
#[ignore = "writes the committed fixture; run explicitly after intentional format changes"]
fn regenerate_model_artifact() {
    let path = fixture_dir().join("model.zsm");
    fixture_engine()
        .save_with_metadata(
            &path,
            "trainer=eszsl; gamma=1; lambda=1; normalize_features=false; \
             normalize_signatures=false; similarity=cosine; seen_classes=4; unseen_classes=2",
        )
        .expect("save golden artifact");
    println!("wrote {}", path.display());
}

// ---------------------------------------------------------------------------
// Error-path layer (mirrors loader_errors.rs)
// ---------------------------------------------------------------------------

/// A small valid artifact to corrupt, as raw bytes.
fn valid_artifact_bytes(tag: &str) -> (PathBuf, Vec<u8>) {
    let path = temp_path(tag);
    random_engine(7, 4, 3, 5, Similarity::Cosine)
        .save_with_metadata(&path, "m")
        .expect("save");
    let bytes = std::fs::read(&path).expect("read");
    (path, bytes)
}

fn expect_data_err(path: &std::path::Path) -> DataError {
    match ScoringEngine::load(path) {
        Err(ZslError::Data(e)) => e,
        other => panic!("expected ZslError::Data, got {other:?}"),
    }
}

#[test]
fn truncated_artifacts_are_typed_truncation_errors() {
    let (path, bytes) = valid_artifact_bytes("truncated");
    // Cut inside the header, inside the metadata, inside W, inside the bank.
    let meta_end = ZSM_HEADER_LEN as usize + 1;
    let w_end = meta_end + 8 * 4 * 3;
    for keep in [
        10,
        ZSM_HEADER_LEN as usize,
        meta_end + 5,
        w_end + 9,
        bytes.len() - 1,
    ] {
        std::fs::write(&path, &bytes[..keep]).expect("truncate");
        match expect_data_err(&path) {
            DataError::Truncated {
                expected, actual, ..
            } => {
                assert_eq!(actual, keep as u64);
                assert!(expected > actual, "keep={keep}: {expected} > {actual}");
            }
            other => panic!("keep={keep}: expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_version_flags_similarity_and_trailing_bytes_are_header_errors() {
    let (path, pristine) = valid_artifact_bytes("header");

    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
        let mut bytes = pristine.clone();
        mutate(&mut bytes);
        std::fs::write(&path, &bytes).expect("write");
        expect_data_err(&path)
    };

    for (what, mutate) in [
        (
            "magic",
            (&|b: &mut Vec<u8>| b[0..4].copy_from_slice(b"NOPE")) as &dyn Fn(&mut Vec<u8>),
        ),
        ("version", &|b| {
            b[4..6].copy_from_slice(&99u16.to_le_bytes())
        }),
        ("flags", &|b| {
            b[6..8].copy_from_slice(&0x8000u16.to_le_bytes())
        }),
        ("similarity", &|b| b[8] = 7),
        ("reserved", &|b| b[12] = 1),
        ("trailing", &|b| b.extend_from_slice(&[0u8; 5])),
        // Cosine engine whose flag claims an unnormalized bank.
        ("flag-consistency", &|b| {
            b[6..8].copy_from_slice(&0u16.to_le_bytes())
        }),
    ] {
        let err = corrupt(mutate);
        assert!(
            matches!(err, DataError::Header { .. }),
            "{what} corruption must be a Header error, got {err:?}"
        );
    }

    // Version skew message names both versions, steering the operator.
    let err = corrupt(&|b| b[4..6].copy_from_slice(&2u16.to_le_bytes()));
    match err {
        DataError::Header { message, .. } => {
            assert!(message.contains("unsupported version 2"), "got: {message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn overflowing_dims_and_zero_dims_are_header_errors_not_panics() {
    let (path, pristine) = valid_artifact_bytes("overflow");
    // Crafted dims that would wrap the expected-length arithmetic.
    for (d, a, z) in [
        (1u64 << 62, 2u64, 1u64),
        (1u64 << 31, 1u64 << 31, 1),
        (1, 2, u64::MAX / 4),
    ] {
        let mut bytes = pristine[..ZSM_HEADER_LEN as usize].to_vec();
        bytes[16..24].copy_from_slice(&d.to_le_bytes());
        bytes[24..32].copy_from_slice(&a.to_le_bytes());
        bytes[32..40].copy_from_slice(&z.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        match expect_data_err(&path) {
            DataError::Header { message, .. } => {
                assert!(message.contains("overflow"), "d={d} a={a} z={z}: {message}")
            }
            other => panic!("d={d} a={a} z={z}: expected Header, got {other:?}"),
        }
    }
    // Zero dims are rejected outright.
    let mut bytes = pristine.clone();
    bytes[16..24].copy_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(expect_data_err(&path), DataError::Header { .. }));
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_metadata_and_nonfinite_payloads_are_header_errors() {
    let (path, pristine) = valid_artifact_bytes("payload");
    // Metadata is 1 byte ("m"); replace it with an invalid UTF-8 byte.
    let mut bad_meta = pristine.clone();
    bad_meta[ZSM_HEADER_LEN as usize] = 0xFF;
    std::fs::write(&path, &bad_meta).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => assert!(message.contains("UTF-8"), "{message}"),
        other => panic!("expected Header, got {other:?}"),
    }
    // NaN inside W.
    let mut bad_w = pristine.clone();
    let w_start = ZSM_HEADER_LEN as usize + 1;
    bad_w[w_start..w_start + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    std::fs::write(&path, &bad_w).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("non-finite weight"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // Infinity inside the bank.
    let mut bad_bank = pristine.clone();
    let bank_start = ZSM_HEADER_LEN as usize + 1 + 8 * 4 * 3;
    bad_bank[bank_start..bank_start + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
    std::fs::write(&path, &bad_bank).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("non-finite signature"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
