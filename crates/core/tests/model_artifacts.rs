//! Test layer for the `.zsm` model-artifact format: property round trips,
//! a committed golden artifact, and the `.zsb`-style error paths.
//!
//! Three layers, mirroring the dataset-bundle suites:
//!
//! 1. **Property** — random engines (dims × similarities × metadata) save
//!    and reload to bit-identical scores, predictions, weights, and cached
//!    banks.
//! 2. **Golden** — `tests/fixtures/tiny_bundle/model.zsm` is committed; it
//!    must load and reproduce the fixture's frozen `GzslReport` bits
//!    (`GOLDEN_REPORT_BITS`, shared with `golden_loader.rs`). Regenerate via
//!    the `--ignored regenerate_model_artifact` test after intentional
//!    format changes.
//! 3. **Errors** — truncation at every section boundary, bad magic, version
//!    skew, unknown flags, bad similarity codes, inconsistent normalization
//!    flags, trailing bytes, overflowing dims, non-UTF-8 metadata, and
//!    non-finite payloads are all typed [`DataError`]s, never panics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use zsl_core::data::{DataError, DatasetBundle, Rng, SyntheticConfig};
use zsl_core::eval::evaluate_gzsl_with;
use zsl_core::infer::{ScoringEngine, ScoringPrecision, Similarity};
use zsl_core::linalg::Matrix;
use zsl_core::model::{EszslConfig, ProjectionModel};
use zsl_core::trainer::{KernelEszslConfig, KernelKind, ModelFamily, SaeConfig, Trainer};
use zsl_core::{ZslError, ZSM_HEADER_LEN};

/// Frozen `GzslReport` bits of the γ = λ = 1 cosine engine on the fixture —
/// the same constants `golden_loader.rs` pins (seen 0.25, unseen 0.5,
/// harmonic mean 1/3).
const GOLDEN_REPORT_BITS: [u64; 3] = [
    0x3fd0_0000_0000_0000,
    0x3fe0_0000_0000_0000,
    0x3fd5_5555_5555_5555,
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "zsl_model_artifact_{}_{tag}.zsm",
        std::process::id()
    ))
}

fn random_engine(seed: u64, d: usize, a: usize, z: usize, sim: Similarity) -> ScoringEngine {
    let mut rng = Rng::new(seed);
    let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
    ScoringEngine::new(ProjectionModel::from_weights(w), bank, sim)
}

/// The linear-family projection weights of an engine as a raw slice — the
/// suites below compare ESZSL engines bit-for-bit.
fn weights(engine: &ScoringEngine) -> &[f64] {
    engine
        .model()
        .projection()
        .expect("linear model")
        .weights()
        .as_slice()
}

/// Fit a small engine of whatever family `trainer` produces, over a fixed
/// synthetic dataset's union bank.
fn family_engine(trainer: &dyn Trainer) -> ScoringEngine {
    let ds = SyntheticConfig::new()
        .classes(6, 2)
        .dims(4, 5)
        .samples(4, 3)
        .seed(99)
        .build();
    let model = trainer.fit(&ds).expect("fit");
    ScoringEngine::new(model, ds.all_signatures(), Similarity::Dot)
}

/// The γ = λ = 1 cosine engine over the fixture's union bank — the engine
/// the committed golden artifact freezes.
fn fixture_engine() -> ScoringEngine {
    let ds = DatasetBundle::load(&fixture_dir())
        .expect("load fixture")
        .to_dataset()
        .expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine)
}

// ---------------------------------------------------------------------------
// Property layer
// ---------------------------------------------------------------------------

#[test]
fn random_models_round_trip_to_bit_identical_predictions() {
    let path = temp_path("property");
    let mut case = 0u64;
    for (d, a, z) in [(3usize, 2usize, 4usize), (17, 5, 3), (8, 8, 40), (1, 1, 1)] {
        for sim in [Similarity::Cosine, Similarity::Dot] {
            case += 1;
            let metadata = format!("case={case}; d={d}; a={a}; z={z}; sim={sim}; unicode=γλ✓");
            let engine = random_engine(0xA1 + case, d, a, z, sim);
            engine.save_with_metadata(&path, &metadata).expect("save");
            let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
            assert_eq!(meta, metadata);
            assert_eq!(back.similarity(), sim, "case {case}");
            assert_eq!(
                weights(&back),
                weights(&engine),
                "case {case}: weights drifted"
            );
            assert_eq!(
                back.signatures().as_slice(),
                engine.signatures().as_slice(),
                "case {case}: cached bank drifted"
            );
            // Scores and predictions over a random batch are bit-identical.
            let mut rng = Rng::new(0xBA7 + case);
            let x = Matrix::from_vec(11, d, (0..11 * d).map(|_| rng.normal()).collect());
            assert_eq!(
                back.scores(&x).as_slice(),
                engine.scores(&x).as_slice(),
                "case {case}: scores drifted"
            );
            assert_eq!(back.predict(&x), engine.predict(&x), "case {case}");
            // A second save of the reloaded engine is byte-identical: the
            // format is a fixed point, not an approximation.
            let path2 = temp_path("property2");
            back.save_with_metadata(&path2, &metadata).expect("resave");
            assert_eq!(
                std::fs::read(&path).expect("read a"),
                std::fs::read(&path2).expect("read b"),
                "case {case}: resave not byte-identical"
            );
            std::fs::remove_file(&path2).ok();
        }
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Concurrency layer: the race fixes a hot-swap deployment leans on
// ---------------------------------------------------------------------------

/// Regression for the deterministic-temp-name race: two concurrent saves to
/// the *same* target path (the hot-swap retrainer scenario) used to share
/// one `<target>.tmp` file, interleave writes, and rename a corrupt blend
/// into place. With pid+counter-unique temp names, every rename installs
/// one complete artifact — so a racing reader must only ever see one of the
/// legal variants, byte-for-byte.
#[test]
fn concurrent_saves_to_one_path_never_install_a_blend() {
    let path = temp_path("save_race");
    // Distinguishable variants with *different* byte lengths (different
    // metadata and class counts), so an interleaved blend could not pass
    // for either: any mixing breaks the exact-length check or the payload
    // comparison below.
    let variants: Vec<(ScoringEngine, String)> = (0..3)
        .map(|i| {
            let engine = random_engine(0x5A + i, 4, 3, 5 + i as usize, Similarity::Cosine);
            let metadata = format!("variant={i}; {}", "x".repeat(10 * (i as usize + 1)));
            (engine, metadata)
        })
        .collect();
    variants[0]
        .0
        .save_with_metadata(&path, &variants[0].1)
        .expect("seed save");
    let legal: Vec<Vec<u8>> = variants
        .iter()
        .map(|(engine, metadata)| {
            let p = temp_path("save_race_ref");
            engine.save_with_metadata(&p, metadata).expect("ref save");
            let bytes = std::fs::read(&p).expect("read ref");
            std::fs::remove_file(&p).ok();
            bytes
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let path = path.clone();
            let (engine, metadata) = variants[w].clone();
            std::thread::spawn(move || {
                for _ in 0..40 {
                    engine.save_with_metadata(&path, &metadata).expect("save");
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let path = path.clone();
            let legal = legal.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut loads = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    // Every load must parse cleanly (rename is atomic) AND
                    // match one complete variant exactly.
                    let bytes = std::fs::read(&path).expect("read");
                    assert!(
                        legal.iter().any(|l| l == &bytes),
                        "reader saw a blended artifact ({} bytes, legal: {:?})",
                        bytes.len(),
                        legal.iter().map(Vec::len).collect::<Vec<_>>()
                    );
                    let engine = ScoringEngine::load(&path).expect("load mid-save");
                    assert!(engine.num_classes() >= 5);
                    loads += 1;
                }
                loads
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader") > 0, "reader never loaded");
    }
    // No temp litter left behind in the directory.
    let dir = path.parent().expect("parent");
    let stem = path
        .file_name()
        .expect("name")
        .to_string_lossy()
        .into_owned();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&stem) && n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Cosine-bank norm validation (load + save gates)
// ---------------------------------------------------------------------------

#[test]
fn corrupted_cosine_bank_rows_are_header_errors_not_silent_mis_scoring() {
    let (path, pristine) = valid_artifact_bytes("norms");
    let bank_start = aligned_bank_start(ZSM_HEADER_LEN as usize + 1 + 8 * 4 * 3);

    // An all-zero bank row (the in-place corruption the load gate exists
    // for: `from_cached_parts` never re-normalizes, so this would otherwise
    // serve scores of exactly 0 for that class forever).
    let mut zero_row = pristine.clone();
    zero_row[bank_start..bank_start + 8 * 3].fill(0);
    std::fs::write(&path, &zero_row).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("norm"), "{message}");
            assert!(message.contains("row 0"), "{message}");
        }
        other => panic!("expected Header, got {other:?}"),
    }

    // A rescaled row — unit direction, wrong length — is just as corrupt.
    let mut scaled_row = pristine.clone();
    for i in 0..3 {
        let offset = bank_start + 8 * (3 + i);
        let v = f64::from_le_bytes(scaled_row[offset..offset + 8].try_into().unwrap());
        scaled_row[offset..offset + 8].copy_from_slice(&(v * 0.5).to_le_bytes());
    }
    std::fs::write(&path, &scaled_row).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => assert!(message.contains("row 1"), "{message}"),
        other => panic!("expected Header, got {other:?}"),
    }

    // A dot-similarity artifact carries no normalization claim: the same
    // zeroed row loads fine there.
    let dot_path = temp_path("norms_dot");
    random_engine(7, 4, 3, 5, Similarity::Dot)
        .save_with_metadata(&dot_path, "m")
        .expect("save dot");
    let mut dot_bytes = std::fs::read(&dot_path).expect("read");
    dot_bytes[bank_start..bank_start + 8 * 3].fill(0);
    std::fs::write(&dot_path, &dot_bytes).expect("write");
    ScoringEngine::load(&dot_path).expect("dot artifact with zero row loads");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&dot_path).ok();
}

#[test]
fn saving_a_cosine_engine_with_a_zero_signature_row_is_a_typed_error() {
    // `l2_normalize_rows` leaves an all-zero signature row at zero, so a
    // cosine engine can legally hold one in memory — but persisting it
    // would write an artifact the loader (correctly) rejects. The save
    // gate turns that into an immediate Config error instead of a delayed
    // boot failure on the serving box.
    let model = ProjectionModel::from_weights(Matrix::identity(3));
    let bank = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]]);
    let engine = ScoringEngine::new(model, bank, Similarity::Cosine);
    let path = temp_path("zero_row_save");
    match engine.save(&path) {
        Err(ZslError::Config(msg)) => {
            assert!(msg.contains("row 1"), "{msg}");
            assert!(!path.exists(), "rejected save still wrote a file");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
    // The same bank under dot similarity persists and round-trips fine.
    let model = ProjectionModel::from_weights(Matrix::identity(3));
    let bank = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]]);
    let engine = ScoringEngine::new(model, bank, Similarity::Dot);
    engine.save(&path).expect("dot save");
    ScoringEngine::load(&path).expect("dot load");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Golden layer
// ---------------------------------------------------------------------------

#[test]
fn committed_artifact_reproduces_the_frozen_gzsl_report() {
    let dir = fixture_dir();
    let (engine, metadata) =
        ScoringEngine::load_with_metadata(&dir.join("model.zsm")).expect("load golden artifact");
    assert!(
        metadata.contains("gamma=1") && metadata.contains("lambda=1"),
        "provenance metadata lost: {metadata}"
    );
    // Serving boots from the artifact + the evaluation source alone — no
    // training data, no re-solve.
    let ds = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let report = evaluate_gzsl_with(&engine, &ds).expect("evaluate");
    let got = [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ];
    assert_eq!(
        got, GOLDEN_REPORT_BITS,
        "served GzslReport drifted: got ({}, {}, {}), bits {got:#018x?}",
        report.seen_accuracy, report.unseen_accuracy, report.harmonic_mean
    );
    // And the artifact bytes themselves are what a fresh train would save.
    let fresh = fixture_engine();
    assert_eq!(
        weights(&engine),
        weights(&fresh),
        "artifact weights drifted from a fresh fixture train"
    );
    assert_eq!(
        engine.signatures().as_slice(),
        fresh.signatures().as_slice()
    );
    // The committed fixture is the version-1 backward-compat witness: it must
    // stay a v1 file (the v2 reader's v1 path decodes it as ESZSL).
    let raw = std::fs::read(dir.join("model.zsm")).expect("read fixture bytes");
    assert_eq!(
        u16::from_le_bytes(raw[4..6].try_into().unwrap()),
        1,
        "the committed fixture must remain a version-1 artifact"
    );
    assert_eq!(raw[9], 0, "v1 reserved byte");
    assert_eq!(engine.model().family(), ModelFamily::Eszsl);
}

/// Regenerate the committed golden artifact. Intentional format changes
/// only — run, then commit the new `tests/fixtures/tiny_bundle/model.zsm`.
/// The fixture doubles as the version-1 backward-compat witness, so after
/// saving (which writes the current version, with an aligned bank) the file
/// is downgraded to a genuine v1 artifact: the alignment padding is spliced
/// out, the v2-only flag bits cleared, and the version stamped back to 1 —
/// an ESZSL payload is otherwise byte-identical across v1 and v2.
/// `cargo test -p zsl-core --test model_artifacts -- --ignored regenerate`
#[test]
#[ignore = "writes the committed fixture; run explicitly after intentional format changes"]
fn regenerate_model_artifact() {
    let path = fixture_dir().join("model.zsm");
    let engine = fixture_engine();
    engine
        .save_with_metadata(
            &path,
            "trainer=eszsl; gamma=1; lambda=1; normalize_features=false; \
             normalize_signatures=false; similarity=cosine; seen_classes=4; unseen_classes=2",
        )
        .expect("save golden artifact");
    let mut bytes = std::fs::read(&path).expect("read back");
    let meta_len = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let d = engine.feature_dim();
    let a = engine.signatures().cols();
    let model_end = ZSM_HEADER_LEN as usize + meta_len + 8 * d * a;
    let pad = (64 - model_end % 64) % 64;
    bytes.drain(model_end..model_end + pad);
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    bytes[6..8].copy_from_slice(&(flags & 0b1).to_le_bytes());
    bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
    std::fs::write(&path, &bytes).expect("stamp version 1");
    ScoringEngine::load(&path).expect("downgraded fixture must load as v1");
    println!("wrote {} (downgraded to version 1)", path.display());
}

// ---------------------------------------------------------------------------
// Error-path layer (mirrors loader_errors.rs)
// ---------------------------------------------------------------------------

/// A small valid artifact to corrupt, as raw bytes.
fn valid_artifact_bytes(tag: &str) -> (PathBuf, Vec<u8>) {
    let path = temp_path(tag);
    random_engine(7, 4, 3, 5, Similarity::Cosine)
        .save_with_metadata(&path, "m")
        .expect("save");
    let bytes = std::fs::read(&path).expect("read");
    (path, bytes)
}

fn expect_data_err(path: &std::path::Path) -> DataError {
    match ScoringEngine::load(path) {
        Err(ZslError::Data(e)) => e,
        other => panic!("expected ZslError::Data, got {other:?}"),
    }
}

/// Bank offset of a v2 artifact whose pre-bank payload ends at byte
/// `model_end`: the writer zero-pads to the next 64-byte boundary.
fn aligned_bank_start(model_end: usize) -> usize {
    model_end + (64 - model_end % 64) % 64
}

#[test]
fn truncated_artifacts_are_typed_truncation_errors() {
    let (path, bytes) = valid_artifact_bytes("truncated");
    // Cut inside the header, inside the metadata, inside W, inside the bank.
    let meta_end = ZSM_HEADER_LEN as usize + 1;
    let w_end = meta_end + 8 * 4 * 3;
    for keep in [
        10,
        ZSM_HEADER_LEN as usize,
        meta_end + 5,
        w_end + 9,
        bytes.len() - 1,
    ] {
        std::fs::write(&path, &bytes[..keep]).expect("truncate");
        match expect_data_err(&path) {
            DataError::Truncated {
                expected, actual, ..
            } => {
                assert_eq!(actual, keep as u64);
                assert!(expected > actual, "keep={keep}: {expected} > {actual}");
            }
            other => panic!("keep={keep}: expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_version_flags_similarity_and_trailing_bytes_are_header_errors() {
    let (path, pristine) = valid_artifact_bytes("header");

    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
        let mut bytes = pristine.clone();
        mutate(&mut bytes);
        std::fs::write(&path, &bytes).expect("write");
        expect_data_err(&path)
    };

    for (what, mutate) in [
        (
            "magic",
            (&|b: &mut Vec<u8>| b[0..4].copy_from_slice(b"NOPE")) as &dyn Fn(&mut Vec<u8>),
        ),
        ("version", &|b| {
            b[4..6].copy_from_slice(&99u16.to_le_bytes())
        }),
        ("flags", &|b| {
            b[6..8].copy_from_slice(&0x8000u16.to_le_bytes())
        }),
        ("similarity", &|b| b[8] = 7),
        ("reserved", &|b| b[12] = 1),
        ("trailing", &|b| b.extend_from_slice(&[0u8; 5])),
        // Cosine engine whose flag claims an unnormalized bank.
        ("flag-consistency", &|b| {
            b[6..8].copy_from_slice(&0u16.to_le_bytes())
        }),
    ] {
        let err = corrupt(mutate);
        assert!(
            matches!(err, DataError::Header { .. }),
            "{what} corruption must be a Header error, got {err:?}"
        );
    }

    // Version skew message names the supported range, steering the operator.
    let err = corrupt(&|b| b[4..6].copy_from_slice(&3u16.to_le_bytes()));
    match err {
        DataError::Header { message, .. } => {
            assert!(
                message.contains("unsupported version 3") && message.contains("1-2"),
                "got: {message}"
            )
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // An unknown model-family code is a typed header error too.
    let err = corrupt(&|b| b[9] = 7);
    match err {
        DataError::Header { message, .. } => {
            assert!(
                message.contains("unknown model family code 7"),
                "got: {message}"
            )
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// f32-scoring flag layer (.zsm flag bit 1, v2 only)
// ---------------------------------------------------------------------------

/// The opt-in f32 scoring mode rides the artifact as flag bit 1: the
/// payload stays full f64 on disk (lossless, reversible), the loader
/// rebuilds the f32 mirror, and a v1 reader — which defines only bit 0 —
/// rejects the flag instead of silently serving the wrong precision.
#[test]
fn f32_scoring_flag_round_trips_and_is_rejected_by_v1() {
    let path = temp_path("f32_flag");
    let engine =
        random_engine(0xF32, 6, 4, 7, Similarity::Cosine).with_precision(ScoringPrecision::F32);
    engine.save_with_metadata(&path, "f32").expect("save");
    let pristine = std::fs::read(&path).expect("read");
    let flags = u16::from_le_bytes(pristine[6..8].try_into().unwrap());
    assert_ne!(flags & 0b10, 0, "save must set flag bit 1 for f32 scoring");

    // The loader applies the flag: the reloaded engine scores in f32,
    // bit-identical to the in-memory f32 engine, and a resave is
    // byte-identical (the flag is part of the format's fixed point).
    let back = ScoringEngine::load(&path).expect("load");
    assert_eq!(back.precision(), ScoringPrecision::F32);
    let mut rng = Rng::new(0xF32F32);
    let x = Matrix::from_vec(9, 6, (0..9 * 6).map(|_| rng.normal()).collect());
    assert_eq!(
        back.scores(&x).as_slice(),
        engine.scores(&x).as_slice(),
        "reloaded f32 scores drifted"
    );
    let path2 = temp_path("f32_flag2");
    back.save_with_metadata(&path2, "f32").expect("resave");
    assert_eq!(
        pristine,
        std::fs::read(&path2).expect("read resave"),
        "resave not byte-identical"
    );
    std::fs::remove_file(&path2).ok();

    // The payload is still full f64: clearing the flag in place yields a
    // plain artifact that loads in f64 and scores bit-identically to the
    // engine before `with_precision` — the mode is reversible on disk.
    let mut plain = pristine.clone();
    plain[6..8].copy_from_slice(&(flags & !0b10).to_le_bytes());
    std::fs::write(&path, &plain).expect("write");
    let f64_back = ScoringEngine::load(&path).expect("load cleared flag");
    assert_eq!(f64_back.precision(), ScoringPrecision::F64);
    let reference = random_engine(0xF32, 6, 4, 7, Similarity::Cosine);
    assert_eq!(
        f64_back.scores(&x).as_slice(),
        reference.scores(&x).as_slice(),
        "clearing the flag must recover the exact f64 engine"
    );

    // Version 1 defines only bit 0: a v1 file carrying bit 1 is a typed
    // header error, never a silently-ignored flag.
    let mut v1 = pristine.clone();
    v1[4..6].copy_from_slice(&1u16.to_le_bytes());
    std::fs::write(&path, &v1).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("unknown flags"), "{message}");
            assert!(message.contains("version 1"), "{message}");
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Version-compatibility layer (.zsm v1 <-> v2)
// ---------------------------------------------------------------------------

/// A non-ESZSL v2 artifact whose version field is rewritten to 1 must fail
/// the v1 reserved-byte check with a typed header error: a v1 reader (and
/// this reader in v1 mode) can never misparse an SAE or kernel payload as a
/// plain projection.
#[test]
fn v2_families_masquerading_as_v1_are_rejected() {
    let trainers: [(&str, Box<dyn Trainer>); 2] = [
        ("sae", Box::new(SaeConfig::new().build())),
        ("kernel", Box::new(KernelEszslConfig::new().build())),
    ];
    for (tag, trainer) in trainers {
        let path = temp_path(&format!("masquerade_{tag}"));
        let engine = family_engine(trainer.as_ref());
        engine.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        assert_eq!(
            u16::from_le_bytes(bytes[4..6].try_into().unwrap()),
            2,
            "{tag}: writer must emit version 2"
        );
        assert_ne!(bytes[9], 0, "{tag}: non-ESZSL family byte");
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        // Clear the v2-only flag bits (aligned bank, etc.) so the downgraded
        // file gets past the v1 flags check and exercises the reserved-byte
        // gate this test is about. (A genuine v1 writer would never set
        // them; the padding bytes the v2 writer inserted are harmless here
        // because the reserved-byte check fires before any length math.)
        let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        bytes[6..8].copy_from_slice(&(flags & 0b1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        match expect_data_err(&path) {
            DataError::Header { message, .. } => {
                assert!(message.contains("reserved"), "{tag}: {message}")
            }
            other => panic!("{tag}: expected Header, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Kernel artifacts round-trip bit-for-bit, and every field of their extra
/// payload block is validated with typed errors.
#[test]
fn kernel_artifacts_round_trip_and_validate_their_block() {
    let trainer = KernelEszslConfig::new()
        .kernel(KernelKind::Rbf { width: 0.3 })
        .max_anchors(6)
        .build();
    let engine = family_engine(&trainer);
    let path = temp_path("kernel_block");
    engine.save_with_metadata(&path, "k").expect("save");
    let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
    assert_eq!(meta, "k");
    assert_eq!(back.model().family(), ModelFamily::KernelEszsl);
    let km = back.model().kernel_model().expect("kernel model");
    let orig = engine.model().kernel_model().expect("kernel model");
    assert_eq!(km.kernel(), orig.kernel());
    assert_eq!(km.alpha().as_slice(), orig.alpha().as_slice());
    assert_eq!(km.anchors().as_slice(), orig.anchors().as_slice());
    // Scores over a random batch are bit-identical after the round trip.
    let mut rng = Rng::new(0xFACE);
    let d = engine.feature_dim();
    let x = Matrix::from_vec(9, d, (0..9 * d).map(|_| rng.normal()).collect());
    assert_eq!(back.scores(&x).as_slice(), engine.scores(&x).as_slice());

    let pristine = std::fs::read(&path).expect("read");
    let block = ZSM_HEADER_LEN as usize + 1; // metadata is 1 byte
                                             // Unknown kernel code.
    let mut bad = pristine.clone();
    bad[block] = 9;
    std::fs::write(&path, &bad).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("unknown kernel code 9"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // Non-finite RBF width.
    let mut bad = pristine.clone();
    bad[block + 8..block + 16].copy_from_slice(&f64::NAN.to_le_bytes());
    std::fs::write(&path, &bad).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("width"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // Zero anchors.
    let mut bad = pristine.clone();
    bad[block + 16..block + 24].copy_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &bad).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("zero anchors"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // Truncation inside the kernel block is a typed truncation error.
    std::fs::write(&path, &pristine[..block + 10]).expect("write");
    assert!(matches!(
        expect_data_err(&path),
        DataError::Truncated { .. }
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn overflowing_dims_and_zero_dims_are_header_errors_not_panics() {
    let (path, pristine) = valid_artifact_bytes("overflow");
    // Crafted dims that would wrap the expected-length arithmetic.
    for (d, a, z) in [
        (1u64 << 62, 2u64, 1u64),
        (1u64 << 31, 1u64 << 31, 1),
        (1, 2, u64::MAX / 4),
    ] {
        let mut bytes = pristine[..ZSM_HEADER_LEN as usize].to_vec();
        bytes[16..24].copy_from_slice(&d.to_le_bytes());
        bytes[24..32].copy_from_slice(&a.to_le_bytes());
        bytes[32..40].copy_from_slice(&z.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        match expect_data_err(&path) {
            DataError::Header { message, .. } => {
                assert!(message.contains("overflow"), "d={d} a={a} z={z}: {message}")
            }
            other => panic!("d={d} a={a} z={z}: expected Header, got {other:?}"),
        }
    }
    // Zero dims are rejected outright.
    let mut bytes = pristine.clone();
    bytes[16..24].copy_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(expect_data_err(&path), DataError::Header { .. }));
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_metadata_and_nonfinite_payloads_are_header_errors() {
    let (path, pristine) = valid_artifact_bytes("payload");
    // Metadata is 1 byte ("m"); replace it with an invalid UTF-8 byte.
    let mut bad_meta = pristine.clone();
    bad_meta[ZSM_HEADER_LEN as usize] = 0xFF;
    std::fs::write(&path, &bad_meta).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => assert!(message.contains("UTF-8"), "{message}"),
        other => panic!("expected Header, got {other:?}"),
    }
    // NaN inside W.
    let mut bad_w = pristine.clone();
    let w_start = ZSM_HEADER_LEN as usize + 1;
    bad_w[w_start..w_start + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    std::fs::write(&path, &bad_w).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("non-finite weight"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    // Infinity inside the bank.
    let mut bad_bank = pristine.clone();
    let bank_start = aligned_bank_start(ZSM_HEADER_LEN as usize + 1 + 8 * 4 * 3);
    bad_bank[bank_start..bank_start + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
    std::fs::write(&path, &bad_bank).expect("write");
    match expect_data_err(&path) {
        DataError::Header { message, .. } => {
            assert!(message.contains("non-finite signature"), "{message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
