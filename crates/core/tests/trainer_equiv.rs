//! Differential test layer for the [`Trainer`] abstraction: every model
//! family — ESZSL, SAE, kernel ESZSL (linear and RBF) — flows through the
//! SAME generic path and inherits the streaming guarantees the ESZSL suite
//! (`tests/streaming_equiv.rs`) pins:
//!
//! 1. **Chunk invariance** — a fit over a [`StreamingBundle`] is
//!    bit-identical to a fit over the materialized [`Dataset`] at every
//!    chunk size, for every family (weights for the linear families, dual
//!    weights + anchors for the kernel family).
//! 2. **Protocol invariance** — seeded cross-validation and the GZSL report
//!    through [`cross_validate_with`] / [`select_train_evaluate_with`]
//!    produce the same bits streamed and in-memory, with each family
//!    sweeping its own grid shape.
//! 3. **Artifact round trips** — every family's engine persists to a `.zsm`
//!    v2 artifact and reloads to bit-identical scores and reports, and a
//!    resave of the reloaded engine is byte-identical.
//! 4. **Golden wall** — the committed `tests/fixtures/tiny_bundle/` pins
//!    frozen `GzslReport` bits for the SAE and kernel trainers, next to the
//!    ESZSL bits `model_artifacts.rs` pins. Regenerate via the `--ignored
//!    print_trainer_golden_bits` test after intentional solver changes.

use std::path::PathBuf;
use zsl_core::data::{export_dataset, DatasetBundle, FeatureFormat, StreamingBundle};
use zsl_core::eval::{cross_validate_with, select_train_evaluate_with, CrossValConfig};
use zsl_core::infer::{ScoringEngine, ScoringPrecision, Similarity};
use zsl_core::model::EszslConfig;
use zsl_core::trainer::{KernelEszslConfig, KernelKind, SaeConfig, TrainedModel, Trainer};
use zsl_core::{evaluate_gzsl_with, Dataset, SyntheticConfig};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_trainer_equiv_{}_{tag}", std::process::id()))
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

/// The chunk sizes the streaming wall pins: degenerate (1), coprime-ish
/// small (3, 7), exactly one chunk (n), and larger than the data (n + 13).
fn chunk_sizes(n_rows: usize) -> [usize; 5] {
    [1, 3, 7, n_rows, n_rows + 13]
}

fn synthetic_dataset() -> Dataset {
    SyntheticConfig::new()
        .classes(6, 2)
        .dims(4, 5)
        .samples(4, 3)
        .noise(0.05)
        .seed(20_26)
        .build()
}

/// One representative trainer per family (plus both kernels), with
/// hyperparameters off the defaults where the family allows it.
fn trainers() -> Vec<(&'static str, Box<dyn Trainer>)> {
    vec![
        (
            "eszsl",
            Box::new(EszslConfig::new().gamma(0.5).lambda(2.0).build()),
        ),
        ("sae", Box::new(SaeConfig::new().lambda(0.7).build())),
        (
            "kernel-linear",
            Box::new(KernelEszslConfig::new().gamma(0.5).lambda(2.0).build()),
        ),
        (
            "kernel-rbf",
            Box::new(
                KernelEszslConfig::new()
                    .kernel(KernelKind::Rbf { width: 0.25 })
                    .max_anchors(10)
                    .build(),
            ),
        ),
    ]
}

/// Bit-level equality across families: weights for the linear families,
/// dual weights + anchors + kernel for the kernel family.
fn assert_same_model(a: &TrainedModel, b: &TrainedModel, label: &str) {
    assert_eq!(a.family(), b.family(), "{label}: family");
    match (a.projection(), b.projection()) {
        (Some(x), Some(y)) => {
            assert_eq!(
                x.weights().as_slice(),
                y.weights().as_slice(),
                "{label}: weights"
            );
        }
        _ => {
            let x = a.kernel_model().expect(label);
            let y = b.kernel_model().expect(label);
            assert_eq!(x.kernel(), y.kernel(), "{label}: kernel");
            assert_eq!(x.alpha().as_slice(), y.alpha().as_slice(), "{label}: alpha");
            assert_eq!(
                x.anchors().as_slice(),
                y.anchors().as_slice(),
                "{label}: anchors"
            );
        }
    }
}

#[test]
fn every_family_is_chunk_invariant_and_matches_in_memory() {
    let ds = synthetic_dataset();
    let dir = temp_dir("chunks");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let n = mem.train_x.rows();
    for (tag, trainer) in trainers() {
        let reference = trainer.fit(&mem).expect("in-memory fit");
        for chunk_rows in chunk_sizes(n) {
            let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
            let streamed = trainer.fit(&bundle).expect("streamed fit");
            assert_same_model(&streamed, &reference, &format!("{tag} chunk={chunk_rows}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generic_cv_and_gzsl_protocols_are_chunk_invariant_for_every_family() {
    let ds = synthetic_dataset();
    let dir = temp_dir("protocol");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let n = mem.train_x.rows();
    let config = CrossValConfig::new()
        .gammas(vec![0.1, 1.0])
        .lambdas(vec![0.5, 5.0])
        .folds(3)
        .seed(11);
    for (tag, trainer) in trainers() {
        let reference_cv = cross_validate_with(trainer.as_ref(), &mem, &config).expect("cv");
        // Each family sweeps its own grid: SAE collapses γ, the others take
        // the cartesian product.
        let expected_grid = match tag {
            "sae" => config.lambdas.len(),
            _ => config.gammas.len() * config.lambdas.len(),
        };
        assert_eq!(reference_cv.grid.len(), expected_grid, "{tag}: grid shape");
        let (_, reference_report) =
            select_train_evaluate_with(trainer.as_ref(), &mem, &config).expect("protocol");
        for chunk_rows in chunk_sizes(n) {
            let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
            let cv = cross_validate_with(trainer.as_ref(), &bundle, &config).expect("cv");
            assert_eq!(cv, reference_cv, "{tag} chunk={chunk_rows}: cv drifted");
            let (_, report) =
                select_train_evaluate_with(trainer.as_ref(), &bundle, &config).expect("protocol");
            assert_eq!(
                report, reference_report,
                "{tag} chunk={chunk_rows}: report drifted"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_family_round_trips_through_zsm_v2_bit_for_bit() {
    let ds = synthetic_dataset();
    for (tag, trainer) in trainers() {
        let model = trainer.fit(&ds).expect("fit");
        let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
        let report = evaluate_gzsl_with(&engine, &ds).expect("evaluate");
        let path = std::env::temp_dir().join(format!(
            "zsl_trainer_equiv_{}_{tag}.zsm",
            std::process::id()
        ));
        let metadata = trainer.describe();
        engine.save_with_metadata(&path, &metadata).expect("save");
        let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
        assert_eq!(meta, metadata, "{tag}: metadata drifted");
        assert_same_model(back.model(), engine.model(), tag);
        assert_eq!(
            evaluate_gzsl_with(&back, &ds).expect("evaluate reloaded"),
            report,
            "{tag}: served report drifted"
        );
        // A resave of the reloaded engine is byte-identical: the format is a
        // fixed point for every family, not an approximation.
        let path2 = path.with_extension("resave.zsm");
        back.save_with_metadata(&path2, &metadata).expect("resave");
        assert_eq!(
            std::fs::read(&path).expect("read a"),
            std::fs::read(&path2).expect("read b"),
            "{tag}: resave not byte-identical"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }
}

/// Every family's scoring — f64 and the opt-in f32 variant — is
/// bit-identical across thread counts now that all kernels (including the
/// RBF Gram) run row-banded over the shared worker pool with fixed per-row
/// summation order. Thread counts cover serial (1), even splits (2, 4), and
/// more threads than some band widths (9).
#[test]
fn pooled_scoring_is_thread_invariant_for_every_family_and_precision() {
    let ds = synthetic_dataset();
    let x = &ds.test_unseen_x;
    for (tag, trainer) in trainers() {
        let model = trainer.fit(&ds).expect("fit");
        let mut engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
        let z = engine.num_classes();
        for precision in [ScoringPrecision::F64, ScoringPrecision::F32] {
            engine = engine.with_precision(precision);
            engine.set_threads(1);
            let reference = engine.predict_topk(x, z);
            for threads in [2, 4, 9] {
                engine.set_threads(threads);
                assert_eq!(
                    engine.predict_topk(x, z),
                    reference,
                    "{tag} {precision} threads={threads}: scores drifted from serial"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden wall: frozen GzslReport bits per family on the committed fixture
// ---------------------------------------------------------------------------

/// Frozen `GzslReport` bits (seen, unseen, harmonic mean) of the default
/// SAE trainer (λ = 1) on `tests/fixtures/tiny_bundle/`, cosine over the
/// union bank — the SAE analogue of `GOLDEN_REPORT_BITS`.
const SAE_GOLDEN_REPORT_BITS: [u64; 3] = [
    0x3fd0_0000_0000_0000,
    0x3fe0_0000_0000_0000,
    0x3fd5_5555_5555_5555,
];

/// Frozen `GzslReport` bits of the default linear-kernel ESZSL trainer
/// (γ = λ = 1, all anchors) on the same fixture.
const KERNEL_GOLDEN_REPORT_BITS: [u64; 3] = [
    0x3fd0_0000_0000_0000,
    0x3fe0_0000_0000_0000,
    0x3fd5_5555_5555_5555,
];

/// The two non-ESZSL golden trainers, with the default hyperparameters the
/// constants above freeze.
fn golden_trainers() -> [(&'static str, Box<dyn Trainer>, [u64; 3]); 2] {
    [
        (
            "sae",
            Box::new(SaeConfig::new().build()),
            SAE_GOLDEN_REPORT_BITS,
        ),
        (
            "kernel-linear",
            Box::new(KernelEszslConfig::new().build()),
            KERNEL_GOLDEN_REPORT_BITS,
        ),
    ]
}

fn fixture_report(trainer: &dyn Trainer) -> zsl_core::GzslReport {
    let ds = DatasetBundle::load(&fixture_dir())
        .expect("load fixture")
        .to_dataset()
        .expect("materialize");
    let model = trainer.fit(&ds).expect("fit");
    let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
    evaluate_gzsl_with(&engine, &ds).expect("evaluate")
}

#[test]
fn golden_wall_extends_to_sae_and_kernel_families() {
    for (tag, trainer, expected) in golden_trainers() {
        let report = fixture_report(trainer.as_ref());
        let got = [
            report.seen_accuracy.to_bits(),
            report.unseen_accuracy.to_bits(),
            report.harmonic_mean.to_bits(),
        ];
        assert_eq!(
            got, expected,
            "{tag}: golden report drifted: ({}, {}, {}), bits {got:#018x?}",
            report.seen_accuracy, report.unseen_accuracy, report.harmonic_mean
        );
    }
}

/// Print the current golden bits for the constants above. Intentional
/// solver changes only: `cargo test -p zsl-core --test trainer_equiv -- \
/// --ignored print_trainer_golden_bits --nocapture`, then paste.
#[test]
#[ignore = "prints constants for the golden wall; run explicitly after intentional changes"]
fn print_trainer_golden_bits() {
    for (tag, trainer, _) in golden_trainers() {
        let report = fixture_report(trainer.as_ref());
        println!(
            "{tag}: [{:#018x}, {:#018x}, {:#018x}] // ({}, {}, {})",
            report.seen_accuracy.to_bits(),
            report.unseen_accuracy.to_bits(),
            report.harmonic_mean.to_bits(),
            report.seen_accuracy,
            report.unseen_accuracy,
            report.harmonic_mean
        );
    }
}
