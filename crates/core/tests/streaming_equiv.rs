//! Differential test layer for the unified pipeline API.
//!
//! The hard invariant this suite locks down: **every source kind flows
//! through the single generic code path and produces bit-identical results
//! at every chunk size** — Gram accumulators, trained weights, predictions,
//! GZSL reports, and the full CV → fit → evaluate protocol. The twin
//! `*_stream` implementations (and their `#[deprecated]` wrappers) are gone,
//! so the comparisons here pit a materialized [`Dataset`] source
//! against a [`StreamingBundle`] source through the *same* generic entry
//! points, on both on-disk formats, over synthetic bundles and the committed
//! `tests/fixtures/tiny_bundle/`. (`tests/trainer_equiv.rs` extends the same
//! chunk-invariance wall to the SAE and kernel-ESZSL trainers.)
//!
//! The streamed side of every comparison goes through [`StreamingBundle`]
//! only — no full feature `Matrix` is ever constructed on that side, and
//! every chunk is asserted to hold at most `chunk_rows` rows, which is what
//! makes the `O(chunk_rows x feature_dim)` peak-feature-memory claim
//! checkable. Since PR 5's CSV line index, shuffled manifests and
//! cross-validation folds stream from CSV bundles too, so CSV now runs the
//! *entire* protocol matrix.
//!
//! The serving half of the redesign is pinned here as well: a trained engine
//! saved as a `.zsm` artifact and reloaded reproduces the golden fixture's
//! `GzslReport` bit for bit — including the committed
//! `tests/fixtures/tiny_bundle/model.zsm`.

use std::path::PathBuf;
use zsl_core::data::{
    export_dataset, DatasetBundle, FeatureFormat, SplitManifest, StreamingBundle, SyntheticConfig,
    SPLITS_TXT,
};
use zsl_core::eval::{
    cross_validate, evaluate_gzsl, evaluate_gzsl_with, select_train_evaluate, CrossValConfig,
};
use zsl_core::infer::Similarity;
use zsl_core::model::{EszslConfig, EszslProblem, GramAccumulator};
use zsl_core::source::{FeatureSource, SplitKind};
use zsl_core::{Dataset, MemorySource, Rng, ScoringEngine};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_stream_equiv_{}_{tag}", std::process::id()))
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

/// The chunk sizes the ISSUE pins: degenerate (1), coprime-ish small (3, 7),
/// exactly one chunk (n), and larger than the data (n + 13).
fn chunk_sizes(n_rows: usize) -> [usize; 5] {
    [1, 3, 7, n_rows, n_rows + 13]
}

/// A synthetic bundle big enough to straddle several chunk boundaries but
/// fast enough for the tier-1 suite.
fn synthetic_dataset() -> Dataset {
    SyntheticConfig::new()
        .classes(6, 2)
        .dims(4, 5)
        .samples(4, 3)
        .noise(0.05)
        .seed(20_26)
        .build()
}

/// Build the trainval Gram problem from `bundle` through the generic source
/// path, asserting the memory bound (no chunk exceeds `chunk_rows` rows)
/// along the way.
fn streamed_problem(bundle: &StreamingBundle) -> EszslProblem {
    let mut acc = GramAccumulator::new(&bundle.seen_signatures());
    for chunk in FeatureSource::stream(bundle, SplitKind::Trainval).expect("trainval stream") {
        let (x, labels) = chunk.expect("chunk");
        assert!(
            x.rows() <= bundle.chunk_rows(),
            "chunk of {} rows exceeds chunk_rows={}",
            x.rows(),
            bundle.chunk_rows()
        );
        assert_eq!(x.cols(), bundle.feature_dim());
        acc.fold(&x, &labels).expect("fold");
    }
    acc.finish().expect("finish")
}

#[test]
fn streamed_gram_training_and_prediction_match_in_memory_at_every_chunk_size() {
    let ds = synthetic_dataset();
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let dir = temp_dir(&format!("diff_{format:?}"));
        export_dataset(&ds, &dir, format).expect("export");
        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        // In-memory reference, itself produced by the same generic path.
        let reference = EszslProblem::from_source(&mem).expect("in-memory problem");
        let model = EszslConfig::new()
            .gamma(1.0)
            .lambda(1.0)
            .build()
            .fit(&mem)
            .expect("fit");
        let engine = ScoringEngine::new(model.clone(), mem.all_signatures(), Similarity::Cosine);
        let mem_seen_pred = engine
            .predict_source(&mem, SplitKind::TestSeen)
            .expect("predict");
        let mem_unseen_pred = engine
            .predict_source(&mem, SplitKind::TestUnseen)
            .expect("predict");
        let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine).expect("evaluate");

        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let label = format!("{format:?} chunk_rows={chunk_rows}");
            let bundle =
                StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open stream");
            assert_eq!(
                bundle.num_samples(),
                mem.train_x.rows() + mem.test_seen_x.rows() + mem.test_unseen_x.rows()
            );

            // 1. Gram accumulators are bit-identical.
            let streamed = streamed_problem(&bundle);
            assert_eq!(
                streamed.xtx().as_slice(),
                reference.xtx().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.xtys().as_slice(),
                reference.xtys().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.sts().as_slice(),
                reference.sts().as_slice(),
                "{label}"
            );

            // 2. Trained weights are bit-identical — and the generic fit
            //    over the bundle source reproduces them too.
            for (gamma, lambda) in [(1.0, 1.0), (0.01, 100.0)] {
                assert_eq!(
                    streamed
                        .solve(gamma, lambda)
                        .expect("solve")
                        .weights()
                        .as_slice(),
                    reference
                        .solve(gamma, lambda)
                        .expect("solve")
                        .weights()
                        .as_slice(),
                    "{label} gamma={gamma} lambda={lambda}"
                );
            }
            let fitted = EszslConfig::new()
                .gamma(1.0)
                .lambda(1.0)
                .build()
                .fit(&bundle)
                .expect("fit bundle");
            assert_eq!(
                fitted.weights().as_slice(),
                model.weights().as_slice(),
                "{label}"
            );

            // 3. Streamed predictions equal in-memory predictions through the
            //    one generic predict entry point.
            assert_eq!(
                engine
                    .predict_source(&bundle, SplitKind::TestSeen)
                    .expect("predict"),
                mem_seen_pred,
                "{label}"
            );
            assert_eq!(
                engine
                    .predict_source(&bundle, SplitKind::TestUnseen)
                    .expect("predict"),
                mem_unseen_pred,
                "{label}"
            );
            // 3b. The split's labels stream alongside in manifest order.
            let mut labels = Vec::new();
            for chunk in FeatureSource::stream(&bundle, SplitKind::TestSeen).expect("stream") {
                labels.extend(chunk.expect("chunk").1.into_owned());
            }
            assert_eq!(labels, mem.test_seen_labels, "{label}");

            // 4. The streamed GZSL report is the in-memory report, bit for
            //    bit, through the one generic evaluate entry point.
            let streamed_report =
                evaluate_gzsl(&model, &bundle, Similarity::Cosine).expect("gzsl stream");
            assert_eq!(streamed_report, mem_report, "{label}");
            assert_eq!(
                streamed_report.harmonic_mean.to_bits(),
                mem_report.harmonic_mean.to_bits(),
                "{label}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn streamed_full_protocol_matches_select_train_evaluate_on_both_formats() {
    let ds = synthetic_dataset();
    let config = CrossValConfig::new()
        .gammas(vec![0.1, 1.0, 10.0])
        .lambdas(vec![0.1, 1.0])
        .folds(3)
        .seed(777);
    // Since the CSV line index, the full protocol (shuffled CV folds
    // included) runs on BOTH formats.
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let dir = temp_dir(&format!("protocol_{format:?}"));
        export_dataset(&ds, &dir, format).expect("export");
        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let (mem_cv, mem_report) =
            select_train_evaluate(&mem, &config).expect("in-memory protocol");

        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let bundle = StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open");
            let (cv, report) = select_train_evaluate(&bundle, &config).expect("streamed protocol");
            assert_eq!(cv, mem_cv, "{format:?} chunk_rows={chunk_rows}");
            assert_eq!(report, mem_report, "{format:?} chunk_rows={chunk_rows}");
        }

        // The underlying generic cross-validation also matches a raw
        // MemorySource sweep over the same trainval data.
        let bundle = StreamingBundle::open_with_format(&dir, format, 5).expect("open");
        let source = MemorySource::new(&mem.train_x, &mem.train_labels, &mem.seen_signatures);
        let raw_cv = cross_validate(&source, &config).expect("raw cv");
        let streamed_cv = cross_validate(&bundle, &config).expect("streamed cv");
        assert_eq!(streamed_cv, raw_cv, "{format:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn shuffled_manifest_order_streams_bit_identically_on_both_formats() {
    // A manifest whose split indices are NOT ascending exercises the indexed
    // readers — seek-coalesced byte ranges on .zsb, the line index on CSV.
    // The in-memory gather honors manifest order, so the streamed side must
    // too, bit for bit.
    let ds = synthetic_dataset();
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let dir = temp_dir(&format!("shuffled_{format:?}"));
        export_dataset(&ds, &dir, format).expect("export");
        let manifest_path = dir.join(SPLITS_TXT);
        let mut manifest = SplitManifest::read(&manifest_path).expect("manifest");
        let mut rng = Rng::new(0xD15C);
        rng.shuffle(&mut manifest.trainval);
        rng.shuffle(&mut manifest.test_seen);
        rng.shuffle(&mut manifest.test_unseen);
        manifest.write(&manifest_path).expect("rewrite");

        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let reference = EszslProblem::from_source(&mem).expect("problem");
        let model = EszslConfig::new().build().fit(&mem).expect("fit");
        let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine).expect("evaluate");

        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let label = format!("{format:?} chunk_rows={chunk_rows}");
            let bundle = StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open");
            let streamed = streamed_problem(&bundle);
            assert_eq!(
                streamed.xtx().as_slice(),
                reference.xtx().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.xtys().as_slice(),
                reference.xtys().as_slice(),
                "{label}"
            );
            let report = evaluate_gzsl(&model, &bundle, Similarity::Cosine).expect("stream");
            assert_eq!(report, mem_report, "{label}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn csv_cross_validation_subsets_stream_through_the_line_index() {
    // CV folds stream trainval subsets in shuffled (non-ascending) order —
    // the exact access pattern the CSV line index exists for. Verify the
    // subset streams themselves, row for row, against the in-memory gather.
    let ds = synthetic_dataset();
    let dir = temp_dir("csv_subsets");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let n = mem.train_x.rows();
    let mut positions: Vec<usize> = (0..n).collect();
    Rng::new(0xF01D).shuffle(&mut positions);
    // Repeats are allowed too (the fold machinery never produces them, but
    // the reader contract does).
    positions.push(positions[0]);

    for chunk_rows in chunk_sizes(n) {
        let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
        let mut got_rows: Vec<f64> = Vec::new();
        let mut got_labels = Vec::new();
        for chunk in bundle
            .stream_trainval_subset(&positions)
            .expect("subset stream")
        {
            let (x, labels) = chunk.expect("chunk");
            assert!(x.rows() <= chunk_rows);
            got_rows.extend_from_slice(x.as_slice());
            got_labels.extend(labels);
        }
        let expected = mem.train_x.gather_rows(&positions);
        let expected_labels: Vec<usize> = positions.iter().map(|&p| mem.train_labels[p]).collect();
        assert_eq!(got_rows, expected.as_slice(), "chunk_rows={chunk_rows}");
        assert_eq!(got_labels, expected_labels, "chunk_rows={chunk_rows}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_bundle_fixture_streams_bit_identically_in_both_formats() {
    let dir = fixture_dir();
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let reference = EszslProblem::from_source(&mem).expect("problem");
        let model = EszslConfig::new().build().fit(&mem).expect("fit");
        let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine).expect("evaluate");
        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let bundle = StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open");
            let streamed = streamed_problem(&bundle);
            let label = format!("{format:?} chunk_rows={chunk_rows}");
            assert_eq!(
                streamed.xtx().as_slice(),
                reference.xtx().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.xtys().as_slice(),
                reference.xtys().as_slice(),
                "{label}"
            );
            let report = evaluate_gzsl(&model, &bundle, Similarity::Cosine).expect("stream");
            assert_eq!(report, mem_report, "{label}");
        }
    }
}

#[test]
fn saved_zsm_engine_reproduces_the_fixture_report_after_reload() {
    // The serving acceptance gate: a trained engine persists to .zsm, a
    // fresh process reloads it WITHOUT the training data, and the GZSL
    // report over the streamed fixture is bit-identical — both for a
    // round-tripped engine and for the committed golden artifact.
    let dir = fixture_dir();
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .fit(&mem)
        .expect("fit");
    let bundle = StreamingBundle::open(&dir, 5).expect("open");
    let fresh = evaluate_gzsl(&model, &bundle, Similarity::Cosine).expect("fresh report");

    // Round trip through a temp artifact.
    let engine = ScoringEngine::new(model, mem.all_signatures(), Similarity::Cosine);
    let path = temp_dir("artifact").with_extension("zsm");
    engine.save(&path).expect("save");
    let reloaded = ScoringEngine::load(&path).expect("load");
    let served = evaluate_gzsl_with(&reloaded, &bundle).expect("served report");
    assert_eq!(served, fresh, "reloaded engine drifted from fresh engine");
    assert_eq!(
        served.harmonic_mean.to_bits(),
        fresh.harmonic_mean.to_bits()
    );
    std::fs::remove_file(&path).ok();

    // The committed golden artifact reproduces the same bits.
    let golden = ScoringEngine::load(&dir.join("model.zsm")).expect("golden artifact");
    let golden_report = evaluate_gzsl_with(&golden, &bundle).expect("golden report");
    assert_eq!(golden_report, fresh, "committed model.zsm drifted");
}

#[test]
fn gzsl_reports_are_thread_invariant_over_streamed_and_in_memory_sources() {
    // The chunk-invariance wall extended along the thread axis: with the
    // scoring kernels row-banded over the shared worker pool, the full GZSL
    // protocol is bit-identical at every engine thread count, on both the
    // streamed and the materialized side.
    let dir = fixture_dir();
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .fit(&mem)
        .expect("fit");
    let mut engine = ScoringEngine::new(model, mem.all_signatures(), Similarity::Cosine);
    engine.set_threads(1);
    let mem_reference = evaluate_gzsl_with(&engine, &mem).expect("serial in-memory report");
    for threads in [1, 2, 4, 9] {
        engine.set_threads(threads);
        assert_eq!(
            evaluate_gzsl_with(&engine, &mem).expect("in-memory report"),
            mem_reference,
            "threads={threads}: in-memory report drifted"
        );
        let bundle = StreamingBundle::open(&dir, 3).expect("open");
        assert_eq!(
            evaluate_gzsl_with(&engine, &bundle).expect("streamed report"),
            mem_reference,
            "threads={threads}: streamed report drifted"
        );
    }
}

#[test]
fn csv_file_shrinking_after_open_is_a_typed_error_not_a_smaller_split() {
    // A .zsb file re-validates its promised length on every open and maps a
    // mid-read shrink to Truncated. CSV has no header, so a file that loses
    // rows between StreamingBundle::open and a streaming pass would just end
    // early — both the forward scan and the indexed reader must notice the
    // missing selected rows and error rather than hand evaluators a silently
    // smaller split.
    let ds = synthetic_dataset();
    let dir = temp_dir("csv_shrink");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");

    let csv_path = dir.join("features.csv");
    let text = std::fs::read_to_string(&csv_path).expect("read");
    let kept: Vec<&str> = text.lines().collect();
    let shrunk = kept[..kept.len() - 3].join("\n");
    std::fs::write(&csv_path, shrunk).expect("shrink");

    // test_unseen rows live at the end of the export, so they are the ones
    // missing now.
    let outcome: Result<Vec<_>, _> = bundle
        .stream_test_unseen()
        .expect("stream handle")
        .collect();
    match outcome {
        Err(zsl_core::DataError::Shape { message }) => {
            assert!(message.contains("shrank"), "got: {message}")
        }
        other => panic!("expected Shape error for shrunken CSV, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_csv_read_of_a_shrunken_file_is_a_typed_error() {
    // Same shrink race, but through the line-index path: reverse the
    // test_unseen manifest order BEFORE opening (forcing indexed reads),
    // open (index built over the intact file), then delete the trailing rows.
    let ds = synthetic_dataset();
    let dir = temp_dir("csv_shrink_indexed");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let manifest_path = dir.join(SPLITS_TXT);
    let mut manifest = SplitManifest::read(&manifest_path).expect("manifest");
    manifest.test_unseen.reverse();
    manifest.write(&manifest_path).expect("rewrite");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");

    let csv_path = dir.join("features.csv");
    let text = std::fs::read_to_string(&csv_path).expect("read");
    let kept: Vec<&str> = text.lines().collect();
    std::fs::write(&csv_path, kept[..kept.len() - 3].join("\n")).expect("shrink");

    let outcome: Result<Vec<_>, _> = bundle.stream_test_unseen().expect("handle").collect();
    match outcome {
        Err(zsl_core::DataError::Shape { message }) => {
            assert!(message.contains("shrank"), "got: {message}")
        }
        other => panic!("expected Shape error for shrunken indexed CSV, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn split_stream_fuses_after_first_error_without_fabricating_a_second() {
    // A parse error mid-CSV must surface exactly once; polling past it gets
    // None — not a bogus "file shrank" follow-up from the remaining-rows
    // bookkeeping.
    let ds = synthetic_dataset();
    let dir = temp_dir("fuse");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");

    let csv_path = dir.join("features.csv");
    let text = std::fs::read_to_string(&csv_path).expect("read");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    // Corrupt a line inside the trainval block (the export writes trainval
    // rows first): the indexed reader only ever touches selected lines.
    let mid = bundle.manifest().trainval.len() / 2;
    lines[mid] = "0,not_a_float,1.0".into();
    std::fs::write(&csv_path, lines.join("\n")).expect("corrupt");

    let mut stream = bundle.stream_trainval().expect("stream");
    let mut saw_parse_error = false;
    for item in &mut stream {
        match item {
            Ok(_) => continue,
            Err(zsl_core::DataError::Parse { .. }) => {
                saw_parse_error = true;
                break;
            }
            Err(other) => panic!("expected Parse error, got {other:?}"),
        }
    }
    assert!(saw_parse_error);
    assert!(stream.next().is_none(), "stream must fuse after an error");
    assert!(stream.next().is_none());
    std::fs::remove_dir_all(&dir).ok();
}
