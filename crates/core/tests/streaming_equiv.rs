//! Differential test layer for the out-of-core streaming pipeline.
//!
//! The hard invariant this suite locks down: **streamed results are
//! bit-identical to the in-memory pipeline at every chunk size** — Gram
//! accumulators, trained weights, predictions, GZSL reports, and the full
//! CV → fit → evaluate protocol, on both on-disk formats, over synthetic
//! bundles and the committed `tests/fixtures/tiny_bundle/`.
//!
//! The streamed side of every comparison goes through [`StreamingBundle`]
//! only — no full feature `Matrix` is ever constructed on that side, and
//! every chunk is asserted to hold at most `chunk_rows` rows, which is what
//! makes the `O(chunk_rows x feature_dim)` peak-feature-memory claim
//! checkable.

use std::path::PathBuf;
use zsl_core::data::{
    export_dataset, DatasetBundle, FeatureFormat, SplitManifest, StreamingBundle, SyntheticConfig,
    SPLITS_TXT,
};
use zsl_core::eval::{
    cross_validate, evaluate_gzsl, evaluate_gzsl_stream, select_train_evaluate,
    select_train_evaluate_stream, CrossValConfig, EvalError,
};
use zsl_core::infer::Similarity;
use zsl_core::model::{EszslConfig, EszslProblem, GramAccumulator};
use zsl_core::{Dataset, Rng};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_stream_equiv_{}_{tag}", std::process::id()))
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

/// The chunk sizes the ISSUE pins: degenerate (1), coprime-ish small (3, 7),
/// exactly one chunk (n), and larger than the data (n + 13).
fn chunk_sizes(n_rows: usize) -> [usize; 5] {
    [1, 3, 7, n_rows, n_rows + 13]
}

/// A synthetic bundle big enough to straddle several chunk boundaries but
/// fast enough for the tier-1 suite.
fn synthetic_dataset() -> Dataset {
    SyntheticConfig::new()
        .classes(6, 2)
        .dims(4, 5)
        .samples(4, 3)
        .noise(0.05)
        .seed(20_26)
        .build()
}

/// Stream every trainval chunk of `bundle` into a fresh accumulator,
/// asserting the memory bound (no chunk exceeds `chunk_rows` rows) along the
/// way.
fn streamed_problem(bundle: &StreamingBundle) -> EszslProblem {
    let mut acc = GramAccumulator::new(&bundle.seen_signatures());
    for chunk in bundle.stream_trainval().expect("trainval stream") {
        let (x, labels) = chunk.expect("chunk");
        assert!(
            x.rows() <= bundle.chunk_rows(),
            "chunk of {} rows exceeds chunk_rows={}",
            x.rows(),
            bundle.chunk_rows()
        );
        assert_eq!(x.cols(), bundle.feature_dim());
        acc.fold(&x, &labels).expect("fold");
    }
    acc.finish().expect("finish")
}

/// Collect streamed predictions for a split, again asserting the chunk-size
/// bound.
fn streamed_predictions(
    engine: &zsl_core::infer::ScoringEngine,
    stream: zsl_core::data::SplitStream,
    chunk_rows: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut preds = Vec::new();
    let mut labels = Vec::new();
    for chunk in stream {
        let (x, l) = chunk.expect("chunk");
        assert!(x.rows() <= chunk_rows);
        preds.extend(engine.predict(&x));
        labels.extend(l);
    }
    (preds, labels)
}

#[test]
fn streamed_gram_training_and_prediction_match_in_memory_at_every_chunk_size() {
    let ds = synthetic_dataset();
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let dir = temp_dir(&format!("diff_{format:?}"));
        export_dataset(&ds, &dir, format).expect("export");
        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let reference = EszslProblem::new(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
            .expect("in-memory problem");
        let model = EszslConfig::new()
            .gamma(1.0)
            .lambda(1.0)
            .build()
            .train(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
            .expect("train");
        let engine = zsl_core::infer::ScoringEngine::new(
            model.clone(),
            mem.all_signatures(),
            Similarity::Cosine,
        );
        let mem_seen_pred = engine.predict(&mem.test_seen_x);
        let mem_unseen_pred = engine.predict(&mem.test_unseen_x);
        let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine);

        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let label = format!("{format:?} chunk_rows={chunk_rows}");
            let bundle =
                StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open stream");
            assert_eq!(
                bundle.num_samples(),
                mem.train_x.rows() + mem.test_seen_x.rows() + mem.test_unseen_x.rows()
            );

            // 1. Gram accumulators are bit-identical.
            let streamed = streamed_problem(&bundle);
            assert_eq!(
                streamed.xtx().as_slice(),
                reference.xtx().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.xtys().as_slice(),
                reference.xtys().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.sts().as_slice(),
                reference.sts().as_slice(),
                "{label}"
            );

            // 2. Trained weights are bit-identical.
            for (gamma, lambda) in [(1.0, 1.0), (0.01, 100.0)] {
                assert_eq!(
                    streamed
                        .solve(gamma, lambda)
                        .expect("solve")
                        .weights()
                        .as_slice(),
                    reference
                        .solve(gamma, lambda)
                        .expect("solve")
                        .weights()
                        .as_slice(),
                    "{label} gamma={gamma} lambda={lambda}"
                );
            }

            // 3. Streamed predictions equal in-memory predictions, with the
            //    labels streaming alongside in the same (manifest) order.
            let (pred, labels) = streamed_predictions(
                &engine,
                bundle.stream_test_seen().expect("seen stream"),
                chunk_rows,
            );
            assert_eq!(pred, mem_seen_pred, "{label}");
            assert_eq!(labels, mem.test_seen_labels, "{label}");
            let (pred, labels) = streamed_predictions(
                &engine,
                bundle.stream_test_unseen().expect("unseen stream"),
                chunk_rows,
            );
            assert_eq!(pred, mem_unseen_pred, "{label}");
            assert_eq!(labels, mem.test_unseen_labels, "{label}");

            // 3b. predict_stream sugar agrees too.
            let stream = bundle
                .stream_test_seen()
                .expect("seen stream")
                .map(|r| r.map(|(x, _)| x));
            assert_eq!(
                engine.predict_stream(stream).expect("predict_stream"),
                mem_seen_pred,
                "{label}"
            );

            // 4. The streamed GZSL report is the in-memory report, bit for bit.
            let streamed_report =
                evaluate_gzsl_stream(&model, &bundle, Similarity::Cosine).expect("gzsl stream");
            assert_eq!(streamed_report, mem_report, "{label}");
            assert_eq!(
                streamed_report.harmonic_mean.to_bits(),
                mem_report.harmonic_mean.to_bits(),
                "{label}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn streamed_full_protocol_matches_select_train_evaluate() {
    let ds = synthetic_dataset();
    let dir = temp_dir("protocol");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let config = CrossValConfig::new()
        .gammas(vec![0.1, 1.0, 10.0])
        .lambdas(vec![0.1, 1.0])
        .folds(3)
        .seed(777);
    let (mem_cv, mem_report) = select_train_evaluate(&mem, &config).expect("in-memory protocol");

    for chunk_rows in chunk_sizes(mem.train_x.rows()) {
        let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
        let (cv, report) =
            select_train_evaluate_stream(&bundle, &config).expect("streamed protocol");
        assert_eq!(cv, mem_cv, "chunk_rows={chunk_rows}");
        assert_eq!(report, mem_report, "chunk_rows={chunk_rows}");
    }

    // The underlying streamed cross-validation also matches the raw sweep.
    let bundle = StreamingBundle::open(&dir, 5).expect("open");
    let raw_cv = cross_validate(
        &mem.train_x,
        &mem.train_labels,
        &mem.seen_signatures,
        &config,
    )
    .expect("raw cv");
    let streamed_cv = zsl_core::eval::cross_validate_stream(&bundle, &config).expect("streamed cv");
    assert_eq!(streamed_cv, raw_cv);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shuffled_manifest_order_streams_bit_identically_via_indexed_reads() {
    // A manifest whose split indices are NOT ascending exercises the
    // seek-based indexed .zsb path; the in-memory gather honors manifest
    // order, so the streamed side must too.
    let ds = synthetic_dataset();
    let dir = temp_dir("shuffled");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let manifest_path = dir.join(SPLITS_TXT);
    let mut manifest = SplitManifest::read(&manifest_path).expect("manifest");
    let mut rng = Rng::new(0xD15C);
    rng.shuffle(&mut manifest.trainval);
    rng.shuffle(&mut manifest.test_seen);
    rng.shuffle(&mut manifest.test_unseen);
    manifest.write(&manifest_path).expect("rewrite");

    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let reference =
        EszslProblem::new(&mem.train_x, &mem.train_labels, &mem.seen_signatures).expect("problem");
    let model = EszslConfig::new()
        .build()
        .train(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
        .expect("train");
    let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine);

    for chunk_rows in chunk_sizes(mem.train_x.rows()) {
        let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
        let streamed = streamed_problem(&bundle);
        assert_eq!(
            streamed.xtx().as_slice(),
            reference.xtx().as_slice(),
            "chunk_rows={chunk_rows}"
        );
        assert_eq!(
            streamed.xtys().as_slice(),
            reference.xtys().as_slice(),
            "chunk_rows={chunk_rows}"
        );
        let report = evaluate_gzsl_stream(&model, &bundle, Similarity::Cosine).expect("stream");
        assert_eq!(report, mem_report, "chunk_rows={chunk_rows}");
    }

    // CSV cannot serve a shuffled manifest (no random access): typed error,
    // not silent reordering.
    std::fs::remove_file(dir.join("features.zsb")).expect("drop zsb");
    export_dataset(&ds, &temp_dir("shuffled_csv_src"), FeatureFormat::Csv).ok();
    let csv_dir = temp_dir("shuffled_csv");
    export_dataset(&ds, &csv_dir, FeatureFormat::Csv).expect("export csv");
    let mut csv_manifest = SplitManifest::read(&csv_dir.join(SPLITS_TXT)).expect("manifest");
    csv_manifest.trainval.reverse();
    csv_manifest
        .write(&csv_dir.join(SPLITS_TXT))
        .expect("rewrite");
    let bundle = StreamingBundle::open(&csv_dir, 4).expect("open csv");
    match bundle.stream_trainval() {
        Err(zsl_core::DataError::Split { message }) => {
            assert!(message.contains("re-export"), "got: {message}")
        }
        other => panic!("expected Split error for shuffled CSV stream, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&csv_dir).ok();
    std::fs::remove_dir_all(temp_dir("shuffled_csv_src")).ok();
}

#[test]
fn tiny_bundle_fixture_streams_bit_identically_in_both_formats() {
    let dir = fixture_dir();
    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let mem = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let reference = EszslProblem::new(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
            .expect("problem");
        let model = EszslConfig::new()
            .build()
            .train(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
            .expect("train");
        let mem_report = evaluate_gzsl(&model, &mem, Similarity::Cosine);
        for chunk_rows in chunk_sizes(mem.train_x.rows()) {
            let bundle = StreamingBundle::open_with_format(&dir, format, chunk_rows).expect("open");
            let streamed = streamed_problem(&bundle);
            let label = format!("{format:?} chunk_rows={chunk_rows}");
            assert_eq!(
                streamed.xtx().as_slice(),
                reference.xtx().as_slice(),
                "{label}"
            );
            assert_eq!(
                streamed.xtys().as_slice(),
                reference.xtys().as_slice(),
                "{label}"
            );
            let report = evaluate_gzsl_stream(&model, &bundle, Similarity::Cosine).expect("stream");
            assert_eq!(report, mem_report, "{label}");
        }
    }
}

#[test]
fn csv_file_shrinking_after_open_is_a_typed_error_not_a_smaller_split() {
    // A .zsb file re-validates its promised length on every open and maps a
    // mid-read shrink to Truncated. CSV has no header, so a file that loses
    // rows between StreamingBundle::open and a streaming pass would just end
    // early — the stream must notice the missing selected rows and error
    // rather than hand evaluators a silently smaller split.
    let ds = synthetic_dataset();
    let dir = temp_dir("csv_shrink");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");

    let csv_path = dir.join("features.csv");
    let text = std::fs::read_to_string(&csv_path).expect("read");
    let kept: Vec<&str> = text.lines().collect();
    let shrunk = kept[..kept.len() - 3].join("\n");
    std::fs::write(&csv_path, shrunk).expect("shrink");

    // test_unseen rows live at the end of the export, so they are the ones
    // missing now.
    let outcome: Result<Vec<_>, _> = bundle
        .stream_test_unseen()
        .expect("stream handle")
        .collect();
    match outcome {
        Err(zsl_core::DataError::Shape { message }) => {
            assert!(message.contains("shrank"), "got: {message}")
        }
        other => panic!("expected Shape error for shrunken CSV, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn split_stream_fuses_after_first_error_without_fabricating_a_second() {
    // A parse error mid-CSV must surface exactly once; polling past it gets
    // None — not a bogus "file shrank" follow-up from the remaining-rows
    // bookkeeping.
    let ds = synthetic_dataset();
    let dir = temp_dir("fuse");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");

    let csv_path = dir.join("features.csv");
    let text = std::fs::read_to_string(&csv_path).expect("read");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mid = lines.len() / 2;
    lines[mid] = "0,not_a_float,1.0".into();
    std::fs::write(&csv_path, lines.join("\n")).expect("corrupt");

    let mut stream = bundle.stream_trainval().expect("stream");
    let mut saw_parse_error = false;
    for item in &mut stream {
        match item {
            Ok(_) => continue,
            Err(zsl_core::DataError::Parse { .. }) => {
                saw_parse_error = true;
                break;
            }
            Err(other) => panic!("expected Parse error, got {other:?}"),
        }
    }
    assert!(saw_parse_error);
    assert!(stream.next().is_none(), "stream must fuse after an error");
    assert!(stream.next().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_streamed_protocol_rejects_cv_but_supports_fixed_hyperparams() {
    // The CSV format supports the whole streamed pipeline except shuffled CV
    // folds; the rejection is a typed InvalidConfig, and the fixed-(γ,λ)
    // streamed path still matches in-memory bit-for-bit.
    let ds = synthetic_dataset();
    let dir = temp_dir("csv_protocol");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 8).expect("open");
    assert_eq!(bundle.format(), FeatureFormat::Csv);
    let config = CrossValConfig::new().folds(2);
    match select_train_evaluate_stream(&bundle, &config) {
        Err(EvalError::InvalidConfig(msg)) => {
            assert!(msg.contains("features.zsb"), "got: {msg}")
        }
        other => panic!("expected InvalidConfig for CSV CV, got {other:?}"),
    }

    let mem = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let trainer = EszslConfig::new().gamma(0.5).lambda(2.0).build();
    let mem_model = trainer
        .train(&mem.train_x, &mem.train_labels, &mem.seen_signatures)
        .expect("train");
    let stream = bundle
        .stream_trainval()
        .expect("stream")
        .map(|r| r.map_err(EvalError::from));
    let streamed_model: zsl_core::model::ProjectionModel = trainer
        .train_stream(stream, &bundle.seen_signatures())
        .expect("train_stream");
    assert_eq!(
        streamed_model.weights().as_slice(),
        mem_model.weights().as_slice()
    );
    assert_eq!(
        evaluate_gzsl_stream(&streamed_model, &bundle, Similarity::Cosine).expect("stream"),
        evaluate_gzsl(&mem_model, &mem, Similarity::Cosine)
    );
    std::fs::remove_dir_all(&dir).ok();
}
