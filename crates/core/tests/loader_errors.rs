//! Error-path coverage for the dataset loader: corrupt, truncated, and
//! inconsistent bundles must surface typed `DataError`s — never panics —
//! because the loader is the boundary where untrusted on-disk data enters
//! the engine.

use std::path::PathBuf;
use zsl_core::data::{
    export_dataset, CsvChunkReader, DataError, DatasetBundle, FeatureFormat, SplitManifest,
    StreamingBundle, SyntheticConfig, ZsbChunkReader, FEATURES_CSV, FEATURES_ZSB, SIGNATURES_CSV,
    SPLITS_TXT,
};

/// Fresh bundle directory holding a small valid synthetic export.
fn valid_bundle(tag: &str, format: FeatureFormat) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsl_errors_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ds = SyntheticConfig::new()
        .classes(4, 2)
        .dims(3, 5)
        .samples(3, 2)
        .seed(17)
        .build();
    export_dataset(&ds, &dir, format).expect("export");
    dir
}

fn cleanup(dir: &PathBuf) {
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn truncated_zsb_is_a_typed_truncation_error() {
    let dir = valid_bundle("truncated", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    let bytes = std::fs::read(&path).unwrap();
    // Cut the payload mid-features; also try cutting inside the header.
    for keep in [bytes.len() - 9, 40, 10] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match DatasetBundle::load(&dir) {
            Err(DataError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(actual, keep as u64);
                assert!(expected > actual, "expected {expected} > actual {actual}");
            }
            other => panic!("keep={keep}: expected Truncated, got {other:?}"),
        }
    }
    cleanup(&dir);
}

#[test]
fn bad_magic_version_flags_and_trailing_bytes_are_header_errors() {
    let dir = valid_bundle("header", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    let pristine = std::fs::read(&path).unwrap();

    let mut bad_magic = pristine.clone();
    bad_magic[0..4].copy_from_slice(b"NOPE");
    let mut bad_version = pristine.clone();
    bad_version[4..6].copy_from_slice(&99u16.to_le_bytes());
    let mut bad_flags = pristine.clone();
    bad_flags[6..8].copy_from_slice(&1u16.to_le_bytes());
    let mut trailing = pristine.clone();
    trailing.extend_from_slice(&[0u8; 7]);

    for (what, bytes) in [
        ("magic", bad_magic),
        ("version", bad_version),
        ("flags", bad_flags),
        ("trailing", trailing),
    ] {
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(DatasetBundle::load(&dir), Err(DataError::Header { .. })),
            "{what} corruption must be a Header error"
        );
    }
    cleanup(&dir);
}

#[test]
fn header_dim_mismatches_are_detected() {
    let dir = valid_bundle("dims", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    let pristine = std::fs::read(&path).unwrap();

    // Inflating feature_dim makes the promised payload longer than the file.
    let mut wide = pristine.clone();
    wide[16..20].copy_from_slice(&1000u32.to_le_bytes());
    std::fs::write(&path, &wide).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Truncated { .. })
    ));

    // A wrong class_count leaves the size intact but contradicts the labels.
    let mut misclassed = pristine.clone();
    misclassed[20..24].copy_from_slice(&2u32.to_le_bytes());
    std::fs::write(&path, &misclassed).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::Header { message, .. }) => {
            assert!(message.contains("distinct classes"), "got: {message}")
        }
        other => panic!("expected Header error, got {other:?}"),
    }

    // Zeroed n_samples is rejected outright.
    let mut empty = pristine.clone();
    empty[8..16].copy_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &empty).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Header { .. })
    ));
    cleanup(&dir);
}

#[test]
fn overflowing_header_dims_are_a_header_error_not_a_panic() {
    // Regression: n_samples = 2^62 with feature_dim = 2 used to wrap the
    // expected-size arithmetic back to exactly the header length, pass both
    // length checks, and abort on allocation instead of returning an error.
    let dir = valid_bundle("overflow", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    let mut bytes = std::fs::read(&path).unwrap()[..32].to_vec();
    bytes[8..16].copy_from_slice(&(1u64 << 62).to_le_bytes()); // n_samples
    bytes[16..20].copy_from_slice(&2u32.to_le_bytes()); // feature_dim
    std::fs::write(&path, &bytes).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::Header { message, .. }) => {
            assert!(message.contains("overflow"), "got: {message}")
        }
        other => panic!("expected Header overflow error, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn chunk_readers_reject_zero_chunk_rows_with_a_typed_error() {
    let dir = valid_bundle("zero_chunk", FeatureFormat::Zsb);
    export_dataset(
        &SyntheticConfig::new()
            .classes(4, 2)
            .dims(3, 5)
            .samples(3, 2)
            .seed(17)
            .build(),
        &dir,
        FeatureFormat::Csv,
    )
    .expect("csv twin");
    // A zero-row chunk could never make progress: every streaming entry
    // point rejects it up front instead of looping forever.
    match ZsbChunkReader::open(&dir.join(FEATURES_ZSB), 0) {
        Err(DataError::Shape { message }) => assert!(message.contains("chunk_rows"), "{message}"),
        other => panic!("expected Shape error, got {other:?}"),
    }
    match CsvChunkReader::open(&dir.join(FEATURES_CSV), 0) {
        Err(DataError::Shape { message }) => assert!(message.contains("chunk_rows"), "{message}"),
        other => panic!("expected Shape error, got {other:?}"),
    }
    match StreamingBundle::open(&dir, 0) {
        Err(DataError::Shape { message }) => assert!(message.contains("chunk_rows"), "{message}"),
        other => panic!("expected Shape error, got {other:?}"),
    }
    match ZsbChunkReader::open_indexed(&dir.join(FEATURES_ZSB), &[0, 1], 0) {
        Err(DataError::Shape { message }) => assert!(message.contains("chunk_rows"), "{message}"),
        other => panic!("expected Shape error, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn chunk_reader_rejects_header_dims_that_overflow_before_allocating() {
    // Same regression class as the in-memory loader's overflow check, now on
    // the streaming entry point: a crafted header must produce a typed
    // Header error, never an abort-on-allocation. Two shapes:
    // n·d·8 wrapping u64, and n·d exceeding what fits in memory arithmetic.
    let dir = valid_bundle("stream_overflow", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    let pristine = std::fs::read(&path).unwrap()[..32].to_vec();
    for (n, d) in [(1u64 << 62, 2u32), (1u64 << 61, 8), (u64::MAX / 9, 9)] {
        let mut bytes = pristine.clone();
        bytes[8..16].copy_from_slice(&n.to_le_bytes());
        bytes[16..20].copy_from_slice(&d.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match ZsbChunkReader::open(&path, 4) {
            Err(DataError::Header { message, .. }) => {
                assert!(message.contains("overflow"), "n={n} d={d}: {message}")
            }
            other => panic!("n={n} d={d}: expected Header overflow error, got {other:?}"),
        }
        // The streaming bundle surfaces the same rejection.
        assert!(matches!(
            StreamingBundle::open(&dir, 4),
            Err(DataError::Header { .. })
        ));
    }
    cleanup(&dir);
}

#[test]
fn indexed_chunk_reader_rejects_out_of_range_rows() {
    let dir = valid_bundle("indexed_range", FeatureFormat::Zsb);
    let path = dir.join(FEATURES_ZSB);
    match ZsbChunkReader::open_indexed(&path, &[0, 1_000_000], 4) {
        Err(DataError::Split { message, .. }) => {
            assert!(message.contains("1000000"), "{message}")
        }
        other => panic!("expected Split error, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn streaming_bundle_mirrors_loader_validation() {
    // The streaming open must reject the same cross-file inconsistencies the
    // in-memory loader does — spot-check one of each family.
    let dir = valid_bundle("stream_validation", FeatureFormat::Zsb);

    // Unknown feature label (relabel sample 0 in the binary label block;
    // bump the header class_count so the header stays self-consistent and
    // the cross-file check is the one that fires).
    let path = dir.join(FEATURES_ZSB);
    let pristine_features = std::fs::read(&path).unwrap();
    let mut bytes = pristine_features.clone();
    bytes[32..36].copy_from_slice(&777u32.to_le_bytes());
    bytes[20..24].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StreamingBundle::open(&dir, 4),
        Err(DataError::UnknownClass { label: 777, .. })
    ));
    std::fs::write(&path, &pristine_features).unwrap();

    // Out-of-range split index.
    let manifest_path = dir.join(SPLITS_TXT);
    let pristine = SplitManifest::read(&manifest_path).unwrap();
    let mut bad = pristine.clone();
    bad.trainval.push(1_000_000);
    bad.write(&manifest_path).unwrap();
    assert!(matches!(
        StreamingBundle::open(&dir, 4),
        Err(DataError::Split { .. })
    ));

    // Declared unseen class that the signature table lacks.
    let mut bad = pristine.clone();
    bad.unseen_classes.as_mut().unwrap().push(424_242);
    bad.write(&manifest_path).unwrap();
    assert!(matches!(
        StreamingBundle::open(&dir, 4),
        Err(DataError::UnknownClass { label: 424_242, .. })
    ));

    // Seen/unseen overlap — caught at open (the in-memory path defers this
    // to to_dataset; streaming validates the whole plan up front).
    let mut bad = pristine.clone();
    let moved = bad.trainval.pop().unwrap();
    bad.test_unseen.push(moved);
    bad.unseen_classes = None;
    bad.write(&manifest_path).unwrap();
    assert!(matches!(
        StreamingBundle::open(&dir, 4),
        Err(DataError::Split { .. })
    ));
    cleanup(&dir);
}

#[test]
fn unknown_class_in_features_is_reported_with_context() {
    let dir = valid_bundle("unknown_feature_class", FeatureFormat::Csv);
    let path = dir.join(FEATURES_CSV);
    let mut text = std::fs::read_to_string(&path).unwrap();
    // Relabel the first sample with a class the signature table lacks.
    let first_comma = text.find(',').unwrap();
    text.replace_range(..first_comma, "777");
    std::fs::write(&path, text).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::UnknownClass {
            label: 777,
            context,
        }) => {
            assert!(context.contains(FEATURES_CSV), "context: {context}")
        }
        other => panic!("expected UnknownClass, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn unknown_class_in_split_manifest_is_reported_with_context() {
    let dir = valid_bundle("unknown_manifest_class", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let mut manifest = SplitManifest::read(&path).unwrap();
    manifest.unseen_classes.as_mut().unwrap().push(424_242);
    manifest.write(&path).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::UnknownClass {
            label: 424_242,
            context,
        }) => {
            assert!(context.contains(SPLITS_TXT), "context: {context}")
        }
        other => panic!("expected UnknownClass, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn declared_unseen_set_must_match_observed_unseen_samples() {
    let dir = valid_bundle("unseen_mismatch", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let mut manifest = SplitManifest::read(&path).unwrap();
    // Class 0 exists but is a *seen* class: declared set no longer matches.
    manifest.unseen_classes.as_mut().unwrap().push(0);
    manifest.write(&path).unwrap();
    let bundle = DatasetBundle::load(&dir).expect("labels all resolve");
    assert!(matches!(bundle.to_dataset(), Err(DataError::Split { .. })));
    cleanup(&dir);
}

#[test]
fn empty_and_missing_splits_are_empty_split_errors() {
    let dir = valid_bundle("empty_split", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let pristine = SplitManifest::read(&path).unwrap();

    let mut empty = pristine.clone();
    empty.test_unseen.clear();
    empty.write(&path).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::EmptySplit { split }) if split == "test_unseen"
    ));

    // A manifest missing the trainval section entirely.
    std::fs::write(&path, "test_seen: 0\ntest_unseen: 1\n").unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::EmptySplit { split }) if split == "trainval"
    ));
    cleanup(&dir);
}

#[test]
fn malformed_manifest_lines_are_parse_errors() {
    let dir = valid_bundle("bad_manifest", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    for bad in [
        "trainval 0 1\n",                                                // missing colon
        "trainval: 0\nbogus_section: 1\ntest_seen: 2\ntest_unseen: 3\n", // unknown name
        "trainval: 0\ntrainval: 1\ntest_seen: 2\ntest_unseen: 3\n",      // repeat
        "trainval: zero\ntest_seen: 1\ntest_unseen: 2\n",                // bad index
    ] {
        std::fs::write(&path, bad).unwrap();
        assert!(
            matches!(DatasetBundle::load(&dir), Err(DataError::Parse { .. })),
            "manifest {bad:?} must be a Parse error"
        );
    }
    cleanup(&dir);
}

#[test]
fn out_of_range_and_overlapping_split_indices_are_split_errors() {
    let dir = valid_bundle("split_indices", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let pristine = SplitManifest::read(&path).unwrap();

    let mut out_of_range = pristine.clone();
    out_of_range.trainval.push(1_000_000);
    out_of_range.write(&path).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Split { .. })
    ));

    let mut overlapping = pristine.clone();
    let stolen = overlapping.test_seen[0];
    overlapping.trainval.push(stolen);
    overlapping.write(&path).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Split { .. })
    ));
    cleanup(&dir);
}

#[test]
fn seen_unseen_class_overlap_is_rejected_at_materialization() {
    let dir = valid_bundle("class_overlap", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let mut manifest = SplitManifest::read(&path).unwrap();
    // Move a trainval sample into test_unseen: its (seen) class now appears
    // on both sides of the GZSL boundary. Drop the declared unseen set so the
    // overlap check itself fires.
    let moved = manifest.trainval.pop().unwrap();
    manifest.test_unseen.push(moved);
    manifest.unseen_classes = None;
    manifest.write(&path).unwrap();
    let bundle = DatasetBundle::load(&dir).expect("structurally fine");
    match bundle.to_dataset() {
        Err(DataError::Split { message, .. }) => {
            assert!(
                message.contains("both trainval and test_unseen"),
                "got: {message}"
            )
        }
        other => panic!("expected Split error, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn ragged_and_non_numeric_csv_rows_are_parse_errors() {
    let dir = valid_bundle("bad_csv", FeatureFormat::Csv);
    let path = dir.join(FEATURES_CSV);
    let pristine = std::fs::read_to_string(&path).unwrap();

    let ragged = format!("{pristine}3,1.0\n");
    std::fs::write(&path, ragged).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Parse { .. })
    ));

    let garbled = format!("{pristine}3,1.0,abc,2.0,3.0,4.0\n");
    std::fs::write(&path, garbled).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Parse { .. })
    ));
    cleanup(&dir);
}

#[test]
fn duplicate_signature_labels_are_rejected() {
    let dir = valid_bundle("dup_class", FeatureFormat::Zsb);
    let path = dir.join(SIGNATURES_CSV);
    let mut text = std::fs::read_to_string(&path).unwrap();
    let first_line = text.lines().next().unwrap().to_string();
    text.push_str(&first_line);
    text.push('\n');
    std::fs::write(&path, text).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::DuplicateClass { label: 0 })
    ));
    cleanup(&dir);
}

#[test]
fn missing_feature_table_is_an_io_error() {
    let dir = valid_bundle("missing_features", FeatureFormat::Zsb);
    std::fs::remove_file(dir.join(FEATURES_ZSB)).unwrap();
    assert!(matches!(
        DatasetBundle::load(&dir),
        Err(DataError::Io { .. })
    ));
    cleanup(&dir);
}

#[test]
fn split_manifest_errors_carry_the_offending_line() {
    let dir = valid_bundle("split_line_numbers", FeatureFormat::Zsb);
    let path = dir.join(SPLITS_TXT);
    let pristine = SplitManifest::read(&path).unwrap();

    // Out-of-range index in test_seen: the error must name splits.txt and
    // the 1-based line the test_seen section sits on (line 1 is the header
    // comment, line 2 trainval, line 3 test_seen).
    let mut bad = pristine.clone();
    bad.test_seen.push(1_000_000);
    bad.write(&path).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::Split {
            path: Some(p),
            line: Some(line),
            message,
        }) => {
            assert!(p.ends_with(SPLITS_TXT), "wrong path: {}", p.display());
            assert_eq!(line, 3, "test_seen section line");
            assert!(message.contains("out of range"), "message: {message}");
        }
        other => panic!("expected a located Split error, got {other:?}"),
    }

    // Duplicate assignment: points at the *second* section claiming the
    // sample (test_unseen, line 4).
    let mut bad = pristine.clone();
    bad.test_unseen.push(pristine.trainval[0]);
    bad.write(&path).unwrap();
    match DatasetBundle::load(&dir) {
        Err(DataError::Split {
            path: Some(p),
            line: Some(line),
            message,
        }) => {
            assert!(p.ends_with(SPLITS_TXT), "wrong path: {}", p.display());
            assert_eq!(line, 4, "test_unseen section line");
            assert!(
                message.contains("more than one split"),
                "message: {message}"
            );
            // And the rendered form is the clickable path:line shape.
            let rendered = DataError::Split {
                path: Some(p),
                line: Some(line),
                message,
            }
            .to_string();
            assert!(
                rendered.contains("splits.txt:4"),
                "rendered error should embed path:line, got: {rendered}"
            );
        }
        other => panic!("expected a located Split error, got {other:?}"),
    }
    cleanup(&dir);
}
