//! Facade + unified-API test layer: the [`Pipeline`] builder must be a pure
//! re-wiring of the generic entry points (bit-identical results, including
//! through `dyn FeatureSource`), [`MemorySource`] must replace the old
//! raw-matrix call shapes, and the top-level [`ZslError`] must chain causes.

use std::path::PathBuf;
use zsl_core::data::{export_dataset, FeatureFormat, StreamingBundle, SyntheticConfig};
use zsl_core::eval::{cross_validate, evaluate_gzsl, select_train_evaluate, CrossValConfig};
use zsl_core::infer::{ScoringEngine, Similarity};
use zsl_core::model::EszslConfig;
use zsl_core::source::{FeatureSource, MemorySource, SplitKind};
use zsl_core::{Dataset, Pipeline, ZslError};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_pipeline_api_{}_{tag}", std::process::id()))
}

fn dataset() -> Dataset {
    SyntheticConfig::new()
        .classes(8, 3)
        .dims(5, 9)
        .samples(6, 4)
        .seed(0xFACE)
        .build()
}

fn small_config() -> CrossValConfig {
    CrossValConfig::new()
        .gammas(vec![0.1, 1.0])
        .lambdas(vec![0.1, 1.0])
        .folds(3)
        .seed(42)
}

#[test]
fn pipeline_facade_equals_direct_protocol_for_every_source_kind() {
    let ds = dataset();
    let config = small_config();
    let dir = temp_dir("facade");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let bundle = StreamingBundle::open(&dir, 7).expect("open");

    let (direct_cv, direct_report) = select_train_evaluate(&ds, &config).expect("direct");

    // In-memory source.
    let trained = Pipeline::from(&ds)
        .cross_validate(&config)
        .expect("cv")
        .train()
        .expect("train");
    assert_eq!(trained.cv_report(), Some(&direct_cv));
    assert_eq!(trained.evaluate().expect("evaluate"), direct_report);

    // Streamed source, same facade chain, same bits.
    let streamed = Pipeline::from(&bundle)
        .cross_validate(&config)
        .expect("cv")
        .train()
        .expect("train");
    assert_eq!(streamed.cv_report(), Some(&direct_cv));
    assert_eq!(streamed.evaluate().expect("evaluate"), direct_report);
    assert_eq!(
        streamed
            .model()
            .projection()
            .expect("linear")
            .weights()
            .as_slice(),
        trained
            .model()
            .projection()
            .expect("linear")
            .weights()
            .as_slice()
    );

    // Runtime-chosen source through a trait object (the CLI's shape).
    let dynamic: &dyn FeatureSource = &bundle;
    let dyn_trained = Pipeline::from(dynamic)
        .cross_validate(&config)
        .expect("cv")
        .train()
        .expect("train");
    assert_eq!(dyn_trained.evaluate().expect("evaluate"), direct_report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_save_then_serve_round_trips_bit_identically() {
    let ds = dataset();
    let trained = Pipeline::from(&ds)
        .config(EszslConfig::new().gamma(0.3).lambda(3.0))
        .train()
        .expect("train");
    let report = trained.evaluate().expect("evaluate");

    let path = temp_dir("artifact").with_extension("zsm");
    trained.save(&path).expect("save");
    let (engine, metadata) = ScoringEngine::load_with_metadata(&path).expect("load");
    assert!(
        metadata.contains("gamma=0.3") && metadata.contains("lambda=3"),
        "provenance must record the hyperparameters: {metadata}"
    );
    // Serving: engine + source only, no retraining.
    let served = zsl_core::eval::evaluate_gzsl_with(&engine, &ds).expect("serve");
    assert_eq!(served, report);
    assert_eq!(
        engine.predict(&ds.test_unseen_x),
        trained.engine().predict(&ds.test_unseen_x)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn memory_source_replaces_the_old_raw_matrix_cross_validate() {
    let ds = dataset();
    let config = small_config();
    // The pre-PR 5 call was cross_validate(&x, &labels, &signatures, &cfg);
    // the MemorySource wrapper must reproduce the Dataset sweep exactly
    // (same trainval data, same seeded folds).
    let source = MemorySource::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures);
    let via_memory = cross_validate(&source, &config).expect("memory cv");
    let via_dataset = cross_validate(&ds, &config).expect("dataset cv");
    assert_eq!(via_memory, via_dataset);
}

#[test]
fn generic_entry_points_share_one_error_type_with_sources() {
    let ds = dataset();
    // Config errors.
    let err = cross_validate(&ds, &small_config().folds(1)).unwrap_err();
    assert!(matches!(err, ZslError::Config(_)));
    // Train errors flow through with a source() chain.
    let err = Pipeline::from(&ds)
        .config(EszslConfig::new().gamma(-3.0))
        .train()
        .unwrap_err();
    assert!(matches!(err, ZslError::Train(_)));
    assert!(
        std::error::Error::source(&err).is_some(),
        "ZslError::Train must chain its cause"
    );
    // Data errors from a broken streamed source keep their typed inner error.
    let dir = temp_dir("broken");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 4).expect("open");
    std::fs::remove_file(dir.join("features.csv")).expect("delete");
    let err = evaluate_gzsl(
        &EszslConfig::new().build().fit(&ds).expect("fit"),
        &bundle,
        Similarity::Cosine,
    )
    .unwrap_err();
    match &err {
        ZslError::Data(inner) => assert!(matches!(inner, zsl_core::DataError::Io { .. })),
        other => panic!("expected ZslError::Data, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serving_a_model_from_another_feature_space_is_a_typed_error_not_a_panic() {
    // A .zsm trained on d=9 features served against a d=4 bundle with the
    // same class counts must surface ZslError::Config — the serving path
    // never reaches the matmul shape assert.
    let ds = dataset(); // d = 9, 8 seen + 3 unseen
    let narrow = SyntheticConfig::new()
        .classes(8, 3)
        .dims(5, 4)
        .samples(6, 4)
        .seed(0xD1FF)
        .build(); // d = 4, same class structure
    let trained = Pipeline::from(&ds).train().expect("train");
    let path = temp_dir("wrong_dim").with_extension("zsm");
    trained.save(&path).expect("save");
    let engine = ScoringEngine::load(&path).expect("load");

    // Same class structure (8 + 3, attr_dim 5), so the class-count gate
    // passes and only the feature-width gate can catch the mismatch:
    let err = engine
        .predict_source(&narrow, SplitKind::TestSeen)
        .unwrap_err();
    assert!(
        matches!(&err, ZslError::Config(msg) if msg.contains("feature space")),
        "got {err:?}"
    );
    let err = zsl_core::eval::evaluate_gzsl_with(&engine, &narrow).unwrap_err();
    assert!(matches!(&err, ZslError::Config(_)), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn predict_source_agrees_across_source_kinds() {
    let ds = dataset();
    let dir = temp_dir("predict");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export");
    let bundle = StreamingBundle::open(&dir, 3).expect("open");
    let model = EszslConfig::new().build().fit(&ds).expect("fit");
    let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
    for split in [
        SplitKind::Trainval,
        SplitKind::TestSeen,
        SplitKind::TestUnseen,
    ] {
        assert_eq!(
            engine.predict_source(&ds, split).expect("dataset"),
            engine.predict_source(&bundle, split).expect("bundle"),
            "{split:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
