//! Release-mode scoring-throughput harness.
//!
//! These tests are `#[ignore]`d so the tier-1 suite stays fast; run them with
//!
//! ```sh
//! cargo test --release -p zsl-core --test throughput -- --ignored --nocapture
//! ```
//!
//! Set `ZSL_BENCH_SMOKE=1` (as CI does on every push) to shrink the workload
//! to a few hundred milliseconds while still exercising the parallel path.
//! Each test prints a stable `[bench]`-prefixed line so future PRs can diff
//! throughput against this baseline. Setting `ZSL_BENCH_JSON=<path>`
//! additionally makes the per-trainer test write its numbers as a JSON
//! snapshot (the committed `BENCH_core.json` trajectory, mirroring the
//! serve crate's `BENCH_serving.json`).

use std::time::Instant;
use zsl_core::data::{export_dataset, DatasetBundle, Rng, StreamingBundle, SyntheticConfig};
use zsl_core::eval::evaluate_gzsl;
use zsl_core::infer::{ScoringEngine, ScoringPrecision, Similarity};
use zsl_core::linalg::{default_threads, pool_threads, Matrix};
use zsl_core::model::{EszslConfig, EszslProblem, GramAccumulator, ProjectionModel};
use zsl_core::trainer::{KernelEszslConfig, KernelKind, SaeConfig, Trainer};
use zsl_core::Pipeline;

/// Workload shape: `n` samples of `d` features, projected to `a` attributes,
/// scored against `z` classes.
struct Workload {
    n: usize,
    d: usize,
    a: usize,
    z: usize,
    iters: usize,
}

fn smoke() -> bool {
    // Only "1" enables smoke mode, so ZSL_BENCH_SMOKE=0 (or empty) still runs
    // the full acceptance-gate workload.
    std::env::var("ZSL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workload() -> Workload {
    if smoke() {
        Workload {
            n: 512,
            d: 128,
            a: 32,
            z: 64,
            iters: 2,
        }
    } else {
        // The acceptance-floor shape: >= 2048 x 512 features, >= 200 classes.
        Workload {
            n: 4096,
            d: 512,
            a: 64,
            z: 256,
            iters: 5,
        }
    }
}

fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

/// Best-of-`iters` wall time for `f`, returning the last result for
/// correctness checks.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("iters >= 1"))
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn scoring_throughput_multi_threaded_vs_single_threaded() {
    let w = workload();
    let threads = default_threads();
    let mut rng = Rng::new(0xBEEF);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, w.z, w.a);
    let x = random_matrix(&mut rng, w.n, w.d);

    let single = ScoringEngine::with_threads(
        ProjectionModel::from_weights(weights.clone()),
        bank.clone(),
        Similarity::Cosine,
        1,
    );
    let multi = ScoringEngine::with_threads(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
        threads,
    );

    // Warm-up: touches every buffer and verifies the two paths agree exactly.
    let warm_single = single.predict(&x);
    let warm_multi = multi.predict(&x);
    assert_eq!(warm_single, warm_multi, "thread count changed predictions");

    let (t_single, _) = time_best(w.iters, || single.predict(&x));
    let (t_multi, _) = time_best(w.iters, || multi.predict(&x));
    let speedup = t_single / t_multi;
    println!(
        "[bench] batch-scoring n={} d={} a={} z={} threads={}: single={:.4}s ({:.0} samples/s) multi={:.4}s ({:.0} samples/s) speedup={:.2}x",
        w.n,
        w.d,
        w.a,
        w.z,
        threads,
        t_single,
        w.n as f64 / t_single,
        t_multi,
        w.n as f64 / t_multi,
        speedup
    );

    // The acceptance gate: on multi-core hardware at the full workload the
    // row-banded parallel path must beat the PR 1 single-threaded path.
    // Smoke mode and single-core runners only validate correctness above.
    if threads > 1 && !smoke() {
        assert!(
            t_multi < t_single,
            "parallel scoring ({t_multi:.4}s) did not beat single-threaded ({t_single:.4}s) on {threads} threads"
        );
    }
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn cached_bank_scoring_vs_legacy_clone_path() {
    let w = workload();
    let mut rng = Rng::new(0xCAFE);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, w.z, w.a);
    let x = random_matrix(&mut rng, w.n, w.d);
    let model = ProjectionModel::from_weights(weights);

    // PR 1 path: per-call bank clone + renormalize + transpose + serial
    // blocked matmul.
    let legacy = |x: &Matrix| -> Matrix {
        let mut projected = model.project(x);
        let mut signatures = bank.clone();
        projected.l2_normalize_rows();
        signatures.l2_normalize_rows();
        projected.matmul(&signatures.transpose())
    };
    // Engine path pinned to one thread so the delta isolates the caching.
    let engine = ScoringEngine::with_threads(model.clone(), bank.clone(), Similarity::Cosine, 1);

    let reference = legacy(&x);
    let cached = engine.scores(&x);
    assert!(
        cached.max_abs_diff(&reference) < 1e-9,
        "cached-bank scores diverged from legacy path"
    );

    let (t_legacy, _) = time_best(w.iters, || legacy(&x));
    let (t_cached, _) = time_best(w.iters, || engine.scores(&x));
    println!(
        "[bench] cached-bank (1 thread) n={} d={} a={} z={}: legacy={:.4}s cached={:.4}s speedup={:.2}x",
        w.n, w.d, w.a, w.z, t_legacy, t_cached, t_legacy / t_cached
    );
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn streamed_vs_in_memory_ingestion_and_training() {
    // How much does out-of-core ingestion cost relative to materializing the
    // bundle? Both sides do the same end-to-end work — read features.zsb from
    // disk, build the trainval Gram matrices — so the delta isolates the
    // chunked path's overhead (per-chunk dispatch, filter, rank-1 folds vs
    // one big gemm). Results are asserted bit-identical first, as everywhere.
    let w = workload();
    // Shape the synthetic set so trainval ≈ the workload's n x d.
    let seen = 32.min(w.z);
    let per_class = (w.n / seen).max(1);
    let ds = SyntheticConfig::new()
        .classes(seen, 8)
        .dims(w.a.min(seen - 1), w.d)
        .samples(per_class, 2)
        .seed(0xD00D)
        .build();
    let dir = std::env::temp_dir().join(format!("zsl_throughput_stream_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    export_dataset(&ds, &dir, zsl_core::data::FeatureFormat::Zsb).expect("export");
    let chunk_rows = (w.n / 16).max(1);

    let in_memory = || -> EszslProblem {
        let mem = DatasetBundle::load(&dir)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        EszslProblem::new(&mem.train_x, &mem.train_labels, &mem.seen_signatures).expect("problem")
    };
    let streamed = || -> EszslProblem {
        let bundle = StreamingBundle::open(&dir, chunk_rows).expect("open");
        let mut acc = GramAccumulator::new(&bundle.seen_signatures());
        for chunk in bundle.stream_trainval().expect("stream") {
            let (x, labels) = chunk.expect("chunk");
            acc.fold(&x, &labels).expect("fold");
        }
        acc.finish().expect("finish")
    };

    let reference = in_memory();
    let folded = streamed();
    assert_eq!(
        folded.xtx().as_slice(),
        reference.xtx().as_slice(),
        "streamed Gram diverged from in-memory"
    );
    assert_eq!(folded.xtys().as_slice(), reference.xtys().as_slice());

    let (t_memory, _) = time_best(w.iters, in_memory);
    let (t_stream, _) = time_best(w.iters, streamed);
    let n_train = ds.train_x.rows();
    println!(
        "[bench] streamed-vs-in-memory ingest+gram n_train={} d={} chunk_rows={}: \
         in-memory={:.4}s ({:.0} rows/s) streamed={:.4}s ({:.0} rows/s) overhead={:.2}x \
         peak-feature-mem {:.1} KiB vs {:.1} KiB",
        n_train,
        w.d,
        chunk_rows,
        t_memory,
        n_train as f64 / t_memory,
        t_stream,
        n_train as f64 / t_stream,
        t_stream / t_memory,
        (chunk_rows * w.d * 8) as f64 / 1024.0,
        (ds.train_x.rows() + ds.test_seen_x.rows() + ds.test_unseen_x.rows()) as f64
            * w.d as f64
            * 8.0
            / 1024.0,
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn pipeline_facade_vs_direct_calls() {
    // The PR 5 acceptance claim: the Pipeline/FeatureSource indirection
    // (trait dispatch, boxed chunk iterators, Cow chunks) adds zero
    // measurable overhead over calling the trainer + evaluator directly.
    // Both sides do identical numeric work — fit γ=λ=1 on trainval, GZSL
    // over both test splits — so the delta isolates the facade plumbing.
    let w = workload();
    let seen = 32.min(w.z);
    let per_class = (w.n / seen).max(1);
    let ds = SyntheticConfig::new()
        .classes(seen, 8)
        .dims(w.a.min(seen - 1), w.d)
        .samples(per_class, 2)
        .seed(0xFA5A)
        .build();

    let direct = || {
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        evaluate_gzsl(&model, &ds, Similarity::Cosine).expect("evaluate")
    };
    let facade = || {
        Pipeline::from(&ds)
            .train()
            .expect("train")
            .evaluate()
            .expect("evaluate")
    };

    // Correctness first: the facade is the direct path, bit for bit.
    let reference = direct();
    let report = facade();
    assert_eq!(report, reference, "facade diverged from direct calls");

    let (t_direct, _) = time_best(w.iters, direct);
    let (t_facade, _) = time_best(w.iters, facade);
    println!(
        "[bench] facade-vs-direct n_train={} d={} a={} z={}: direct={:.4}s facade={:.4}s overhead={:.3}x",
        ds.train_x.rows(),
        w.d,
        ds.seen_signatures.cols(),
        ds.num_classes(),
        t_direct,
        t_facade,
        t_facade / t_direct
    );
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn per_trainer_fit_and_score_timing() {
    // One timing line per model family through the same generic [`Trainer`]
    // path: closed-form ESZSL, the Sylvester-solved SAE, and kernelized
    // ESZSL with the anchor budget a deployment would use. Scoring goes
    // through the engine, so the kernel line includes the per-row kernel
    // expansion the primal families skip.
    let w = workload();
    let seen = 32.min(w.z);
    let per_class = (w.n / seen).max(1);
    let ds = SyntheticConfig::new()
        .classes(seen, 8)
        .dims(w.a.min(seen - 1), w.d)
        .samples(per_class, 2)
        .seed(0x7EA1)
        .build();
    let n_train = ds.train_x.rows();
    let max_anchors = 1024.min(n_train);
    let trainers: [(&str, Box<dyn Trainer>); 3] = [
        ("eszsl", Box::new(EszslConfig::new().build())),
        ("sae", Box::new(SaeConfig::new().build())),
        (
            "kernel-eszsl",
            Box::new(KernelEszslConfig::new().max_anchors(max_anchors).build()),
        ),
    ];
    let mut snapshots = Vec::new();
    for (tag, trainer) in &trainers {
        let (t_fit, model) = time_best(w.iters, || trainer.fit(&ds).expect("fit"));
        let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
        let (t_score, predictions) = time_best(w.iters, || engine.predict(&ds.train_x));
        assert_eq!(predictions.len(), n_train, "{tag}: lost rows while scoring");
        println!(
            "[bench] trainer={tag} n_train={} d={} a={} z={}: fit={:.4}s ({:.0} rows/s) \
             score={:.4}s ({:.0} rows/s)",
            n_train,
            w.d,
            ds.seen_signatures.cols(),
            ds.num_classes(),
            t_fit,
            n_train as f64 / t_fit,
            t_score,
            n_train as f64 / t_score,
        );
        snapshots.push(format!(
            "{{ \"name\": \"{tag}\", \"fit_s\": {:.6}, \"fit_rows_per_s\": {:.1}, \
             \"score_s\": {:.6}, \"score_rows_per_s\": {:.1} }}",
            t_fit,
            n_train as f64 / t_fit,
            t_score,
            n_train as f64 / t_score,
        ));
    }
    if let Ok(json_path) = std::env::var("ZSL_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"core-trainers\",\n  \"smoke\": {},\n  \"workload\": {{ \
             \"n_train\": {}, \"d\": {}, \"a\": {}, \"z\": {} }},\n  \"max_anchors\": {},\n  \
             \"threads\": {},\n  \"pool_threads\": {},\n  \"trainers\": [\n    {}\n  ]\n}}\n",
            smoke(),
            n_train,
            w.d,
            ds.seen_signatures.cols(),
            ds.num_classes(),
            max_anchors,
            default_threads(),
            pool_threads(),
            snapshots.join(",\n    "),
        );
        std::fs::write(&json_path, json).expect("write bench json");
        println!("[bench] wrote {json_path}");
    }
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn single_row_predict_latency_f64_vs_f32() {
    // Batch-1 latency is what a serving daemon pays per uncoalesced request:
    // dominated by per-call overhead (formerly thread spawns; now a pool
    // check that stays serial below the work cutoff) plus one skinny gemm.
    // The f32 line measures the opt-in reduced-precision serving mode on the
    // same row.
    let w = workload();
    let iters = if smoke() { 2_000 } else { 20_000 };
    let mut rng = Rng::new(0x0B17);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, w.z, w.a);
    let row = random_matrix(&mut rng, 1, w.d);
    let mut engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );

    let time_single_row = |engine: &ScoringEngine| -> f64 {
        let warm = engine.predict(&row);
        assert_eq!(warm.len(), 1);
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(engine.predict(std::hint::black_box(&row)));
        }
        t.elapsed().as_secs_f64() / iters as f64
    };

    let t_f64 = time_single_row(&engine);
    engine = engine.with_precision(ScoringPrecision::F32);
    let t_f32 = time_single_row(&engine);
    println!(
        "[bench] single-row-predict d={} a={} z={} iters={}: f64={:.1}us f32={:.1}us ({:.2}x)",
        w.d,
        w.a,
        w.z,
        iters,
        t_f64 * 1e6,
        t_f32 * 1e6,
        t_f64 / t_f32
    );
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn rbf_gram_scoring_scales_with_pool_threads() {
    // The fixed RBF branch: the Gram against the anchors is row-banded over
    // the persistent worker pool (it used to run serial at any thread
    // count). Serial and pooled scoring must be bit-identical — the bands
    // keep each row's summation order — and on multi-core hardware the
    // pooled path must win.
    let w = workload();
    let seen = 32.min(w.z);
    let per_class = (w.n / seen).max(1);
    let ds = SyntheticConfig::new()
        .classes(seen, 8)
        .dims(w.a.min(seen - 1), w.d)
        .samples(per_class, 2)
        .seed(0x4BF)
        .build();
    let n_train = ds.train_x.rows();
    let max_anchors = 1024.min(n_train);
    let model = KernelEszslConfig::new()
        .kernel(KernelKind::Rbf { width: 0.5 })
        .max_anchors(max_anchors)
        .build()
        .fit(&ds)
        .expect("fit");
    let mut engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
    let threads = default_threads();

    engine.set_threads(1);
    let reference = engine.scores(&ds.train_x);
    let (t_serial, _) = time_best(w.iters, || engine.scores(&ds.train_x));
    engine.set_threads(threads);
    let pooled = engine.scores(&ds.train_x);
    assert_eq!(
        pooled.as_slice(),
        reference.as_slice(),
        "pooled RBF scoring drifted from serial"
    );
    let (t_pooled, _) = time_best(w.iters, || engine.scores(&ds.train_x));
    println!(
        "[bench] rbf-gram-scoring n={} d={} anchors={} threads={} (pool={}): \
         serial={:.4}s ({:.0} rows/s) pooled={:.4}s ({:.0} rows/s) speedup={:.2}x",
        n_train,
        w.d,
        max_anchors,
        threads,
        pool_threads(),
        t_serial,
        n_train as f64 / t_serial,
        t_pooled,
        n_train as f64 / t_pooled,
        t_serial / t_pooled
    );
    // Acceptance gate: the RBF Gram must actually scale with threads on
    // multi-core hardware at the full workload. Smoke mode and single-core
    // runners only validate bit-identity above.
    if threads > 1 && !smoke() {
        assert!(
            t_pooled < t_serial,
            "pooled RBF scoring ({t_pooled:.4}s) did not beat serial ({t_serial:.4}s) on {threads} threads"
        );
    }
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn sharded_bank_streaming_topk_vs_monolithic() {
    // The large-class-axis path: the bank is split into row bands scored one
    // at a time, with rankings folded through a per-row bounded heap — peak
    // score memory drops from chunk_rows x z to chunk_rows x band + n x k
    // while the bits stay identical to the monolithic path.
    let w = workload();
    let z_big = if smoke() { 512 } else { 8192 };
    let shards = 8usize;
    let k = 10usize;
    let mut rng = Rng::new(0x5AD5);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, z_big, w.a);
    let x = random_matrix(&mut rng, w.n, w.d);
    let monolithic = ScoringEngine::new(
        ProjectionModel::from_weights(weights.clone()),
        bank.clone(),
        Similarity::Cosine,
    );
    let mut sharded = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );
    sharded.set_bank_shards(shards);
    let bands = sharded.bank_shards().count();

    let reference = monolithic.predict_topk(&x, k);
    let banded = sharded.predict_topk(&x, k);
    assert_eq!(reference, banded, "sharded top-k diverged from monolithic");

    let (t_mono, _) = time_best(w.iters, || monolithic.predict_topk(&x, k));
    let (t_sharded, _) = time_best(w.iters, || sharded.predict_topk(&x, k));
    let band_z = sharded.bank_shards().max_band_classes();
    println!(
        "[bench] sharded-topk n={} d={} a={} z={} k={} shards={bands}: \
         monolithic={:.4}s ({:.0} samples/s) sharded={:.4}s ({:.0} samples/s) ratio={:.2}x \
         peak-score-mem {:.1} KiB vs {:.1} KiB per chunk",
        w.n,
        w.d,
        w.a,
        z_big,
        k,
        t_mono,
        w.n as f64 / t_mono,
        t_sharded,
        w.n as f64 / t_sharded,
        t_sharded / t_mono,
        (w.n.min(1024) * z_big * 8) as f64 / 1024.0,
        (w.n.min(1024) * band_z * 8) as f64 / 1024.0,
    );
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn mmap_boot_vs_heap_boot() {
    // Cold-boot cost of a large-bank artifact: the heap loader copies and
    // validates the whole bank up front; the mapped loader borrows the bank
    // from the page cache zero-copy (validation still runs — in place).
    let w = workload();
    let z_big = if smoke() { 512 } else { 8192 };
    let mut rng = Rng::new(0x3A90);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, z_big, w.a);
    let x = random_matrix(&mut rng, 64, w.d);
    let engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );
    let path = std::env::temp_dir().join(format!("zsl_bench_mmap_{}.zsm", std::process::id()));
    engine.save(&path).expect("save");

    let (heap, _) = ScoringEngine::load_with_metadata(&path).expect("heap load");
    let (mapped, _) = ScoringEngine::load_mapped(&path).expect("mapped load");
    assert_eq!(
        heap.predict_topk(&x, 5),
        mapped.predict_topk(&x, 5),
        "mapped boot diverged from heap boot"
    );

    let boot_iters = if smoke() { 3 } else { 10 };
    let (t_heap, _) = time_best(boot_iters, || {
        ScoringEngine::load_with_metadata(&path).expect("heap load")
    });
    let (t_mapped, _) = time_best(boot_iters, || {
        ScoringEngine::load_mapped(&path).expect("mapped load")
    });
    println!(
        "[bench] mmap-boot d={} a={} z={} artifact={:.1} KiB mapped={}: \
         heap={:.3}ms ({:.1} KiB resident) mmap={:.3}ms ({:.1} KiB resident) speedup={:.2}x",
        w.d,
        w.a,
        z_big,
        std::fs::metadata(&path).expect("meta").len() as f64 / 1024.0,
        mapped.is_bank_mapped(),
        t_heap * 1e3,
        heap.bank_resident_bytes() as f64 / 1024.0,
        t_mapped * 1e3,
        mapped.bank_resident_bytes() as f64 / 1024.0,
        t_heap / t_mapped
    );
    std::fs::remove_file(&path).ok();
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn chunked_streaming_throughput() {
    let w = workload();
    let mut rng = Rng::new(0xF00D);
    let weights = random_matrix(&mut rng, w.d, w.a);
    let bank = random_matrix(&mut rng, w.z, w.a);
    let x = random_matrix(&mut rng, w.n, w.d);
    let engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );

    let full = engine.scores(&x);
    let chunk_rows = (w.n / 8).max(1);
    let (t_chunked, rows_seen) = time_best(w.iters, || {
        let mut rows = 0usize;
        engine.scores_chunked(&x, chunk_rows, |offset, chunk| {
            if offset == 0 {
                // Spot-check the first chunk against the full result.
                assert_eq!(&full.as_slice()[..chunk.as_slice().len()], chunk.as_slice());
            }
            rows += chunk.rows();
        });
        rows
    });
    assert_eq!(rows_seen, w.n);
    println!(
        "[bench] chunked-scoring n={} chunk_rows={} threads={}: {:.4}s ({:.0} samples/s)",
        w.n,
        chunk_rows,
        engine.threads(),
        t_chunked,
        w.n as f64 / t_chunked
    );
}
