//! Integration tests for the cached, parallel scoring engine: equivalence
//! with the legacy per-call clone-and-renormalize path, cosine/dot agreement
//! on pre-normalized banks, and chunked streaming over the real pipeline.

use zsl_core::data::SyntheticConfig;
use zsl_core::infer::{Classifier, ScoringEngine, Similarity};
use zsl_core::linalg::{default_threads, Matrix};
use zsl_core::model::{EszslConfig, ProjectionModel};

fn trained_setup() -> (ProjectionModel, Matrix, Matrix) {
    let ds = SyntheticConfig::new().classes(20, 6).seed(414).build();
    let model = EszslConfig::new()
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    (
        model,
        ds.unseen_signatures.clone(),
        ds.test_unseen_x.clone(),
    )
}

/// The PR 1 scoring path: clone the bank, renormalize it, materialize the
/// transpose, and run the serial blocked matmul — reproduced here as the
/// oracle the engine must match.
fn legacy_scores(
    model: &ProjectionModel,
    signatures: &Matrix,
    similarity: Similarity,
    x: &Matrix,
) -> Matrix {
    let mut projected = model.project(x);
    let mut signatures = signatures.clone();
    if similarity == Similarity::Cosine {
        projected.l2_normalize_rows();
        signatures.l2_normalize_rows();
    }
    projected.matmul(&signatures.transpose())
}

#[test]
fn engine_matches_legacy_clone_and_renormalize_path() {
    let (model, bank, x) = trained_setup();
    for similarity in [Similarity::Cosine, Similarity::Dot] {
        let legacy = legacy_scores(&model, &bank, similarity, &x);
        let engine = ScoringEngine::new(model.clone(), bank.clone(), similarity);
        let scores = engine.scores(&x);
        assert_eq!(
            (scores.rows(), scores.cols()),
            (legacy.rows(), legacy.cols())
        );
        // The packed-Bᵀ kernel accumulates in a different order than the
        // blocked kernel over the transpose, so allow float-reassociation
        // noise but nothing more.
        assert!(
            scores.max_abs_diff(&legacy) < 1e-12,
            "engine diverged from legacy path under {similarity:?}"
        );
    }
}

#[test]
fn cosine_and_dot_agree_on_prenormalized_bank() {
    let (model, bank, x) = trained_setup();
    let mut normalized_bank = bank.clone();
    normalized_bank.l2_normalize_rows();

    // Dot against a pre-normalized bank scores each sample by ‖p‖·cos(p, s);
    // the per-sample scale cancels inside argmax and ranking, so predictions
    // must agree exactly with cosine similarity.
    let cosine = Classifier::new(model.clone(), bank, Similarity::Cosine);
    let dot = Classifier::new(model, normalized_bank, Similarity::Dot);
    assert_eq!(cosine.predict(&x), dot.predict(&x));
    let cosine_top3 = cosine.predict_topk(&x, 3);
    let dot_top3 = dot.predict_topk(&x, 3);
    for (c, d) in cosine_top3.iter().zip(&dot_top3) {
        assert_eq!(c.classes, d.classes);
    }
}

#[test]
fn chunked_streaming_matches_full_scores_on_trained_pipeline() {
    let (model, bank, x) = trained_setup();
    let engine = ScoringEngine::new(model, bank, Similarity::Cosine);
    let full = engine.scores(&x);
    for chunk_rows in [1usize, 7, 64, x.rows(), x.rows() + 100] {
        let mut stitched = Vec::with_capacity(x.rows() * engine.num_classes());
        engine.scores_chunked(&x, chunk_rows, |offset, chunk| {
            assert_eq!(offset, stitched.len() / engine.num_classes());
            stitched.extend_from_slice(chunk.as_slice());
        });
        assert_eq!(
            stitched,
            full.as_slice(),
            "chunked scores diverged at chunk_rows={chunk_rows}"
        );
    }
}

#[test]
fn classifier_wrapper_delegates_to_engine() {
    let (model, bank, x) = trained_setup();
    let clf = Classifier::new(model.clone(), bank.clone(), Similarity::Cosine);
    let engine = ScoringEngine::new(model, bank, Similarity::Cosine);
    assert_eq!(clf.num_classes(), engine.num_classes());
    assert_eq!(clf.predict(&x), engine.predict(&x));
    assert_eq!(clf.scores(&x).as_slice(), engine.scores(&x).as_slice());
    assert_eq!(clf.engine().threads(), default_threads().max(1));
    // Engine predictions must not depend on the thread count.
    let serial = ScoringEngine::with_threads(
        clf.engine().model().clone(),
        clf.engine().signatures().to_matrix(),
        Similarity::Dot, // bank already normalized inside the engine
        1,
    );
    let parallel = ScoringEngine::with_threads(
        clf.engine().model().clone(),
        clf.engine().signatures().to_matrix(),
        Similarity::Dot,
        8,
    );
    assert_eq!(serial.predict(&x), parallel.predict(&x));
}

#[test]
fn predict_topk_equals_full_sort_on_trained_pipeline() {
    let (model, bank, x) = trained_setup();
    let clf = Classifier::new(model, bank, Similarity::Cosine);
    let scores = clf.scores(&x);
    let z = clf.num_classes();
    for k in [1usize, 2, z, z + 3] {
        let ranked = clf.predict_topk(&x, k);
        for (i, ranked_row) in ranked.iter().enumerate() {
            let row = scores.row(i);
            let mut order: Vec<usize> = (0..z).collect();
            order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
            order.truncate(k.min(z));
            assert_eq!(ranked_row.classes, order, "sample {i}, k={k}");
        }
    }
}

#[test]
fn predict_topk_k_zero_and_k_beyond_class_count() {
    let (model, signatures, x) = trained_setup();
    let engine = ScoringEngine::new(model, signatures, Similarity::Cosine);
    let z = engine.num_classes();

    // k = 0: one (empty) ranking per sample, no scores materialized.
    let empty = engine.predict_topk(&x, 0);
    assert_eq!(empty.len(), x.rows());
    assert!(empty
        .iter()
        .all(|t| t.classes.is_empty() && t.scores.is_empty()));

    // k far beyond the class count clamps to exactly z entries, identical
    // to asking for z directly.
    let clamped = engine.predict_topk(&x, z + 1000);
    let exact = engine.predict_topk(&x, z);
    assert_eq!(clamped, exact);
    assert!(clamped.iter().all(|t| t.classes.len() == z));
    // The head of every ranking is the argmax (same total order, same
    // first-index tie-break).
    assert_eq!(
        clamped.iter().map(|t| t.classes[0]).collect::<Vec<_>>(),
        engine.predict(&x)
    );
}

#[test]
fn try_new_returns_typed_errors_where_new_panics() {
    use zsl_core::ZslError;
    let identity = || ProjectionModel::from_weights(Matrix::identity(2));

    for (what, bank) in [
        ("empty", Matrix::zeros(0, 2)),
        ("zero-width", Matrix::zeros(3, 0)),
        ("non-finite", Matrix::from_rows(&[vec![1.0, f64::NAN]])),
        ("width mismatch", Matrix::zeros(3, 5)),
    ] {
        match ScoringEngine::try_new(identity(), bank.clone(), Similarity::Cosine) {
            Err(ZslError::Config(msg)) => assert!(!msg.is_empty(), "{what}"),
            other => panic!("{what}: expected Config error, got {other:?}"),
        }
        // The Classifier mirror behaves identically.
        assert!(matches!(
            Classifier::try_new(identity(), bank, Similarity::Cosine),
            Err(ZslError::Config(_))
        ));
    }

    // A valid bank builds the same engine `new` does, bit for bit.
    let bank = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 5.0]]);
    let fallible =
        ScoringEngine::try_new(identity(), bank.clone(), Similarity::Cosine).expect("valid");
    let panicking = ScoringEngine::new(identity(), bank, Similarity::Cosine);
    assert_eq!(
        fallible.signatures().as_slice(),
        panicking.signatures().as_slice()
    );
}
