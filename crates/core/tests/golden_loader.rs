//! Golden-fixture regression test for the dataset loader and GZSL harness.
//!
//! A tiny bundle (both `features.zsb` and `features.csv`, sharing one
//! `signatures.csv` + `splits.txt`) is committed under `tests/fixtures/
//! tiny_bundle/`. This test freezes (a) the parsed contents — via FNV-1a
//! digests over the exact f64 bit patterns — and (b) the `GzslReport` the
//! fixture produces after training, so any drift in the binary layout, CSV
//! parsing, label remapping, split materialization, trainer numerics, or
//! report plumbing fails loudly.
//!
//! To regenerate after an *intentional* format change:
//! `cargo test -p zsl-core --test golden_loader -- --ignored regenerate`
//! then copy the printed constants into this file and commit the new fixture.

mod common;

use common::{digest_labels, digest_matrix};
use std::path::PathBuf;
use zsl_core::data::{
    export_dataset, DatasetBundle, FeatureFormat, StreamingBundle, SyntheticConfig,
};
use zsl_core::eval::evaluate_gzsl;
use zsl_core::infer::Similarity;
use zsl_core::model::{EszslConfig, EszslProblem, GramAccumulator};
use zsl_core::Dataset;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
}

/// The generator config behind the committed fixture. Only the regeneration
/// path uses it; the golden assertions read the files alone.
fn fixture_config() -> SyntheticConfig {
    SyntheticConfig::new()
        .classes(4, 2)
        .dims(2, 3)
        .samples(3, 2)
        .noise(0.1)
        .seed(7)
}

fn digest_dataset(ds: &Dataset) -> [u64; 8] {
    [
        digest_matrix(&ds.train_x),
        digest_labels(&ds.train_labels),
        digest_matrix(&ds.test_seen_x),
        digest_labels(&ds.test_seen_labels),
        digest_matrix(&ds.test_unseen_x),
        digest_labels(&ds.test_unseen_labels),
        digest_matrix(&ds.seen_signatures),
        digest_matrix(&ds.unseen_signatures),
    ]
}

// ---------------------------------------------------------------------------
// Frozen constants. Regenerate with the ignored test below.
// ---------------------------------------------------------------------------

/// Digests of the raw bundle: features matrix, dense labels, signatures.
const GOLDEN_BUNDLE: [u64; 3] = [
    0x73b6_03ed_aa34_e210,
    0x2b2d_5d50_28d8_8b45,
    0x5e93_5227_fcc3_5a95,
];

/// Digests of the materialized `Dataset` splits (see [`digest_dataset`]).
const GOLDEN_DATASET: [u64; 8] = [
    0xec30_fa77_8130_7f9a,
    0xfc06_359d_60eb_b6a5,
    0xa9fa_596d_a33e_a9f9,
    0xfcb9_ff7e_38e6_a465,
    0xf94b_7fd5_57c6_391f,
    0xdc7e_c1b9_4565_2785,
    0xb835_15ca_3884_030a,
    0xf958_1ef3_8936_7c48,
];

/// Frozen `GzslReport` of the γ = λ = 1 trainer on the fixture, as exact f64
/// bit patterns: seen accuracy 0.25, unseen accuracy 0.5, harmonic mean 1/3
/// (the tiny noisy fixture is deliberately hard — only drift matters here).
const GOLDEN_REPORT_BITS: [u64; 3] = [
    0x3fd0_0000_0000_0000,
    0x3fe0_0000_0000_0000,
    0x3fd5_5555_5555_5555,
];

/// Digests of the *streamed* Gram accumulators over the fixture's trainval
/// split: `XᵀX`, `XᵀYS`, `SᵀS`. Because the streamed fold is bit-identical
/// to the in-memory product at every chunk size, one set of constants pins
/// both paths at once.
const GOLDEN_STREAM_GRAM: [u64; 3] = [
    0xb7c5_b816_6f4e_159a,
    0x32fd_c02f_f247_598d,
    0x2116_bd71_681f_8716,
];

#[test]
fn fixture_parses_to_frozen_contents_in_both_formats() {
    let dir = fixture_dir();
    let zsb = DatasetBundle::load_with_format(&dir, FeatureFormat::Zsb).expect("load zsb");
    let csv = DatasetBundle::load_with_format(&dir, FeatureFormat::Csv).expect("load csv");

    // The two on-disk formats must decode to identical bits.
    assert_eq!(zsb.features.as_slice(), csv.features.as_slice());
    assert_eq!(zsb.labels, csv.labels);
    assert_eq!(zsb.signatures.as_slice(), csv.signatures.as_slice());
    assert_eq!(zsb.manifest, csv.manifest);

    assert_eq!((zsb.num_samples(), zsb.feature_dim()), (24, 3));
    assert_eq!((zsb.num_classes(), zsb.attr_dim()), (6, 2));
    let got = [
        digest_matrix(&zsb.features),
        digest_labels(&zsb.labels),
        digest_matrix(&zsb.signatures),
    ];
    assert_eq!(
        got, GOLDEN_BUNDLE,
        "raw bundle drifted: got {got:#018x?}, frozen {GOLDEN_BUNDLE:#018x?}"
    );

    let ds = zsb.to_dataset().expect("materialize splits");
    assert_eq!(ds.seen_signatures.rows(), 4);
    assert_eq!(ds.unseen_signatures.rows(), 2);
    let got = digest_dataset(&ds);
    assert_eq!(
        got, GOLDEN_DATASET,
        "materialized dataset drifted: got {got:#018x?}, frozen {GOLDEN_DATASET:#018x?}"
    );
}

#[test]
fn fixture_produces_the_frozen_gzsl_report() {
    let ds = DatasetBundle::load(&fixture_dir())
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    let report = evaluate_gzsl(&model, &ds, Similarity::Cosine).expect("evaluate");
    let got = [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ];
    assert_eq!(
        got, GOLDEN_REPORT_BITS,
        "GzslReport drifted: got ({}, {}, {}), bits {got:#018x?}",
        report.seen_accuracy, report.unseen_accuracy, report.harmonic_mean
    );
    assert_eq!(report.per_class_seen.len(), 4);
    assert_eq!(report.per_class_unseen.len(), 2);
    assert!(report.per_class_seen.iter().all(|a| a.is_some()));
}

/// Streamed-accumulator digests over the fixture, at a chunk size that
/// splits the 12-row trainval split unevenly (the regen path uses the same).
fn streamed_gram_digests(dir: &std::path::Path, format: FeatureFormat) -> [u64; 3] {
    let bundle = StreamingBundle::open_with_format(dir, format, 5).expect("open stream");
    let mut acc = GramAccumulator::new(&bundle.seen_signatures());
    for chunk in bundle.stream_trainval().expect("trainval stream") {
        let (x, labels) = chunk.expect("chunk");
        acc.fold(&x, &labels).expect("fold");
    }
    let problem = acc.finish().expect("finish");
    [
        digest_matrix(problem.xtx()),
        digest_matrix(problem.xtys()),
        digest_matrix(problem.sts()),
    ]
}

#[test]
fn fixture_streamed_accumulators_match_frozen_digests_and_in_memory_path() {
    let dir = fixture_dir();
    // Both formats must stream to the same accumulator bits.
    let got_zsb = streamed_gram_digests(&dir, FeatureFormat::Zsb);
    let got_csv = streamed_gram_digests(&dir, FeatureFormat::Csv);
    assert_eq!(got_zsb, got_csv, "zsb and csv streams drifted apart");
    assert_eq!(
        got_zsb, GOLDEN_STREAM_GRAM,
        "streamed Gram accumulators drifted: got {got_zsb:#018x?}, frozen {GOLDEN_STREAM_GRAM:#018x?}"
    );

    // And the frozen bits are exactly what the in-memory problem produces.
    let ds = DatasetBundle::load(&dir)
        .expect("load")
        .to_dataset()
        .expect("materialize");
    let problem =
        EszslProblem::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures).expect("problem");
    assert_eq!(digest_matrix(problem.xtx()), GOLDEN_STREAM_GRAM[0]);
    assert_eq!(digest_matrix(problem.xtys()), GOLDEN_STREAM_GRAM[1]);
    assert_eq!(digest_matrix(problem.sts()), GOLDEN_STREAM_GRAM[2]);

    // The streamed GZSL report reproduces the frozen report bits too.
    let model = problem.solve(1.0, 1.0).expect("solve");
    let bundle = StreamingBundle::open(&dir, 5).expect("open");
    let report = evaluate_gzsl(&model, &bundle, Similarity::Cosine).expect("stream");
    let got = [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ];
    assert_eq!(got, GOLDEN_REPORT_BITS, "streamed GzslReport drifted");
}

/// Regenerate the committed fixture and print the frozen constants.
/// Intentional format changes only — run, copy the output into the constants
/// above, and commit the new files.
#[test]
#[ignore = "writes the committed fixture; run explicitly after intentional format changes"]
fn regenerate_fixture() {
    let dir = fixture_dir();
    let ds = fixture_config().build();
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export zsb");
    export_dataset(&ds, &dir, FeatureFormat::Csv).expect("export csv");

    let bundle = DatasetBundle::load_with_format(&dir, FeatureFormat::Zsb).expect("load");
    let materialized = bundle.to_dataset().expect("materialize");
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(
            &materialized.train_x,
            &materialized.train_labels,
            &materialized.seen_signatures,
        )
        .expect("train");
    let report = evaluate_gzsl(&model, &materialized, Similarity::Cosine).expect("evaluate");

    println!("const GOLDEN_BUNDLE: [u64; 3] = [");
    for d in [
        digest_matrix(&bundle.features),
        digest_labels(&bundle.labels),
        digest_matrix(&bundle.signatures),
    ] {
        println!("    {d:#018x},");
    }
    println!("];");
    println!("const GOLDEN_DATASET: [u64; 8] = [");
    for d in digest_dataset(&materialized) {
        println!("    {d:#018x},");
    }
    println!("];");
    println!("const GOLDEN_REPORT_BITS: [u64; 3] = [");
    for d in [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ] {
        println!("    {d:#018x},");
    }
    println!("];");
    println!("const GOLDEN_STREAM_GRAM: [u64; 3] = [");
    for d in streamed_gram_digests(&dir, FeatureFormat::Zsb) {
        println!("    {d:#018x},");
    }
    println!("];");
    println!(
        "// report: seen {} unseen {} hm {}",
        report.seen_accuracy, report.unseen_accuracy, report.harmonic_mean
    );
}
