//! End-to-end tests exercising the whole public API:
//! `Dataset → EszslTrainer → Classifier::predict` plus metrics.
//!
//! These are the anchor tests named in the roadmap: training on synthetic
//! seen classes must classify held-out unseen classes at ≥95% accuracy.

use zsl_core::data::{export_dataset, DatasetBundle, FeatureFormat, SyntheticConfig};
use zsl_core::eval::{select_train_evaluate, CrossValConfig};
use zsl_core::infer::{
    harmonic_mean, mean_per_class_accuracy, overall_accuracy, Classifier, Similarity,
};
use zsl_core::model::{EszslConfig, RidgeConfig};

#[test]
fn eszsl_classifies_unseen_classes_at_95_percent() {
    // Attributes fully determine features (low noise) and seen classes exceed
    // the attribute dimension, so the closed form recovers the projection.
    let ds = SyntheticConfig::new()
        .classes(20, 5)
        .dims(16, 32)
        .samples(30, 20)
        .noise(0.05)
        .seed(42)
        .build();
    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    let clf = Classifier::new(model, ds.unseen_signatures.clone(), Similarity::Cosine);
    let predictions = clf.predict(&ds.test_unseen_x);
    let acc = mean_per_class_accuracy(&predictions, &ds.test_unseen_labels, 5);
    assert!(acc >= 0.95, "unseen-class accuracy {acc} below 0.95");
}

#[test]
fn eszsl_accuracy_holds_across_seeds() {
    for seed in [7, 11, 1234, 0xC0FFEE] {
        let ds = SyntheticConfig::new().seed(seed).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        let clf = Classifier::new(model, ds.unseen_signatures.clone(), Similarity::Cosine);
        let predictions = clf.predict(&ds.test_unseen_x);
        let acc = mean_per_class_accuracy(
            &predictions,
            &ds.test_unseen_labels,
            ds.unseen_signatures.rows(),
        );
        assert!(acc >= 0.95, "seed {seed}: unseen accuracy {acc} below 0.95");
    }
}

#[test]
fn generalized_zsl_harmonic_mean_is_high_on_clean_data() {
    let ds = SyntheticConfig::new().seed(99).build();
    let num_seen = ds.seen_signatures.rows();
    let num_unseen = ds.unseen_signatures.rows();
    let model = EszslConfig::new()
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    // GZSL: candidates are the union of seen and unseen classes.
    let clf = Classifier::new(model, ds.all_signatures(), Similarity::Cosine);

    let seen_pred = clf.predict(&ds.test_seen_x);
    let seen_acc = mean_per_class_accuracy(&seen_pred, &ds.test_seen_labels, num_seen);

    // Unseen labels index unseen_signatures; in the union bank they are
    // offset by the number of seen classes.
    let unseen_pred = clf.predict(&ds.test_unseen_x);
    let unseen_truth: Vec<usize> = ds
        .test_unseen_labels
        .iter()
        .map(|&l| l + num_seen)
        .collect();
    let unseen_acc = mean_per_class_accuracy(&unseen_pred, &unseen_truth, num_seen + num_unseen);

    let hm = harmonic_mean(seen_acc, unseen_acc);
    assert!(
        hm >= 0.9,
        "GZSL harmonic mean {hm} too low (seen {seen_acc}, unseen {unseen_acc})"
    );
}

#[test]
fn ridge_fallback_also_transfers_to_unseen_classes() {
    let ds = SyntheticConfig::new().seed(31).build();
    let model = RidgeConfig::new()
        .gamma(0.1)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    let clf = Classifier::new(model, ds.unseen_signatures.clone(), Similarity::Cosine);
    let predictions = clf.predict(&ds.test_unseen_x);
    let acc = mean_per_class_accuracy(
        &predictions,
        &ds.test_unseen_labels,
        ds.unseen_signatures.rows(),
    );
    assert!(acc >= 0.95, "ridge unseen accuracy {acc} below 0.95");
}

#[test]
fn topk_contains_top1_and_pipeline_is_deterministic() {
    let ds = SyntheticConfig::new().seed(8).build();
    let train = || {
        EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train")
    };
    let clf_a = Classifier::new(train(), ds.unseen_signatures.clone(), Similarity::Cosine);
    let clf_b = Classifier::new(train(), ds.unseen_signatures.clone(), Similarity::Cosine);

    let top1 = clf_a.predict(&ds.test_unseen_x);
    let top3 = clf_a.predict_topk(&ds.test_unseen_x, 3);
    for (best, ranked) in top1.iter().zip(&top3) {
        assert_eq!(ranked.classes.len(), 3);
        assert_eq!(ranked.classes[0], *best, "top-1 must head the top-3 list");
    }
    // Same data + same config ⇒ bit-identical predictions.
    assert_eq!(top1, clf_b.predict(&ds.test_unseen_x));
}

/// The PR-3 acceptance criterion: a synthetic dataset exported to both CSV
/// and `.zsb`, reloaded, cross-validated, trained, and evaluated end-to-end
/// must produce the same `GzslReport` as the in-memory pipeline —
/// bit-identical scores — and the seeded k-fold grid search must be
/// deterministic.
#[test]
fn disk_roundtrip_pipeline_matches_in_memory_pipeline_bit_for_bit() {
    let ds = SyntheticConfig::new()
        .classes(12, 3)
        .dims(8, 10)
        .samples(12, 6)
        .seed(2027)
        .build();
    let config = CrossValConfig::new()
        .gammas(vec![0.1, 1.0, 10.0])
        .lambdas(vec![0.1, 1.0])
        .folds(3)
        .seed(11);
    let (cv_mem, report_mem) = select_train_evaluate(&ds, &config).expect("in-memory");

    for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
        let dir = std::env::temp_dir().join(format!(
            "zsl_e2e_roundtrip_{}_{format:?}",
            std::process::id()
        ));
        export_dataset(&ds, &dir, format).expect("export");
        let reloaded = DatasetBundle::load_with_format(&dir, format)
            .expect("load")
            .to_dataset()
            .expect("materialize");
        let (cv_disk, report_disk) = select_train_evaluate(&reloaded, &config).expect("from disk");
        assert_eq!(
            cv_disk, cv_mem,
            "{format:?}: grid search must be bit-identical"
        );
        assert_eq!(
            report_disk, report_mem,
            "{format:?}: GzslReport must be bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // Determinism: the same seed reproduces the search; the report is sane.
    let (cv_again, report_again) = select_train_evaluate(&ds, &config).expect("rerun");
    assert_eq!(cv_again, cv_mem);
    assert_eq!(report_again, report_mem);
    assert!(
        report_mem.harmonic_mean > 0.9,
        "hm {}",
        report_mem.harmonic_mean
    );
}

#[test]
fn dot_similarity_works_with_normalized_signatures() {
    let ds = SyntheticConfig::new().seed(63).build();
    let model = EszslConfig::new()
        .normalize_signatures(true)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    let mut signatures = ds.unseen_signatures.clone();
    signatures.l2_normalize_rows();
    let clf = Classifier::new(model, signatures, Similarity::Dot);
    let predictions = clf.predict(&ds.test_unseen_x);
    let acc = overall_accuracy(&predictions, &ds.test_unseen_labels);
    assert!(acc >= 0.9, "dot-similarity unseen accuracy {acc} below 0.9");
}
