//! Shared helpers for the integration-test binaries.
//!
//! The FNV-1a digests here are the single definition both the golden-fixture
//! constants (`golden_loader.rs`) and the property sweeps (`property.rs`)
//! pin against — one implementation, so the two suites can never silently
//! start hashing different quantities.

use zsl_core::linalg::Matrix;

/// FNV-1a offset basis.
pub fn fnv_seed() -> u64 {
    0xcbf2_9ce4_8422_2325
}

/// Fold one `u64` into an FNV-1a hash, byte by byte (little-endian).
pub fn fnv_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over the exact little-endian bit patterns of a matrix
/// (shape-prefixed) — one u64 freezes every parsed float.
pub fn digest_matrix(m: &Matrix) -> u64 {
    let mut hash = fnv_seed();
    hash = fnv_u64(hash, m.rows() as u64);
    hash = fnv_u64(hash, m.cols() as u64);
    for &v in m.as_slice() {
        hash = fnv_u64(hash, v.to_bits());
    }
    hash
}

/// FNV-1a over a dense label list.
#[allow(dead_code)] // not every test binary digests labels
pub fn digest_labels(labels: &[usize]) -> u64 {
    let mut hash = fnv_seed();
    for &l in labels {
        hash = fnv_u64(hash, l as u64);
    }
    hash
}
