//! Differential suite for the sharded signature bank: every shard count must
//! produce **bit-identical** results to the monolithic path — scores, argmax
//! predictions, and top-k rankings, across both scoring precisions and
//! thread counts, including deliberate score ties that straddle shard
//! boundaries (where a merge with the wrong tie-break order would diverge
//! first). The same bar applies to the boot path: an engine whose bank is
//! borrowed from a memory-mapped artifact must score bit-identically to one
//! whose bank was read onto the heap.
//!
//! The calibrated-stacking scenario rides here too: on a seeded
//! seen-swamped dataset a γ_cal sweep must *strictly* improve the GZSL
//! harmonic mean, while γ_cal = 0 must reproduce the uncalibrated engine
//! bit-for-bit.

use zsl_core::data::Rng;
use zsl_core::{
    cross_validate, evaluate_gzsl, evaluate_gzsl_with, BankShards, CrossValConfig, EszslConfig,
    Matrix, ProjectionModel, ScoringEngine, ScoringPrecision, Similarity, SyntheticConfig,
};

/// Bank-row pairs duplicated verbatim so their scores tie bitwise. Each pair
/// spans a shard boundary under every layout exercised below (2, 7, and
/// z-clamped bands over 400 rows all cut at multiples of 64), plus one
/// same-band adjacent pair and the two extreme rows.
const DUPLICATE_PAIRS: [(usize, usize); 4] = [(5, 389), (70, 200), (100, 101), (0, 399)];

const CLASSES: usize = 400;
const DIM: usize = 16;

/// A 400-class bank with engineered duplicate rows and an identity
/// projection, so test rows copied from bank rows score their duplicates
/// with exactly equal bits.
fn tie_setup() -> (ProjectionModel, Matrix, Matrix) {
    let mut rng = Rng::new(4242);
    let mut bank: Vec<Vec<f64>> = (0..CLASSES)
        .map(|_| (0..DIM).map(|_| rng.normal()).collect())
        .collect();
    for &(a, b) in &DUPLICATE_PAIRS {
        bank[b] = bank[a].clone();
    }
    // 50 random query rows, then one exact copy of each duplicated signature:
    // with W = I the projection is the row itself, so the copied rows produce
    // genuine cross-shard score ties at the top of the ranking.
    let mut x: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..DIM).map(|_| rng.normal()).collect())
        .collect();
    for &(a, _) in &DUPLICATE_PAIRS {
        x.push(bank[a].clone());
    }
    (
        ProjectionModel::from_weights(Matrix::identity(DIM)),
        Matrix::from_rows(&bank),
        Matrix::from_rows(&x),
    )
}

#[test]
fn every_shard_count_is_bit_identical_to_the_monolithic_path() {
    let (model, bank, x) = tie_setup();
    for similarity in [Similarity::Dot, Similarity::Cosine] {
        for precision in [ScoringPrecision::F64, ScoringPrecision::F32] {
            for threads in [1usize, 4] {
                let mut baseline = ScoringEngine::new(model.clone(), bank.clone(), similarity)
                    .with_precision(precision);
                baseline.set_threads(threads);
                assert_eq!(baseline.bank_shards().count(), 1, "default is monolithic");
                let scores = baseline.scores(&x);
                let argmax = baseline.predict(&x);
                let rankings: Vec<_> = [1usize, 3, CLASSES]
                    .iter()
                    .map(|&k| baseline.predict_topk(&x, k))
                    .collect();

                for requested in [1usize, 2, 7, CLASSES] {
                    let mut sharded = ScoringEngine::new(model.clone(), bank.clone(), similarity)
                        .with_precision(precision);
                    sharded.set_threads(threads);
                    sharded.set_bank_shards(requested);
                    let tag = format!(
                        "similarity={similarity:?} precision={precision:?} \
                         threads={threads} shards={requested}"
                    );
                    assert_eq!(
                        sharded.scores(&x).as_slice(),
                        scores.as_slice(),
                        "score bits diverged ({tag})"
                    );
                    assert_eq!(sharded.predict(&x), argmax, "argmax diverged ({tag})");
                    for (&k, expected) in [1usize, 3, CLASSES].iter().zip(&rankings) {
                        assert_eq!(
                            &sharded.predict_topk(&x, k),
                            expected,
                            "top-{k} diverged ({tag})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn ties_across_shard_boundaries_resolve_to_the_lower_class_id() {
    let (model, bank, x) = tie_setup();
    for requested in [1usize, 2, 7, CLASSES] {
        let mut engine = ScoringEngine::new(model.clone(), bank.clone(), Similarity::Dot);
        engine.set_bank_shards(requested);
        let argmax = engine.predict(&x);
        let top2 = engine.predict_topk(&x, 2);
        // The last rows of `x` are verbatim copies of the first member of
        // each duplicated pair: both members score exactly ||row||², the
        // bitwise maximum, so argmax must name the lower class id and the
        // runner-up must be the higher duplicate at the identical score.
        for (i, &(lo, hi)) in DUPLICATE_PAIRS.iter().enumerate() {
            let row = x.rows() - DUPLICATE_PAIRS.len() + i;
            assert_eq!(
                argmax[row], lo,
                "tie must break to the lower class id (shards={requested})"
            );
            assert_eq!(top2[row].classes, vec![lo, hi]);
            assert_eq!(
                top2[row].scores[0].to_bits(),
                top2[row].scores[1].to_bits(),
                "engineered tie is not bitwise equal"
            );
        }
    }
}

#[test]
fn shard_layout_is_tile_aligned_and_clamped() {
    // gemm_bt tiles bank rows in 64-column blocks, so bit-identity requires
    // every shard boundary to sit on a multiple of 64. 400 rows hold 7 tiles.
    let layout = BankShards::uniform(CLASSES, 7);
    assert_eq!(layout.count(), 7);
    for band in 0..layout.count() {
        let r = layout.band(band);
        assert!(
            r.start.is_multiple_of(64),
            "band {band} starts off-tile at {}",
            r.start
        );
    }
    assert_eq!(layout.band(6).end, CLASSES);
    // Requesting one shard per class clamps to the tile count; a degenerate
    // bank still gets exactly one band.
    assert_eq!(BankShards::uniform(CLASSES, CLASSES).count(), 7);
    assert_eq!(BankShards::uniform(3, 8).count(), 1);
    assert_eq!(BankShards::uniform(0, 4).count(), 1);
}

fn golden_model_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_bundle")
        .join("model.zsm")
}

#[test]
fn mmap_boot_is_bit_identical_to_heap_boot() {
    // The committed golden artifact predates the aligned-bank layout, so the
    // mapped loader must fall back to a heap copy — and still score
    // identically through the same validation.
    let golden = golden_model_path();
    let (heap, heap_meta) = ScoringEngine::load_with_metadata(&golden).expect("heap load");
    let (fallback, fb_meta) = ScoringEngine::load_mapped(&golden).expect("mapped load");
    assert!(
        !fallback.is_bank_mapped(),
        "legacy unaligned artifact must fall back to the heap"
    );
    assert_eq!(heap_meta, fb_meta);
    let mut rng = Rng::new(7);
    let x = Matrix::from_vec(
        9,
        heap.feature_dim(),
        (0..9 * heap.feature_dim()).map(|_| rng.normal()).collect(),
    );
    assert_eq!(
        heap.scores(&x).as_slice(),
        fallback.scores(&x).as_slice(),
        "fallback-mapped boot diverged from heap boot"
    );

    // Re-saving produces a v2 aligned artifact: on unix little-endian the
    // bank is borrowed zero-copy, and scoring stays bit-identical — with and
    // without sharding on top.
    let path =
        std::env::temp_dir().join(format!("zsl_shard_equiv_mmap_{}.zsm", std::process::id()));
    heap.save_with_metadata(&path, &heap_meta).expect("resave");
    let (mapped, mapped_meta) = ScoringEngine::load_mapped(&path).expect("mapped v2 load");
    assert_eq!(mapped_meta, heap_meta);
    if cfg!(all(unix, target_endian = "little")) {
        assert!(mapped.is_bank_mapped(), "aligned v2 artifact must map");
    }
    assert_eq!(mapped.scores(&x).as_slice(), heap.scores(&x).as_slice());
    assert_eq!(mapped.predict(&x), heap.predict(&x));
    assert_eq!(mapped.predict_topk(&x, 3), heap.predict_topk(&x, 3));
    let mut sharded = ScoringEngine::load_mapped(&path).expect("mapped load").0;
    sharded.set_bank_shards(4);
    assert_eq!(
        sharded.predict_topk(&x, 3),
        heap.predict_topk(&x, 3),
        "sharded scoring over a mapped bank diverged"
    );
    std::fs::remove_file(&path).ok();
}

/// A seeded GZSL scenario engineered to be seen-swamped: plenty of seen
/// classes, noisy test features, so unseen test samples leak into seen
/// predictions and the uncalibrated harmonic mean is held down by the
/// seen-class bias that calibrated stacking exists to counter.
fn seen_swamped() -> (zsl_core::data::Dataset, zsl_core::ProjectionModel) {
    let ds = SyntheticConfig::new()
        .classes(24, 6)
        .dims(12, 24)
        .samples(30, 12)
        .noise(0.9)
        .seed(90210)
        .build();
    let model = EszslConfig::new()
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    (ds, model)
}

#[test]
fn zero_calibration_is_bit_exact_and_a_sweep_strictly_improves_harmonic_mean() {
    let (ds, model) = seen_swamped();
    let plain = ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine);
    let seen = ds.seen_signatures.rows();

    // γ_cal = 0 must be indistinguishable from no calibration at all: same
    // score bits, same report, no calibration recorded on the engine.
    let zero = ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine)
        .with_calibration(0.0, seen)
        .expect("zero calibration");
    assert_eq!(zero.seen_calibration(), None);
    assert_eq!(
        zero.scores(&ds.test_unseen_x).as_slice(),
        plain.scores(&ds.test_unseen_x).as_slice()
    );
    let baseline = evaluate_gzsl_with(&plain, &ds).expect("baseline eval");
    assert_eq!(
        baseline,
        evaluate_gzsl(&model, &ds, Similarity::Cosine).expect("legacy eval"),
        "engine-level and legacy GZSL paths must agree bit-for-bit"
    );
    assert_eq!(baseline, evaluate_gzsl_with(&zero, &ds).expect("zero eval"));
    assert!(
        baseline.seen_accuracy > baseline.unseen_accuracy,
        "scenario must be seen-swamped (seen {} vs unseen {})",
        baseline.seen_accuracy,
        baseline.unseen_accuracy
    );

    // The sweep: some positive seen-class penalty must strictly beat γ = 0,
    // and the penalty must act identically through the sharded merge path.
    let mut best = baseline.harmonic_mean;
    let mut best_gamma = 0.0;
    for gamma in [0.01, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let engine = ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine)
            .with_calibration(gamma, seen)
            .expect("calibrated engine");
        let report = evaluate_gzsl_with(&engine, &ds).expect("calibrated eval");
        if report.harmonic_mean > best {
            best = report.harmonic_mean;
            best_gamma = gamma;
        }
        let mut sharded =
            ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine)
                .with_calibration(gamma, seen)
                .expect("calibrated engine");
        sharded.set_bank_shards(3);
        assert_eq!(
            sharded.predict(&ds.test_unseen_x),
            engine.predict(&ds.test_unseen_x),
            "calibrated argmax diverged under sharding (gamma_cal={gamma})"
        );
    }
    assert!(
        best > baseline.harmonic_mean,
        "no gamma_cal improved the harmonic mean over {} (best {best})",
        baseline.harmonic_mean
    );
    assert!(best_gamma > 0.0);
}

#[test]
fn cross_validation_calibration_axis_sweeps_and_stays_legacy_compatible() {
    let (ds, _) = seen_swamped();
    let base = CrossValConfig::new()
        .gammas(vec![0.1, 1.0])
        .lambdas(vec![1.0])
        .folds(3)
        .seed(11);
    // The default axis is exactly [0.0]: spelling it out must reproduce the
    // legacy report byte-for-byte (same grid, same folds, same best point).
    let legacy = cross_validate(&ds, &base).expect("legacy cv");
    let explicit = cross_validate(&ds, &base.clone().calibrations(vec![0.0])).expect("explicit cv");
    assert_eq!(legacy, explicit);
    assert!(legacy.grid.iter().all(|p| p.calibration == 0.0));

    // A real sweep triples the grid and selects a finite, non-negative γ_cal
    // by pseudo-unseen harmonic mean.
    let swept = cross_validate(&ds, &base.calibrations(vec![0.0, 0.1, 0.3])).expect("swept cv");
    assert_eq!(swept.grid.len(), legacy.grid.len() * 3);
    assert!(swept.best.calibration.is_finite() && swept.best.calibration >= 0.0);
    assert!(swept
        .grid
        .iter()
        .all(|p| p.fold_accuracies.len() == 3 && p.mean_accuracy.is_finite()));
}
