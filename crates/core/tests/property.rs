//! Property-based test layer: seeded randomized sweeps with no external
//! dependencies (all randomness flows through the crate's own `Rng`).
//!
//! Six families, matching the loader/solver/streaming invariants the
//! subsystem promises:
//! 1. bundle round-trips (write → read → bit-identical matrices) across
//!    random shapes, seeds, and both on-disk formats;
//! 2. raw-label ↔ dense-id remapping is bijective for arbitrary label sets;
//! 3. Cholesky solve residuals stay below 1e-8 across 50 random SPD systems;
//! 4. Sylvester solve residuals (`AX + XB = C`, the SAE backbone) stay below
//!    1e-8 across 50 random well-conditioned systems;
//! 5. random chunk boundaries never change the FNV digests of the streamed
//!    `XᵀX` / `XᵀY` Gram accumulators;
//! 6. a `.zsb` file truncated mid-chunk is a typed `DataError::Truncated`
//!    and never yields a partial accumulator.

mod common;

use common::digest_matrix;
use std::path::PathBuf;
use zsl_core::data::{
    export_dataset, ClassMap, DatasetBundle, FeatureFormat, SyntheticConfig, ZsbChunkReader,
};
use zsl_core::linalg::Matrix;
use zsl_core::model::{EszslProblem, GramAccumulator};
use zsl_core::{DataError, Rng};

/// Unique scratch directory per test so parallel test binaries never collide.
fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_property_{}_{tag}", std::process::id()))
}

#[test]
fn bundle_roundtrip_is_bit_identical_across_shapes_seeds_and_formats() {
    let mut sweep = Rng::new(0x0071_5EED);
    for case in 0..8 {
        // Random but valid dataset shape; small dims keep the sweep fast.
        let seen = 2 + (sweep.next_u64() % 6) as usize;
        let unseen = 1 + (sweep.next_u64() % 3) as usize;
        let attr = 1 + (sweep.next_u64() % 5) as usize;
        let feat = 1 + (sweep.next_u64() % 7) as usize;
        let train = 1 + (sweep.next_u64() % 4) as usize;
        let test = 1 + (sweep.next_u64() % 3) as usize;
        let seed = sweep.next_u64();
        let ds = SyntheticConfig::new()
            .classes(seen, unseen)
            .dims(attr, feat)
            .samples(train, test)
            .seed(seed)
            .build();
        for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
            let dir = temp_dir(&format!("rt_{case}_{format:?}"));
            export_dataset(&ds, &dir, format).expect("export");
            let back = DatasetBundle::load_with_format(&dir, format)
                .expect("load")
                .to_dataset()
                .expect("to_dataset");
            let label = format!("case {case} ({seen}s/{unseen}u a{attr} f{feat}) {format:?}");
            assert_eq!(back.train_x.as_slice(), ds.train_x.as_slice(), "{label}");
            assert_eq!(back.train_labels, ds.train_labels, "{label}");
            assert_eq!(
                back.test_seen_x.as_slice(),
                ds.test_seen_x.as_slice(),
                "{label}"
            );
            assert_eq!(back.test_seen_labels, ds.test_seen_labels, "{label}");
            assert_eq!(
                back.test_unseen_x.as_slice(),
                ds.test_unseen_x.as_slice(),
                "{label}"
            );
            assert_eq!(back.test_unseen_labels, ds.test_unseen_labels, "{label}");
            assert_eq!(
                back.seen_signatures.as_slice(),
                ds.seen_signatures.as_slice(),
                "{label}"
            );
            assert_eq!(
                back.unseen_signatures.as_slice(),
                ds.unseen_signatures.as_slice(),
                "{label}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn class_label_remap_is_bijective_for_arbitrary_label_sets() {
    let mut rng = Rng::new(0xB11E);
    for case in 0..20 {
        let n = 1 + (rng.next_u64() % 40) as usize;
        // Distinct, scattered, non-contiguous raw labels in random order.
        let mut raw: Vec<u32> = Vec::with_capacity(n);
        while raw.len() < n {
            let candidate = (rng.next_u64() % 1_000_000) as u32;
            if !raw.contains(&candidate) {
                raw.push(candidate);
            }
        }
        let map = ClassMap::from_labels(&raw).expect("distinct labels");
        assert_eq!(map.len(), n, "case {case}");
        for (dense, &label) in raw.iter().enumerate() {
            // dense → raw → dense and raw → dense → raw are both identities.
            assert_eq!(map.dense(label), Some(dense), "case {case}");
            assert_eq!(map.raw(dense), Some(label), "case {case}");
        }
        // Every id outside the range is unmapped.
        assert_eq!(map.raw(n), None);
        // Dense ids are exactly 0..n (surjective): collect and compare.
        let mut dense_ids: Vec<usize> =
            raw.iter().map(|&l| map.dense(l).expect("mapped")).collect();
        dense_ids.sort_unstable();
        assert_eq!(dense_ids, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn random_chunk_boundaries_never_change_gram_digests() {
    let mut sweep = Rng::new(0x5712_EA11);
    for case in 0..10 {
        let n = 2 + (sweep.next_u64() % 40) as usize;
        let d = 1 + (sweep.next_u64() % 9) as usize;
        let a = 1 + (sweep.next_u64() % 6) as usize;
        let z = 1 + (sweep.next_u64() % 8) as usize;
        let x = Matrix::from_vec(n, d, (0..n * d).map(|_| sweep.normal()).collect());
        let labels: Vec<usize> = (0..n)
            .map(|_| (sweep.next_u64() % z as u64) as usize)
            .collect();
        let signatures = Matrix::from_vec(z, a, (0..z * a).map(|_| sweep.normal()).collect());

        let reference = EszslProblem::new(&x, &labels, &signatures).expect("problem");
        let (ref_xtx, ref_xtys) = (
            digest_matrix(reference.xtx()),
            digest_matrix(reference.xtys()),
        );

        for trial in 0..6 {
            // Random sorted cut points partition 0..n into chunks of wildly
            // uneven sizes (empty chunks included via duplicate cuts).
            let mut cuts: Vec<usize> = (0..(sweep.next_u64() % 6))
                .map(|_| (sweep.next_u64() % (n as u64 + 1)) as usize)
                .collect();
            cuts.push(0);
            cuts.push(n);
            cuts.sort_unstable();
            let mut acc = GramAccumulator::new(&signatures);
            for bounds in cuts.windows(2) {
                let (lo, hi) = (bounds[0], bounds[1]);
                acc.fold(&x.row_block(lo..hi), &labels[lo..hi])
                    .expect("fold");
            }
            let streamed = acc.finish().expect("finish");
            assert_eq!(
                digest_matrix(streamed.xtx()),
                ref_xtx,
                "case {case} trial {trial} cuts {cuts:?}: XᵀX digest drifted"
            );
            assert_eq!(
                digest_matrix(streamed.xtys()),
                ref_xtys,
                "case {case} trial {trial} cuts {cuts:?}: XᵀYS digest drifted"
            );
        }
    }
}

#[test]
fn truncated_mid_chunk_zsb_is_truncation_error_never_partial_accumulator() {
    let mut sweep = Rng::new(0x7210_CA7E);
    // Sized so the feature payload (8·72·32 = 18 KiB) comfortably exceeds the
    // reader's internal buffer — the post-open shrink below must hit the real
    // file, not a fully buffered copy.
    let ds = SyntheticConfig::new()
        .classes(4, 2)
        .dims(3, 32)
        .samples(12, 4)
        .seed(99)
        .build();
    let dir = temp_dir("truncated_stream");
    export_dataset(&ds, &dir, FeatureFormat::Zsb).expect("export");
    let path = dir.join("features.zsb");
    let pristine = std::fs::read(&path).expect("read");

    for trial in 0..12 {
        // Cut anywhere strictly inside the payload (past the header), so the
        // loss lands mid-label-block or mid-feature-chunk at random.
        let keep = 32 + (sweep.next_u64() % (pristine.len() as u64 - 32)) as usize;
        std::fs::write(&path, &pristine[..keep]).expect("truncate");
        match ZsbChunkReader::open(&path, 4) {
            Err(DataError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(actual, keep as u64, "trial {trial}");
                assert_eq!(expected, pristine.len() as u64, "trial {trial}");
            }
            other => panic!("trial {trial} keep={keep}: expected Truncated, got {other:?}"),
        }
    }

    // Race case: the file shrinks AFTER a reader validated its length at
    // open. The in-flight chunk must surface as Truncated — and a fold loop
    // driven by the stream stops cold, leaving no partially folded chunk.
    std::fs::write(&path, &pristine).expect("restore");
    let mut reader = ZsbChunkReader::open(&path, 3).expect("open");
    std::fs::write(&path, &pristine[..pristine.len() - 24]).expect("shrink");
    // Raw labels in a synthetic export are dense ids over the union bank, so
    // the full signature table makes every label valid for folding.
    let mut acc = GramAccumulator::new(&ds.all_signatures());
    let mut folded_chunks = 0;
    let mut saw_truncation = false;
    for chunk in &mut reader {
        match chunk {
            Ok(c) => {
                let labels: Vec<usize> = c.labels.iter().map(|&l| l as usize).collect();
                acc.fold(&c.features, &labels).expect("fold");
                folded_chunks += 1;
            }
            Err(DataError::Truncated { .. }) => {
                saw_truncation = true;
                break;
            }
            Err(other) => panic!("expected Truncated, got {other:?}"),
        }
    }
    assert!(saw_truncation, "shrunken file must surface as Truncated");
    // Whatever was folded before the cut is whole chunks only (chunk_rows =
    // 3 divides the 72-row table); the failing chunk contributed nothing.
    assert_eq!(acc.rows_folded(), folded_chunks * 3);
    // And the stream is fused after the error.
    assert!(reader.next().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cholesky_solve_residuals_below_1e8_across_50_random_spd_systems() {
    let mut rng = Rng::new(0xCD01E5);
    for system in 0..50 {
        let n = 1 + (rng.next_u64() % 24) as usize;
        // B random, A = BᵀB + I/2 is symmetric positive-definite and
        // well-conditioned at these sizes.
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal()).collect());
        let mut a = b.transpose().matmul(&b);
        a.add_scaled_identity(0.5);

        let chol = a.cholesky().expect("SPD factorization");
        let rhs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let x = chol.solve_vec(&rhs);

        // Residual ‖A·x − rhs‖∞ must be tiny relative to f64 precision.
        let mut worst: f64 = 0.0;
        for (r, &target) in rhs.iter().enumerate() {
            let ax: f64 = a.row(r).iter().zip(&x).map(|(av, xv)| av * xv).sum();
            worst = worst.max((ax - target).abs());
        }
        assert!(
            worst < 1e-8,
            "system {system} (n={n}): residual {worst:e} above 1e-8"
        );

        // The multi-RHS path must agree with the vector path bit-for-bit on
        // its first column.
        let rhs_matrix = Matrix::from_vec(n, 1, rhs.clone());
        let x_matrix = chol.solve_matrix(&rhs_matrix).expect("solve_matrix");
        for (r, &xv) in x.iter().enumerate() {
            assert_eq!(x_matrix.get(r, 0), xv, "system {system} row {r}");
        }
    }
}

#[test]
fn sylvester_solve_residuals_below_1e8_across_50_random_systems() {
    // The SAE trainer's backbone: AX + XB = C with A, B symmetric
    // positive-definite (the shape `solve_sylvester` is specified for).
    let mut rng = Rng::new(0x5AE_CD01);
    for system in 0..50 {
        let n = 1 + (rng.next_u64() % 12) as usize;
        let m = 1 + (rng.next_u64() % 12) as usize;
        // A = PᵀP + I/2 and B = QᵀQ + I/2 are SPD and well-conditioned at
        // these sizes, mirroring the Cholesky sweep above.
        let p = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal()).collect());
        let mut a = p.transpose().matmul(&p);
        a.add_scaled_identity(0.5);
        let q = Matrix::from_vec(m, m, (0..m * m).map(|_| rng.normal()).collect());
        let mut b = q.transpose().matmul(&q);
        b.add_scaled_identity(0.5);
        let c = Matrix::from_vec(n, m, (0..n * m).map(|_| rng.normal()).collect());

        let x = zsl_core::solve_sylvester(&a, &b, &c).expect("solve_sylvester");

        // Residual ‖A·X + X·B − C‖∞ must be tiny relative to f64 precision.
        let ax = a.matmul(&x);
        let xb = x.matmul(&b);
        let mut worst: f64 = 0.0;
        for r in 0..n {
            for col in 0..m {
                worst = worst.max((ax.get(r, col) + xb.get(r, col) - c.get(r, col)).abs());
            }
        }
        assert!(
            worst < 1e-8,
            "system {system} (n={n}, m={m}): residual {worst:e} above 1e-8"
        );
    }
}
