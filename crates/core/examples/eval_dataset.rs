//! CLI for the dataset + evaluation subsystem: export a synthetic bundle to
//! disk, or load a bundle, cross-validate `(γ, λ)` on its trainval split,
//! train, and print the GZSL report.
//!
//! ```sh
//! # Write a synthetic bundle (features.zsb + signatures.csv + splits.txt):
//! cargo run --release --example eval_dataset -- export /tmp/zsl_bundle
//! cargo run --release --example eval_dataset -- export /tmp/zsl_bundle --csv --seed 7
//!
//! # Load it, grid-search hyperparameters with seeded k-fold CV, evaluate:
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle --folds 5 --sim dot
//!
//! # Same protocol, but out-of-core: features are streamed from disk in
//! # --chunk-rows blocks and never materialized (bit-identical reports):
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle --stream --chunk-rows 1024
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use zsl_core::data::{
    export_dataset, DatasetBundle, FeatureFormat, StreamingBundle, SyntheticConfig,
};
use zsl_core::eval::{select_train_evaluate, select_train_evaluate_stream, CrossValConfig};
use zsl_core::infer::Similarity;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  eval_dataset export <dir> [--csv] [--seed N]\n  \
         eval_dataset eval <dir> [--csv] [--folds K] [--seed N] [--sim cosine|dot] \
         [--stream] [--chunk-rows N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, dir) = match (args.first(), args.get(1)) {
        (Some(command), Some(dir)) => (command.as_str(), PathBuf::from(dir)),
        _ => return usage(),
    };

    // Shared flag parsing for the tail of the argument list. Flags only
    // meaningful for the other subcommand are rejected, not silently
    // swallowed (an ignored `--csv` on eval would fake CSV-path coverage).
    let allowed: &[&str] = match command {
        "export" => &["--csv", "--seed"],
        _ => &[
            "--csv",
            "--seed",
            "--folds",
            "--sim",
            "--stream",
            "--chunk-rows",
        ],
    };
    let mut format = FeatureFormat::Zsb;
    let mut explicit_format = false;
    let mut seed: u64 = 2026;
    let mut folds: usize = 3;
    let mut similarity = Similarity::Cosine;
    let mut stream = false;
    let mut chunk_rows: usize = 4096;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        if !allowed.contains(&flag.as_str()) {
            eprintln!("flag '{flag}' is not valid for '{command}'");
            return usage();
        }
        match flag.as_str() {
            "--csv" => {
                format = FeatureFormat::Csv;
                explicit_format = true;
            }
            "--stream" => stream = true,
            "--seed" | "--folds" | "--sim" | "--chunk-rows" => {
                let Some(value) = rest.next() else {
                    eprintln!("{flag} needs a value");
                    return usage();
                };
                let ok = match flag.as_str() {
                    "--seed" => value.parse().map(|v| seed = v).is_ok(),
                    "--folds" => value.parse().map(|v| folds = v).is_ok(),
                    "--chunk-rows" => value.parse().map(|v| chunk_rows = v).is_ok(),
                    _ => value.parse().map(|v| similarity = v).is_ok(),
                };
                if !ok {
                    eprintln!("bad value '{value}' for {flag}");
                    return usage();
                }
            }
            _ => unreachable!("flag was checked against the allow-list"),
        }
    }

    match command {
        "export" => {
            let ds = SyntheticConfig::new()
                .classes(20, 5)
                .dims(16, 32)
                .samples(30, 20)
                .noise(0.05)
                .seed(seed)
                .build();
            match export_dataset(&ds, &dir, format) {
                Ok(path) => {
                    println!(
                        "exported synthetic bundle (seed {seed}, {} samples, {} classes) to {}",
                        ds.train_x.rows() + ds.test_seen_x.rows() + ds.test_unseen_x.rows(),
                        ds.num_classes(),
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("export failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "eval" if stream => {
            // Out-of-core path: features are never materialized; the whole
            // protocol (CV → final fit → GZSL report) reads the .zsb file in
            // chunk_rows blocks and produces bit-identical numbers to the
            // in-memory path. Shuffled CV folds need random row access, so
            // this path is .zsb-only.
            if explicit_format {
                eprintln!(
                    "--stream needs random row access for shuffled CV folds, which the \
                     line-oriented CSV format cannot offer; drop --csv or re-export as .zsb"
                );
                return ExitCode::FAILURE;
            }
            let bundle =
                match StreamingBundle::open_with_format(&dir, FeatureFormat::Zsb, chunk_rows) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("failed to open streaming bundle {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                };
            println!(
                "streaming bundle: {} samples x {} features, {} classes x {} attributes",
                bundle.num_samples(),
                bundle.feature_dim(),
                bundle.num_classes(),
                bundle.attr_dim()
            );
            println!(
                "splits: {} trainval / {} test_seen / {} test_unseen ({} seen, {} unseen classes)",
                bundle.manifest().trainval.len(),
                bundle.manifest().test_seen.len(),
                bundle.manifest().test_unseen.len(),
                bundle.num_seen_classes(),
                bundle.num_unseen_classes()
            );
            // A chunk never exceeds the table, so clamp before estimating;
            // saturating math keeps absurd --chunk-rows values from wrapping.
            let effective_chunk = chunk_rows.min(bundle.num_samples());
            println!(
                "chunk_rows {chunk_rows}: peak resident feature memory ≈ {} KiB \
                 (vs {} KiB materialized)",
                effective_chunk
                    .saturating_mul(bundle.feature_dim())
                    .saturating_mul(8)
                    / 1024,
                bundle
                    .num_samples()
                    .saturating_mul(bundle.feature_dim())
                    .saturating_mul(8)
                    / 1024
            );
            let config = CrossValConfig::new()
                .folds(folds)
                .seed(seed)
                .similarity(similarity);
            let (cv, report) = match select_train_evaluate_stream(&bundle, &config) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("streamed evaluation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "\n{}-fold CV over {} grid points (seed {seed}, {similarity} similarity, streamed):",
                cv.folds,
                cv.grid.len()
            );
            println!(
                "selected gamma={} lambda={} (val acc {:.4})\n",
                cv.best.gamma, cv.best.lambda, cv.best.mean_accuracy
            );
            println!("{report}");
            ExitCode::SUCCESS
        }
        "eval" => {
            // --csv pins the CSV feature table; default auto-detection
            // prefers .zsb when both exist.
            let loaded = if explicit_format {
                DatasetBundle::load_with_format(&dir, format)
            } else {
                DatasetBundle::load(&dir)
            };
            let bundle = match loaded {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("failed to load bundle {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "bundle: {} samples x {} features, {} classes x {} attributes",
                bundle.num_samples(),
                bundle.feature_dim(),
                bundle.num_classes(),
                bundle.attr_dim()
            );
            let ds = match bundle.to_dataset() {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("invalid splits: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "splits: {} trainval / {} test_seen / {} test_unseen ({} seen, {} unseen classes)",
                ds.train_x.rows(),
                ds.test_seen_x.rows(),
                ds.test_unseen_x.rows(),
                ds.seen_signatures.rows(),
                ds.unseen_signatures.rows()
            );
            let config = CrossValConfig::new()
                .folds(folds)
                .seed(seed)
                .similarity(similarity);
            let (cv, report) = match select_train_evaluate(&ds, &config) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("evaluation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "\n{}-fold CV over {} grid points (seed {seed}, {similarity} similarity):",
                cv.folds,
                cv.grid.len()
            );
            for point in &cv.grid {
                println!(
                    "  gamma={:<8} lambda={:<8} val acc {:.4}",
                    point.gamma, point.lambda, point.mean_accuracy
                );
            }
            println!(
                "selected gamma={} lambda={} (val acc {:.4})\n",
                cv.best.gamma, cv.best.lambda, cv.best.mean_accuracy
            );
            println!("{report}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
