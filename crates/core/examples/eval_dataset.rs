//! CLI for the unified pipeline: export bundles, run the CV → train →
//! evaluate chain through the [`Pipeline`] facade, and serve saved models.
//!
//! ```sh
//! # Write a synthetic bundle (features.zsb + signatures.csv + splits.txt):
//! cargo run --release --example eval_dataset -- export /tmp/zsl_bundle
//! cargo run --release --example eval_dataset -- export /tmp/zsl_bundle --csv --seed 7
//!
//! # Load it, grid-search hyperparameters with seeded k-fold CV, evaluate:
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle --folds 5 --sim dot
//!
//! # Swap the model family — every trainer runs through the same generic
//! # CV → fit → evaluate path (SAE sweeps only λ; the RBF kernel defaults
//! # its width to 1/d):
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle --model sae
//! cargo run --release --example eval_dataset -- train /tmp/zsl_bundle --model eszsl-rbf --save /tmp/model.zsm
//!
//! # Same protocol, but out-of-core: features are streamed from disk in
//! # --chunk-rows blocks and never materialized (bit-identical reports).
//! # Works on both formats — CSV bundles get shuffled reads via a line index:
//! cargo run --release --example eval_dataset -- eval /tmp/zsl_bundle --stream --chunk-rows 1024
//!
//! # Train once, persist the engine as a versioned .zsm artifact:
//! cargo run --release --example eval_dataset -- train /tmp/zsl_bundle --save /tmp/model.zsm
//!
//! # Serve: boot from the artifact alone (no training data, no re-solve)
//! # and score a bundle's test splits:
//! cargo run --release --example eval_dataset -- predict /tmp/zsl_bundle --load /tmp/model.zsm
//!
//! # Or serve the same artifact as a long-running daemon (coalesced
//! # batching + hot-swap on re-save; see crates/serve):
//! cargo run --release -p zsl-serve -- /tmp/model.zsm
//! ```
//!
//! `eval`, `train`, and `predict` all accept `--stream`: the same generic
//! code path then reads features chunk-at-a-time through the
//! `FeatureSource` impl of `StreamingBundle` instead of `Dataset`, with
//! bit-identical results.

use std::path::PathBuf;
use std::process::ExitCode;
use zsl_core::data::{
    export_dataset, DatasetBundle, FeatureFormat, StreamingBundle, SyntheticConfig,
};
use zsl_core::eval::{evaluate_gzsl_with, CrossValConfig};
use zsl_core::infer::{ScoringEngine, Similarity};
use zsl_core::source::{FeatureSource, SplitKind};
use zsl_core::trainer::{KernelEszslConfig, KernelKind, SaeConfig};
use zsl_core::Pipeline;

/// Model family selected with `--model`; each dispatches to its [`Trainer`]
/// through the same [`Pipeline`] facade.
///
/// [`Trainer`]: zsl_core::trainer::Trainer
#[derive(Clone, Copy, PartialEq, Eq)]
enum ModelChoice {
    Eszsl,
    Sae,
    EszslRbf,
}

impl std::str::FromStr for ModelChoice {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "eszsl" => Ok(Self::Eszsl),
            "sae" => Ok(Self::Sae),
            "eszsl-rbf" => Ok(Self::EszslRbf),
            _ => Err(()),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  eval_dataset export <dir> [--csv] [--seed N]\n  \
         eval_dataset eval <dir> [--csv] [--model eszsl|sae|eszsl-rbf] [--folds K] [--seed N] \
         [--sim cosine|dot] [--stream] [--chunk-rows N]\n  \
         eval_dataset train <dir> --save <model.zsm> [--csv] [--model eszsl|sae|eszsl-rbf] \
         [--folds K] [--seed N] [--sim cosine|dot] [--stream] [--chunk-rows N]\n  \
         eval_dataset predict <dir> --load <model.zsm> [--csv] [--stream] [--chunk-rows N]"
    );
    ExitCode::FAILURE
}

/// Open the bundle as either source kind and hand it to `run` through the
/// one generic `FeatureSource` interface — the same code path serves
/// in-memory and out-of-core ingestion. The feature width rides along
/// because the trait hides it (trainers learn it from the stream).
fn with_source(
    dir: &std::path::Path,
    format: Option<FeatureFormat>,
    stream: bool,
    chunk_rows: usize,
    run: impl FnOnce(&dyn FeatureSource, usize) -> ExitCode,
) -> ExitCode {
    if stream {
        let opened = match format {
            Some(f) => StreamingBundle::open_with_format(dir, f, chunk_rows),
            None => StreamingBundle::open(dir, chunk_rows),
        };
        let bundle = match opened {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to open streaming bundle {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "streaming bundle: {} samples x {} features, {} classes x {} attributes ({:?})",
            bundle.num_samples(),
            bundle.feature_dim(),
            bundle.num_classes(),
            bundle.attr_dim(),
            bundle.format(),
        );
        // A chunk never exceeds the table, so clamp before estimating;
        // saturating math keeps absurd --chunk-rows values from wrapping.
        let effective_chunk = chunk_rows.min(bundle.num_samples());
        println!(
            "chunk_rows {chunk_rows}: peak resident feature memory ≈ {} KiB (vs {} KiB materialized)",
            effective_chunk
                .saturating_mul(bundle.feature_dim())
                .saturating_mul(8)
                / 1024,
            bundle
                .num_samples()
                .saturating_mul(bundle.feature_dim())
                .saturating_mul(8)
                / 1024
        );
        let d = bundle.feature_dim();
        run(&bundle, d)
    } else {
        let loaded = match format {
            Some(f) => DatasetBundle::load_with_format(dir, f),
            None => DatasetBundle::load(dir),
        };
        let bundle = match loaded {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to load bundle {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "bundle: {} samples x {} features, {} classes x {} attributes",
            bundle.num_samples(),
            bundle.feature_dim(),
            bundle.num_classes(),
            bundle.attr_dim()
        );
        let d = bundle.feature_dim();
        let ds = match bundle.to_dataset() {
            Ok(ds) => ds,
            Err(e) => {
                eprintln!("invalid splits: {e}");
                return ExitCode::FAILURE;
            }
        };
        run(&ds, d)
    }
}

fn print_splits(source: &dyn FeatureSource) {
    println!(
        "splits: {} trainval / {} test_seen / {} test_unseen ({} seen, {} unseen classes)",
        source.split_len(SplitKind::Trainval),
        source.split_len(SplitKind::TestSeen),
        source.split_len(SplitKind::TestUnseen),
        source.num_seen_classes(),
        source.num_unseen_classes()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, dir) = match (args.first(), args.get(1)) {
        (Some(command), Some(dir)) => (command.as_str(), PathBuf::from(dir)),
        _ => return usage(),
    };

    // Shared flag parsing for the tail of the argument list. Flags only
    // meaningful for another subcommand are rejected, not silently swallowed
    // (an ignored `--csv` on eval would fake CSV-path coverage).
    let allowed: &[&str] = match command {
        "export" => &["--csv", "--seed"],
        "train" => &[
            "--csv",
            "--seed",
            "--folds",
            "--sim",
            "--stream",
            "--chunk-rows",
            "--save",
            "--model",
        ],
        "predict" => &["--csv", "--stream", "--chunk-rows", "--load"],
        _ => &[
            "--csv",
            "--seed",
            "--folds",
            "--sim",
            "--stream",
            "--chunk-rows",
            "--model",
        ],
    };
    let mut format: Option<FeatureFormat> = None;
    let mut seed: u64 = 2026;
    let mut folds: usize = 3;
    let mut similarity = Similarity::Cosine;
    let mut stream = false;
    let mut chunk_rows: usize = 4096;
    let mut model_path: Option<PathBuf> = None;
    let mut model_choice = ModelChoice::Eszsl;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        if !allowed.contains(&flag.as_str()) {
            eprintln!("flag '{flag}' is not valid for '{command}'");
            return usage();
        }
        match flag.as_str() {
            "--csv" => format = Some(FeatureFormat::Csv),
            "--stream" => stream = true,
            "--seed" | "--folds" | "--sim" | "--chunk-rows" | "--save" | "--load" | "--model" => {
                let Some(value) = rest.next() else {
                    eprintln!("{flag} needs a value");
                    return usage();
                };
                let ok = match flag.as_str() {
                    "--seed" => value.parse().map(|v| seed = v).is_ok(),
                    "--folds" => value.parse().map(|v| folds = v).is_ok(),
                    "--chunk-rows" => value.parse().map(|v| chunk_rows = v).is_ok(),
                    "--save" | "--load" => {
                        model_path = Some(PathBuf::from(value));
                        true
                    }
                    "--model" => value.parse().map(|v| model_choice = v).is_ok(),
                    _ => value.parse().map(|v| similarity = v).is_ok(),
                };
                if !ok {
                    eprintln!("bad value '{value}' for {flag}");
                    return usage();
                }
            }
            _ => unreachable!("flag was checked against the allow-list"),
        }
    }

    match command {
        "export" => {
            let ds = SyntheticConfig::new()
                .classes(20, 5)
                .dims(16, 32)
                .samples(30, 20)
                .noise(0.05)
                .seed(seed)
                .build();
            match export_dataset(&ds, &dir, format.unwrap_or(FeatureFormat::Zsb)) {
                Ok(path) => {
                    println!(
                        "exported synthetic bundle (seed {seed}, {} samples, {} classes) to {}",
                        ds.train_x.rows() + ds.test_seen_x.rows() + ds.test_unseen_x.rows(),
                        ds.num_classes(),
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("export failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "eval" | "train" => {
            let save_to = match (command, model_path) {
                ("train", Some(path)) => Some(path),
                ("train", None) => {
                    eprintln!("'train' needs --save <model.zsm>");
                    return usage();
                }
                (_, p) => p,
            };
            let config = CrossValConfig::new()
                .folds(folds)
                .seed(seed)
                .similarity(similarity);
            with_source(&dir, format, stream, chunk_rows, |source, feature_dim| {
                print_splits(source);
                // The documented front door: CV → fit → (evaluate | save).
                // `--model` swaps the trainer; everything downstream (the
                // sweep, the fit, the .zsm payload) follows the choice.
                let pipeline = match model_choice {
                    ModelChoice::Eszsl => Pipeline::from(source),
                    ModelChoice::Sae => {
                        Pipeline::from(source).with_trainer(SaeConfig::new().build())
                    }
                    ModelChoice::EszslRbf => {
                        // Median-free heuristic: width 1/d keeps the squared
                        // distances in the exponent O(1) for unit-ish features.
                        let width = 1.0 / feature_dim as f64;
                        Pipeline::from(source).with_trainer(
                            KernelEszslConfig::new()
                                .kernel(KernelKind::Rbf { width })
                                .build(),
                        )
                    }
                };
                let trained = match pipeline.cross_validate(&config) {
                    Ok(p) => match p.train() {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("training failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(e) => {
                        eprintln!("cross-validation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let cv = trained.cv_report().expect("cross_validate ran");
                println!(
                    "\n{}-fold CV over {} grid points (seed {seed}, {similarity} similarity{}):",
                    cv.folds,
                    cv.grid.len(),
                    if stream { ", streamed" } else { "" }
                );
                for point in &cv.grid {
                    println!(
                        "  gamma={:<8} lambda={:<8} val acc {:.4}",
                        point.gamma, point.lambda, point.mean_accuracy
                    );
                }
                println!(
                    "selected gamma={} lambda={} (val acc {:.4})",
                    cv.best.gamma, cv.best.lambda, cv.best.mean_accuracy
                );
                if let Some(trainer) = trained.trainer() {
                    println!("model: {}", trainer.describe());
                }
                println!();
                if let Some(path) = &save_to {
                    if let Err(e) = trained.save(path) {
                        eprintln!("saving model artifact failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("saved model artifact to {}", path.display());
                }
                match trained.evaluate() {
                    Ok(report) => {
                        println!("{report}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("evaluation failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            })
        }
        "predict" => {
            let Some(path) = model_path else {
                eprintln!("'predict' needs --load <model.zsm>");
                return usage();
            };
            // Serving boots from the artifact alone: the engine (projection,
            // cached bank, similarity) comes off disk with no training data
            // and no closed-form solve.
            let (engine, metadata) = match ScoringEngine::load_with_metadata(&path) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("failed to load model artifact {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "loaded {}: {} model, {} classes x {} attributes, {} similarity",
                path.display(),
                engine.model().family(),
                engine.num_classes(),
                engine.signatures().cols(),
                engine.similarity()
            );
            if !metadata.is_empty() {
                println!("provenance: {metadata}");
            }
            with_source(&dir, format, stream, chunk_rows, |source, _feature_dim| {
                print_splits(source);
                match evaluate_gzsl_with(&engine, source) {
                    Ok(report) => {
                        println!("\n{report}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("serving evaluation failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            })
        }
        _ => usage(),
    }
}
