//! Scoring-throughput bench binary: sweeps worker-thread counts over one
//! batch-scoring workload and prints a throughput table, so regressions in
//! the hot path are visible from the command line.
//!
//! ```sh
//! cargo run --release --example score_bench            # default workload
//! cargo run --release --example score_bench 8192 512 64 256
//! ```
//!
//! Positional args: `n_samples feature_dim attr_dim num_classes`.

use std::time::Instant;
use zsl_core::data::Rng;
use zsl_core::infer::{ScoringEngine, Similarity};
use zsl_core::linalg::{default_threads, Matrix};
use zsl_core::model::ProjectionModel;

fn arg(args: &[String], index: usize, default: usize) -> usize {
    args.get(index)
        .map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| panic!("bad argument {raw:?}"))
        })
        .unwrap_or(default)
}

fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg(&args, 1, 4096);
    let d = arg(&args, 2, 512);
    let a = arg(&args, 3, 64);
    let z = arg(&args, 4, 256);
    let hw = default_threads();

    let mut rng = Rng::new(0xBA5E);
    let model = ProjectionModel::from_weights(random_matrix(&mut rng, d, a));
    let bank = random_matrix(&mut rng, z, a);
    let x = random_matrix(&mut rng, n, d);

    println!("scoring workload: {n} samples x {d} features -> {a} attrs -> {z} classes (hardware threads: {hw})");
    println!(
        "{:>8} {:>10} {:>14} {:>9}",
        "threads", "best (s)", "samples/s", "speedup"
    );

    // 1, 2, 4, ... up to the hardware parallelism, always including it.
    let mut sweep = vec![1usize];
    while *sweep.last().expect("non-empty") * 2 < hw {
        sweep.push(sweep.last().expect("non-empty") * 2);
    }
    if hw > 1 {
        sweep.push(hw);
    }

    let mut baseline = None;
    for &threads in &sweep {
        let engine =
            ScoringEngine::with_threads(model.clone(), bank.clone(), Similarity::Cosine, threads);
        engine.predict(&x); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let predictions = engine.predict(&x);
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(predictions.len(), n);
        }
        let single_thread_best = *baseline.get_or_insert(best);
        println!(
            "{threads:>8} {best:>10.4} {:>14.0} {:>8.2}x",
            n as f64 / best,
            single_thread_best / best
        );
    }
}
