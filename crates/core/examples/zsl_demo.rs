//! Minimal end-to-end demo of the zero-shot pipeline:
//! synthesize a dataset, train the closed-form ESZSL model on seen classes,
//! classify held-out unseen classes through the cached parallel
//! [`ScoringEngine`], and report ZSL + GZSL metrics.
//!
//! Run with: `cargo run --example zsl_demo`

use zsl_core::data::SyntheticConfig;
use zsl_core::infer::{harmonic_mean, mean_per_class_accuracy, ScoringEngine, Similarity};
use zsl_core::linalg::default_threads;
use zsl_core::model::EszslConfig;

fn main() {
    let ds = SyntheticConfig::new()
        .classes(20, 5)
        .dims(16, 32)
        .samples(30, 20)
        .noise(0.05)
        .seed(2026)
        .build();
    let num_seen = ds.seen_signatures.rows();
    let num_unseen = ds.unseen_signatures.rows();

    let model = EszslConfig::new()
        .gamma(1.0)
        .lambda(1.0)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("training failed");

    // Classic ZSL: candidates are unseen classes only. The engine validates
    // and normalizes the signature bank once, then scores every batch through
    // the multi-threaded packed X·Sᵀ path.
    let zsl = ScoringEngine::new(
        model.clone(),
        ds.unseen_signatures.clone(),
        Similarity::Cosine,
    );
    println!("scoring threads            : {}", default_threads());
    let unseen_pred = zsl.predict(&ds.test_unseen_x);
    let zsl_acc = mean_per_class_accuracy(&unseen_pred, &ds.test_unseen_labels, num_unseen);

    // Generalized ZSL: candidates are the union of seen and unseen classes.
    let gzsl = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
    let seen_pred = gzsl.predict(&ds.test_seen_x);
    let seen_acc = mean_per_class_accuracy(&seen_pred, &ds.test_seen_labels, num_seen);
    let gzsl_unseen_pred = gzsl.predict(&ds.test_unseen_x);
    let gzsl_unseen_truth: Vec<usize> = ds
        .test_unseen_labels
        .iter()
        .map(|&l| l + num_seen)
        .collect();
    let gzsl_unseen_acc =
        mean_per_class_accuracy(&gzsl_unseen_pred, &gzsl_unseen_truth, num_seen + num_unseen);

    println!("ZSL  unseen-class accuracy : {zsl_acc:.4}");
    println!("GZSL seen accuracy         : {seen_acc:.4}");
    println!("GZSL unseen accuracy       : {gzsl_unseen_acc:.4}");
    println!(
        "GZSL harmonic mean         : {:.4}",
        harmonic_mean(seen_acc, gzsl_unseen_acc)
    );
}
