//! Evaluation harness: generalized zero-shot reports and seeded k-fold
//! hyperparameter selection, generic over any [`FeatureSource`].
//!
//! Two layers:
//!
//! 1. [`evaluate_gzsl`] runs the standard GZSL protocol on any source:
//!    both test splits are streamed chunk-at-a-time against the *union*
//!    signature bank through the cached [`ScoringEngine`], and the result is
//!    a [`GzslReport`] — seen accuracy, unseen accuracy, their harmonic mean,
//!    and per-class breakdowns. [`evaluate_gzsl_with`] is the serving-path
//!    variant that takes an already-built (e.g. `.zsm`-loaded) engine.
//! 2. [`cross_validate`] selects `(γ, λ)` **before** the unseen evaluation:
//!    a seeded k-fold split of the source's trainval samples, a grid sweep
//!    paying each fold's sufficient statistics once (not once per grid
//!    point), and mean per-class validation accuracy per grid point. Fully
//!    deterministic for a fixed seed.
//!
//! [`select_train_evaluate`] chains the two: cross-validate on trainval,
//! retrain with the winning pair, report GZSL numbers.
//!
//! Every entry point is ONE generic function over [`FeatureSource`]: a
//! materialized [`crate::data::Dataset`] lends its matrices as single borrowed chunks, a
//! [`crate::data::StreamingBundle`] reads features chunk-at-a-time from disk
//! with peak feature memory `O(chunk_rows x feature_dim)`, and a
//! [`crate::source::MemorySource`] wraps bare matrices. Because every source
//! flows through the same fold/score/count code path — integral accuracy
//! counting, ascending-row Gram folds — reports are **bit-identical** across
//! sources and chunk sizes, which `tests/streaming_equiv.rs` pins.
//!
//! Both selection entry points are also generic over the **model family**:
//! [`cross_validate_with`] / [`select_train_evaluate_with`] take any
//! [`Trainer`] (`&dyn` — ESZSL, SAE, kernelized ESZSL, or a custom impl) and
//! drive the identical fold/score/count protocol through
//! [`Trainer::fit_grid`]. The trainer-less functions are thin wrappers fixing
//! the trainer to ESZSL, which preserves their pre-trainer results bit for
//! bit (`tests/trainer_equiv.rs` pins that too).

use crate::data::Rng;
use crate::error::ZslError;
use crate::infer::{harmonic_mean, mean_defined, ClassAccuracyCounter, ScoringEngine, Similarity};
use crate::model::EszslConfig;
use crate::source::{DynSource, FeatureSource, SplitKind};
use crate::trainer::{TrainedModel, Trainer};
use std::sync::Arc;

/// Salt XORed into the user seed for the calibrated sweep's *class* shuffle,
/// so the pseudo-unseen rotation is independent of the sample-fold shuffle
/// that shares the seed.
const CALIBRATION_SHUFFLE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generalized zero-shot evaluation result.
///
/// Accuracies are mean per-class (robust to class imbalance); the harmonic
/// mean is the headline GZSL number. Per-class vectors are indexed by local
/// seen / unseen class id; `None` marks a class with no test samples.
#[derive(Clone, Debug, PartialEq)]
pub struct GzslReport {
    /// Mean per-class accuracy of the seen test split against the union bank.
    pub seen_accuracy: f64,
    /// Mean per-class accuracy of the unseen test split against the union
    /// bank.
    pub unseen_accuracy: f64,
    /// `2·s·u / (s + u)` of the two accuracies above.
    pub harmonic_mean: f64,
    /// Per-class accuracy over seen classes (index = seen class id).
    pub per_class_seen: Vec<Option<f64>>,
    /// Per-class accuracy over unseen classes (index = unseen class id).
    pub per_class_unseen: Vec<Option<f64>>,
}

impl std::fmt::Display for GzslReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "GZSL seen accuracy   : {:.4}", self.seen_accuracy)?;
        writeln!(f, "GZSL unseen accuracy : {:.4}", self.unseen_accuracy)?;
        write!(f, "GZSL harmonic mean   : {:.4}", self.harmonic_mean)
    }
}

/// Run the generalized ZSL protocol: score both test splits of `source`
/// against the union of seen and unseen signatures and summarize as a
/// [`GzslReport`].
///
/// Unseen truth labels are offset by the seen-class count to index the union
/// bank; a seen sample predicted as any unseen class (or vice versa) counts
/// as an error, exactly as in the reference ESZSL evaluation. The report is
/// **bit-identical** for every source kind, chunk size, and thread count.
pub fn evaluate_gzsl<S, M>(
    model: &M,
    source: &S,
    similarity: Similarity,
) -> Result<GzslReport, ZslError>
where
    S: FeatureSource + ?Sized,
    M: Clone + Into<TrainedModel>,
{
    // Fallible construction: this driver is reachable from artifact-loaded
    // and daemon-adjacent paths, where a malformed bank must surface as a
    // typed error rather than a panic.
    let engine = ScoringEngine::try_new(model.clone(), source.union_signatures(), similarity)?;
    evaluate_gzsl_with(&engine, source)
}

/// [`evaluate_gzsl`] with an already-built engine — the serving path: an
/// engine reloaded from a `.zsm` artifact ([`ScoringEngine::load`]) evaluates
/// a source without ever touching training data or re-solving the closed
/// form.
///
/// The engine's bank must be the source's union bank (seen then unseen, rank
/// order): the check is bit-exact — the source's union signatures, prepared
/// the way the engine prepares its bank (L2-normalized for cosine), must
/// equal the engine's cached bank. This catches not just class-count
/// mismatches but also a *different seen/unseen partition with the same
/// total*, which would silently misattribute every per-class accuracy. A
/// mismatch, like a feature-width mismatch between the source's chunks and
/// the engine's projection, is a typed [`ZslError::Config`] — serving inputs
/// never panic.
pub fn evaluate_gzsl_with<S: FeatureSource + ?Sized>(
    engine: &ScoringEngine,
    source: &S,
) -> Result<GzslReport, ZslError> {
    let num_seen = source.num_seen_classes();
    let num_unseen = source.num_unseen_classes();
    let total = num_seen + num_unseen;
    if engine.num_classes() != total {
        return Err(ZslError::Config(format!(
            "engine scores {} classes but the source has {num_seen} seen + {num_unseen} unseen; \
             the engine must be built over the source's union signature bank",
            engine.num_classes()
        )));
    }
    // A calibrated engine penalizes its seen-class *prefix* at scoring time;
    // that prefix must be exactly the source's seen block or the stacking
    // penalty lands on the wrong classes in every report row.
    if let Some((gamma_cal, seen)) = engine.seen_calibration() {
        if seen != num_seen {
            return Err(ZslError::Config(format!(
                "engine's calibration (gamma_cal={gamma_cal}) penalizes a {seen}-class seen \
                 prefix but the source has {num_seen} seen classes"
            )));
        }
    }
    let mut expected_bank = source.union_signatures();
    if engine.similarity() == Similarity::Cosine {
        expected_bank.l2_normalize_rows();
    }
    if expected_bank.as_slice() != engine.signatures().as_slice() {
        return Err(ZslError::Config(format!(
            "engine signature bank does not match the source's union bank \
             ({num_seen} seen + {num_unseen} unseen classes): the model was built over \
             different class signatures or a different seen/unseen partition"
        )));
    }

    let mut counter = ClassAccuracyCounter::new(total);
    for chunk in source.stream(SplitKind::TestSeen)? {
        let (x, labels) = chunk?;
        engine.check_feature_width(x.cols())?;
        counter.observe(&engine.predict(&x), &labels);
    }
    for chunk in source.stream(SplitKind::TestUnseen)? {
        let (x, labels) = chunk?;
        engine.check_feature_width(x.cols())?;
        // Unseen truth indexes the union bank after the seen block.
        let truth: Vec<usize> = labels.iter().map(|&l| l + num_seen).collect();
        counter.observe(&engine.predict(&x), &truth);
    }

    let per_class = counter.per_class();
    let per_class_seen = per_class[..num_seen].to_vec();
    let per_class_unseen = per_class[num_seen..].to_vec();
    let seen_accuracy = mean_defined(&per_class_seen);
    let unseen_accuracy = mean_defined(&per_class_unseen);
    Ok(GzslReport {
        seen_accuracy,
        unseen_accuracy,
        harmonic_mean: harmonic_mean(seen_accuracy, unseen_accuracy),
        per_class_seen,
        per_class_unseen,
    })
}

/// Builder-style configuration for [`cross_validate`].
#[derive(Clone, Debug)]
pub struct CrossValConfig {
    /// Candidate feature-space regularizers γ.
    pub gammas: Vec<f64>,
    /// Candidate attribute-space regularizers λ.
    pub lambdas: Vec<f64>,
    /// Number of folds `k`; each fold is held out once.
    pub folds: usize,
    /// Seed of the fold-assignment shuffle; fully determines the result.
    pub seed: u64,
    /// Similarity used for validation scoring.
    pub similarity: Similarity,
    /// L2-normalize training feature rows inside each fold — set this to
    /// match the [`EszslConfig`] the winning `(γ, λ)` will be fitted with,
    /// so the sweep selects hyperparameters for the model actually trained.
    /// [`crate::pipeline::Pipeline::cross_validate`] wires this up
    /// automatically.
    pub normalize_features: bool,
    /// L2-normalize signature rows inside each fold's training problem
    /// (mirroring [`EszslConfig::normalize_signatures`]).
    pub normalize_signatures: bool,
    /// Candidate calibrated-stacking penalties `γ_cal` (the seen-class score
    /// penalty applied at scoring time; see
    /// [`ScoringEngine::with_calibration`]).
    ///
    /// The default `[0.0]` keeps the sweep exactly what it always was — a
    /// plain `(γ, λ)` accuracy sweep, bit-identical to every pre-calibration
    /// release. Supplying any non-zero candidate switches the sweep to the
    /// *pseudo-unseen* protocol: per fold, a seeded rotation holds out a
    /// subset of seen **classes** (not just samples) from training, every
    /// `(γ, λ)` model is scored at every `γ_cal` with the still-trained
    /// classes penalized, and the fold metric becomes the harmonic mean of
    /// pseudo-seen and pseudo-unseen per-class accuracy — the GZSL quantity
    /// the calibration exists to improve.
    pub calibrations: Vec<f64>,
}

impl Default for CrossValConfig {
    /// Powers-of-ten grid `10⁻³..10³` for both regularizers (the standard
    /// ESZSL search space), 3 folds, cosine similarity.
    fn default() -> Self {
        let decades: Vec<f64> = (-3..=3).map(|e| 10f64.powi(e)).collect();
        CrossValConfig {
            gammas: decades.clone(),
            lambdas: decades,
            folds: 3,
            seed: 0x5EED,
            similarity: Similarity::Cosine,
            normalize_features: false,
            normalize_signatures: false,
            calibrations: vec![0.0],
        }
    }
}

impl CrossValConfig {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the γ candidates.
    pub fn gammas(mut self, gammas: Vec<f64>) -> Self {
        self.gammas = gammas;
        self
    }

    /// Set the λ candidates.
    pub fn lambdas(mut self, lambdas: Vec<f64>) -> Self {
        self.lambdas = lambdas;
        self
    }

    /// Set the fold count (must be ≥ 2).
    pub fn folds(mut self, folds: usize) -> Self {
        self.folds = folds;
        self
    }

    /// Set the shuffle seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the validation similarity.
    pub fn similarity(mut self, similarity: Similarity) -> Self {
        self.similarity = similarity;
        self
    }

    /// Toggle L2 normalization of training feature rows inside each fold.
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.normalize_features = on;
        self
    }

    /// Toggle L2 normalization of signature rows inside each fold's training
    /// problem.
    pub fn normalize_signatures(mut self, on: bool) -> Self {
        self.normalize_signatures = on;
        self
    }

    /// Set the `γ_cal` calibration candidates. `vec![0.0]` (the default)
    /// disables the calibration axis entirely; see
    /// [`CrossValConfig::calibrations`] for what a non-trivial grid changes.
    pub fn calibrations(mut self, calibrations: Vec<f64>) -> Self {
        self.calibrations = calibrations;
        self
    }
}

/// One `(γ, λ)` grid point's cross-validation outcome.
///
/// For trainers with fewer hyperparameters the unused axis holds the
/// placeholder the trainer's [`Trainer::grid_points`] recorded (SAE stores
/// `γ = 0`).
#[derive(Clone, Debug, PartialEq)]
pub struct GridPoint {
    /// Feature-space regularizer.
    pub gamma: f64,
    /// Attribute-space regularizer.
    pub lambda: f64,
    /// Calibrated-stacking penalty `γ_cal` this point was scored at (0 when
    /// the calibration axis is disabled).
    pub calibration: f64,
    /// Validation metric, averaged over folds: mean per-class accuracy on
    /// the plain sweep, pseudo-GZSL harmonic mean on a calibrated sweep.
    pub mean_accuracy: f64,
    /// Per-fold validation metrics (length = fold count).
    pub fold_accuracies: Vec<f64>,
}

/// Full cross-validation outcome: the winning grid point plus the whole grid
/// in sweep order (γ outer, λ inner).
#[derive(Clone, Debug, PartialEq)]
pub struct CrossValReport {
    /// The grid point with the highest mean accuracy (earliest wins ties).
    pub best: GridPoint,
    /// Every grid point, in sweep order.
    pub grid: Vec<GridPoint>,
    /// Fold count used.
    pub folds: usize,
}

/// Seeded k-fold cross-validated grid search over `(γ, λ)` on the trainval
/// split of any [`FeatureSource`].
///
/// Sample positions are shuffled once with [`Rng`] (Fisher–Yates, seeded by
/// `config.seed`) and cut into `k` contiguous folds; each fold's Gram
/// matrices are paid once, every grid point is solved up front, and the
/// held-out fold's rows stream ONCE past *all* grid-point engines, scored
/// against the full seen-class signature bank and summarized as mean
/// per-class accuracy. Identical configuration + seed ⇒ identical report,
/// regardless of source kind, chunk size, or thread count.
///
/// To sweep bare matrices (the pre-PR 5 four-argument form), wrap them in a
/// [`crate::source::MemorySource`]. To sweep a different model family, use
/// [`cross_validate_with`]; this function fixes the trainer to ESZSL with the
/// config's normalization toggles, reproducing its pre-trainer results bit
/// for bit.
pub fn cross_validate<S: FeatureSource + ?Sized>(
    source: &S,
    config: &CrossValConfig,
) -> Result<CrossValReport, ZslError> {
    cross_validate_with(&default_eszsl_trainer(config), &DynSource(source), config)
}

/// [`cross_validate`] generic over the model family: a seeded k-fold
/// cross-validated sweep of `trainer`'s grid over the trainval split.
///
/// Per fold, [`Trainer::fit_grid`] pays the trainer's sufficient statistics
/// once and solves every grid point; the held-out fold's rows then stream
/// ONCE past *all* grid-point engines, scored against the seen-class bank and
/// summarized as mean per-class accuracy. The fold protocol (seeded
/// Fisher–Yates shuffle, contiguous folds balanced to within one sample) and
/// the report assembly are byte-for-byte the ones the ESZSL-only sweep always
/// used — identical configuration + seed + trainer ⇒ identical report,
/// regardless of source kind, chunk size, or thread count.
pub fn cross_validate_with(
    trainer: &dyn Trainer,
    source: &dyn FeatureSource,
    config: &CrossValConfig,
) -> Result<CrossValReport, ZslError> {
    let n = source.trainval_len();
    validate_cv_shape(config, n)?;
    let points = trainer.grid_points(&config.gammas, &config.lambdas);
    if points.is_empty() {
        return Err(ZslError::Config(format!(
            "trainer '{}' mapped the configured grids to zero sweep points",
            trainer.describe()
        )));
    }
    // `[0.0]` (the default) means "no calibration axis": the code below must
    // then be — and is — the byte-for-byte pre-calibration sweep, so every
    // existing report stays bit-identical.
    let calibrated = config.calibrations.len() > 1 || config.calibrations[0] != 0.0;
    let triples: Vec<(f64, f64, f64)> = points
        .iter()
        .flat_map(|&(g, l)| config.calibrations.iter().map(move |&c| (g, l, c)))
        .collect();

    let signatures = source.seen_signatures().into_owned();
    let z = signatures.rows();
    let mut order: Vec<usize> = (0..n).collect();
    Rng::new(config.seed).shuffle(&mut order);

    // The calibrated sweep rotates pseudo-unseen CLASSES through the folds:
    // a seeded shuffle (independent of the sample shuffle) assigns each seen
    // class to the one fold where it plays "unseen" — dropped from training,
    // unpenalized at scoring — while the remaining classes play "seen" and
    // take the γ_cal penalty, miniaturizing the GZSL bias the calibration
    // exists to correct. Sample labels are gathered once, in stream order,
    // to exclude pseudo-unseen-labeled rows from each fold's training set.
    let (class_fold, trainval_labels) = if calibrated {
        if z < config.folds {
            return Err(ZslError::Config(format!(
                "calibrated cross-validation rotates pseudo-unseen classes through the folds \
                 and needs at least as many seen classes as folds; got {z} classes for {} folds",
                config.folds
            )));
        }
        let mut class_order: Vec<usize> = (0..z).collect();
        Rng::new(config.seed ^ CALIBRATION_SHUFFLE_SALT).shuffle(&mut class_order);
        let mut class_fold = vec![0usize; z];
        for (p, &c) in class_order.iter().enumerate() {
            class_fold[c] = p % config.folds;
        }
        let mut labels = Vec::with_capacity(n);
        for chunk in source.stream(SplitKind::Trainval)? {
            let (_x, chunk_labels) = chunk?;
            labels.extend_from_slice(&chunk_labels);
        }
        if labels.len() != n {
            return Err(ZslError::Config(format!(
                "source streamed {} trainval labels but reports trainval_len {n}",
                labels.len()
            )));
        }
        (class_fold, labels)
    } else {
        (Vec::new(), Vec::new())
    };

    let mut fold_accuracies = vec![Vec::with_capacity(config.folds); triples.len()];

    for fold in 0..config.folds {
        // Contiguous slice of the shuffled order; balanced to within one
        // sample.
        let lo = fold * n / config.folds;
        let hi = (fold + 1) * n / config.folds;
        let val_idx = &order[lo..hi];
        let train_idx: Vec<usize> = if calibrated {
            order[..lo]
                .iter()
                .chain(&order[hi..])
                .copied()
                .filter(|&i| class_fold[trainval_labels[i]] != fold)
                .collect()
        } else {
            order[..lo].iter().chain(&order[hi..]).copied().collect()
        };

        // The trainer pays its sufficient statistics once per fold and solves
        // every grid point up front; the fold's validation rows then stream
        // ONCE past all engines — on a calibrated sweep, one engine per
        // `(γ, λ) × γ_cal` sharing the fitted model.
        let models = trainer.fit_grid(source, &train_idx, &points)?;
        let mask = calibrated.then(|| {
            // Penalize the classes still trained on this fold (pseudo-seen).
            Arc::new((0..z).map(|c| class_fold[c] != fold).collect::<Vec<bool>>())
        });
        let mut engines = Vec::with_capacity(triples.len());
        let mut counters = Vec::with_capacity(triples.len());
        for model in models {
            for &gamma_cal in &config.calibrations {
                let engine =
                    ScoringEngine::try_new(model.clone(), signatures.clone(), config.similarity)?;
                let engine = match &mask {
                    Some(mask) => engine.with_calibration_mask(gamma_cal, Arc::clone(mask)),
                    None => engine,
                };
                engines.push(engine);
                counters.push(ClassAccuracyCounter::new(z));
            }
        }
        for chunk in source.stream_trainval_subset(val_idx)? {
            let (x, labels) = chunk?;
            for (engine, counter) in engines.iter().zip(&mut counters) {
                counter.observe(&engine.predict(&x), &labels);
            }
        }
        for (point, counter) in counters.iter().enumerate() {
            if calibrated {
                // The fold metric mirrors the GZSL headline number: harmonic
                // mean of pseudo-seen and pseudo-unseen per-class accuracy.
                let per_class = counter.per_class();
                let mut pseudo_seen = Vec::new();
                let mut pseudo_unseen = Vec::new();
                for (c, acc) in per_class.iter().enumerate() {
                    if class_fold[c] == fold {
                        pseudo_unseen.push(*acc);
                    } else {
                        pseudo_seen.push(*acc);
                    }
                }
                fold_accuracies[point].push(harmonic_mean(
                    mean_defined(&pseudo_seen),
                    mean_defined(&pseudo_unseen),
                ));
            } else {
                fold_accuracies[point].push(counter.mean());
            }
        }
    }

    Ok(assemble_cross_val_report(
        &triples,
        config.folds,
        fold_accuracies,
    ))
}

/// The trainer the trainer-less entry points always used: ESZSL with the
/// config's normalization toggles (its own γ/λ are irrelevant — the sweep
/// supplies them).
fn default_eszsl_trainer(config: &CrossValConfig) -> crate::model::EszslTrainer {
    EszslConfig::new()
        .normalize_features(config.normalize_features)
        .normalize_signatures(config.normalize_signatures)
        .build()
}

/// Shared configuration checks for the cross-validation sweep.
fn validate_cv_shape(config: &CrossValConfig, n: usize) -> Result<(), ZslError> {
    if config.folds < 2 {
        return Err(ZslError::Config(format!(
            "need at least 2 folds, got {}",
            config.folds
        )));
    }
    if n < config.folds {
        return Err(ZslError::Config(format!(
            "{n} samples cannot be split into {} folds",
            config.folds
        )));
    }
    if config.gammas.is_empty() || config.lambdas.is_empty() {
        return Err(ZslError::Config(
            "gamma and lambda grids must be non-empty".into(),
        ));
    }
    if config.calibrations.is_empty() {
        return Err(ZslError::Config(
            "calibration grid must be non-empty (use [0.0] to disable the axis)".into(),
        ));
    }
    if let Some(&bad) = config
        .calibrations
        .iter()
        .find(|c| !c.is_finite() || **c < 0.0)
    {
        return Err(ZslError::Config(format!(
            "calibration penalties must be finite and >= 0, got {bad}"
        )));
    }
    Ok(())
}

/// Assemble the grid + winner from per-point fold accuracies. One code path
/// for every source kind keeps reports bit-identical (same summation order,
/// same tie-break).
fn assemble_cross_val_report(
    points: &[(f64, f64, f64)],
    fold_count: usize,
    mut fold_accuracies: Vec<Vec<f64>>,
) -> CrossValReport {
    let mut grid = Vec::with_capacity(fold_accuracies.len());
    for (point, &(gamma, lambda, calibration)) in points.iter().enumerate() {
        let folds = std::mem::take(&mut fold_accuracies[point]);
        let mean_accuracy = folds.iter().sum::<f64>() / folds.len() as f64;
        grid.push(GridPoint {
            gamma,
            lambda,
            calibration,
            mean_accuracy,
            fold_accuracies: folds,
        });
    }
    let best = grid
        .iter()
        .reduce(|best, candidate| {
            // Strictly-greater keeps the earliest grid point on ties, making
            // selection deterministic and independent of float noise order.
            if candidate
                .mean_accuracy
                .total_cmp(&best.mean_accuracy)
                .is_gt()
            {
                candidate
            } else {
                best
            }
        })
        .expect("grid is non-empty")
        .clone();
    CrossValReport {
        best,
        grid,
        folds: fold_count,
    }
}

/// The full experiment protocol over any [`FeatureSource`]: cross-validate
/// `(γ, λ)` on the trainval split, retrain on all of it with the winner, and
/// evaluate GZSL.
///
/// This is the path the [`crate::pipeline::Pipeline`] facade and the
/// `eval_dataset` example drive, and the one the round-trip acceptance test
/// pins: the same source always yields the same
/// `(CrossValReport, GzslReport)` pair for a fixed config — bit-identical
/// whether the source is materialized or streamed from disk.
pub fn select_train_evaluate<S: FeatureSource + ?Sized>(
    source: &S,
    config: &CrossValConfig,
) -> Result<(CrossValReport, GzslReport), ZslError> {
    select_train_evaluate_with(&default_eszsl_trainer(config), &DynSource(source), config)
}

/// [`select_train_evaluate`] generic over the model family: cross-validate
/// `trainer`'s grid, refit on the full trainval split at the winning point
/// ([`Trainer::with_point`]), and evaluate GZSL. This is the one protocol
/// every family runs — `tests/trainer_equiv.rs` pins that SAE and kernelized
/// ESZSL flow through it with the same determinism guarantees as ESZSL.
pub fn select_train_evaluate_with(
    trainer: &dyn Trainer,
    source: &dyn FeatureSource,
    config: &CrossValConfig,
) -> Result<(CrossValReport, GzslReport), ZslError> {
    let cv = cross_validate_with(trainer, source, config)?;
    // The final fit applies the same normalization the sweep selected under;
    // the winning γ_cal (0 on an uncalibrated sweep, leaving the engine
    // untouched) penalizes the union bank's seen prefix during evaluation.
    let model = trainer
        .with_point(cv.best.gamma, cv.best.lambda)
        .fit(source)?;
    let engine = ScoringEngine::try_new(model, source.union_signatures(), config.similarity)?
        .with_calibration(cv.best.calibration, source.num_seen_classes())?;
    let report = evaluate_gzsl_with(&engine, source)?;
    Ok((cv, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticConfig};
    use crate::infer::{mean_per_class_accuracy, per_class_accuracy};
    use crate::model::{ProjectionModel, TrainError};
    use crate::source::MemorySource;

    fn trained_dataset() -> (ProjectionModel, Dataset) {
        let ds = SyntheticConfig::new().seed(99).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        (model, ds)
    }

    #[test]
    fn gzsl_report_matches_hand_rolled_protocol() {
        let (model, ds) = trained_dataset();
        let report = evaluate_gzsl(&model, &ds, Similarity::Cosine).expect("evaluate");
        assert!(report.harmonic_mean >= 0.9, "hm {}", report.harmonic_mean);
        assert_eq!(report.per_class_seen.len(), ds.seen_signatures.rows());
        assert_eq!(report.per_class_unseen.len(), ds.unseen_signatures.rows());
        assert!(report.per_class_seen.iter().all(|a| a.is_some()));
        // The report must equal the manual union-bank computation.
        let engine = ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine);
        let num_seen = ds.seen_signatures.rows();
        let total = ds.num_classes();
        let seen_pred = engine.predict(&ds.test_seen_x);
        let manual_seen =
            mean_defined(&per_class_accuracy(&seen_pred, &ds.test_seen_labels, total)[..num_seen]);
        assert_eq!(report.seen_accuracy, manual_seen);
        assert_eq!(
            report.harmonic_mean,
            harmonic_mean(report.seen_accuracy, report.unseen_accuracy)
        );
        // The engine-level entry produces the identical report.
        let with_engine = evaluate_gzsl_with(&engine, &ds).expect("evaluate_with");
        assert_eq!(with_engine, report);
    }

    #[test]
    fn evaluate_with_rejects_a_mismatched_engine_bank() {
        let (model, ds) = trained_dataset();
        // Seen-only bank cannot score the GZSL union protocol.
        let engine = ScoringEngine::new(
            model.clone(),
            ds.seen_signatures.clone(),
            Similarity::Cosine,
        );
        assert!(matches!(
            evaluate_gzsl_with(&engine, &ds),
            Err(ZslError::Config(msg)) if msg.contains("union")
        ));
        // Same TOTAL class count but a different seen/unseen partition (the
        // bank rows come in a different order) must also be rejected — a
        // count-only gate would silently misattribute every accuracy.
        let mut rotated = Vec::new();
        let union = ds.all_signatures();
        for r in 1..union.rows() {
            rotated.push(union.row(r).to_vec());
        }
        rotated.push(union.row(0).to_vec());
        let wrong_partition = crate::linalg::Matrix::from_rows(&rotated);
        let engine = ScoringEngine::new(model, wrong_partition, Similarity::Cosine);
        assert_eq!(engine.num_classes(), ds.num_classes(), "same total");
        assert!(matches!(
            evaluate_gzsl_with(&engine, &ds),
            Err(ZslError::Config(msg)) if msg.contains("partition")
        ));
    }

    #[test]
    fn gzsl_handles_empty_test_splits_without_panicking() {
        let ds = SyntheticConfig::new().classes(20, 5).samples(10, 0).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        let report = evaluate_gzsl(&model, &ds, Similarity::Cosine).expect("evaluate");
        assert_eq!(report.seen_accuracy, 0.0);
        assert_eq!(report.unseen_accuracy, 0.0);
        assert_eq!(report.harmonic_mean, 0.0);
        assert!(report.per_class_seen.iter().all(|a| a.is_none()));
    }

    #[test]
    fn cross_validation_is_deterministic_for_a_fixed_seed() {
        let ds = SyntheticConfig::new()
            .classes(10, 2)
            .dims(6, 8)
            .samples(8, 2)
            .build();
        let config = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![0.1, 1.0])
            .folds(3)
            .seed(404);
        let source = MemorySource::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures);
        let a = cross_validate(&source, &config).expect("cv");
        let b = cross_validate(&source, &config).expect("cv");
        assert_eq!(a, b, "same seed must reproduce the full report");
        assert_eq!(a.grid.len(), 4);
        assert!(a.grid.iter().all(|p| p.fold_accuracies.len() == 3));
        // The Dataset source sweeps the identical trainval split.
        let via_dataset = cross_validate(&ds, &config).expect("cv");
        assert_eq!(via_dataset, a, "MemorySource and Dataset must agree");
        // A different shuffle may (and here does) change fold accuracies.
        let shifted = cross_validate(&source, &config.clone().seed(405)).expect("cv");
        assert_eq!(shifted.grid.len(), a.grid.len());
    }

    #[test]
    fn cross_validation_rejects_bad_configs() {
        let ds = SyntheticConfig::new().classes(5, 1).samples(2, 1).build();
        let base = CrossValConfig::new().gammas(vec![1.0]).lambdas(vec![1.0]);
        let source = MemorySource::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures);
        assert!(matches!(
            cross_validate(&source, &base.clone().folds(1)),
            Err(ZslError::Config(_))
        ));
        assert!(matches!(
            cross_validate(&source, &base.clone().folds(99)),
            Err(ZslError::Config(_))
        ));
        assert!(matches!(
            cross_validate(&source, &base.clone().gammas(vec![])),
            Err(ZslError::Config(_))
        ));
        assert!(matches!(
            cross_validate(&source, &base.gammas(vec![-1.0])),
            Err(ZslError::Train(TrainError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn grid_search_prefers_points_that_score_better() {
        // On clean synthetic data, moderate regularization should beat an
        // absurdly large γ; the sweep must reflect that in its best pick.
        let ds = SyntheticConfig::new().seed(123).build();
        let config = CrossValConfig::new()
            .gammas(vec![1.0, 1e6])
            .lambdas(vec![1.0])
            .folds(3)
            .seed(7);
        let report = cross_validate(&ds, &config).expect("cv");
        assert_eq!(report.best.gamma, 1.0, "grid: {:?}", report.grid);
        assert!(report.best.mean_accuracy > 0.9);
    }

    #[test]
    fn select_train_evaluate_runs_end_to_end() {
        let ds = SyntheticConfig::new().seed(55).build();
        let config = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![0.1, 1.0])
            .folds(3);
        let (cv, report) = select_train_evaluate(&ds, &config).expect("experiment");
        assert!(cv.best.mean_accuracy > 0.9);
        assert!(report.harmonic_mean > 0.9);
    }

    #[test]
    fn per_class_mean_helpers_agree_with_counter() {
        // Keep the one-shot metric wrappers honest against the counter the
        // generic path uses.
        let predicted = [0usize, 1, 1, 2];
        let truth = [0usize, 1, 0, 2];
        let mut counter = ClassAccuracyCounter::new(3);
        counter.observe(&predicted, &truth);
        assert_eq!(
            counter.mean(),
            mean_per_class_accuracy(&predicted, &truth, 3)
        );
    }
}
