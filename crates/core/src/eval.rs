//! Evaluation harness: generalized zero-shot reports and seeded k-fold
//! hyperparameter selection.
//!
//! Two layers:
//!
//! 1. [`evaluate_gzsl`] runs the standard GZSL protocol on a [`Dataset`]:
//!    both test splits are scored against the *union* signature bank through
//!    the cached [`ScoringEngine`], and the result is a [`GzslReport`] —
//!    seen accuracy, unseen accuracy, their harmonic mean, and per-class
//!    breakdowns. Scores are bit-identical for every thread count.
//! 2. [`cross_validate`] selects `(γ, λ)` **before** the unseen evaluation:
//!    a seeded k-fold split of the seen-class training data, a grid sweep
//!    reusing one [`EszslProblem`] per fold (the Gram matrices are paid once
//!    per fold, not once per grid point), and mean per-class validation
//!    accuracy per grid point. Fully deterministic for a fixed seed.
//!
//! [`select_train_evaluate`] chains the two: cross-validate on trainval,
//! retrain with the winning pair, report GZSL numbers.
//!
//! Every entry point has an out-of-core twin ([`evaluate_gzsl_stream`],
//! [`cross_validate_stream`], [`select_train_evaluate_stream`]) that runs the
//! identical protocol over a [`StreamingBundle`] — features are read
//! chunk-at-a-time from disk and the reports are **bit-identical** to the
//! in-memory ones, which `tests/streaming_equiv.rs` pins.

use crate::data::{DataError, Dataset, FeatureFormat, Rng, StreamingBundle};
use crate::infer::{
    harmonic_mean, mean_defined, mean_per_class_accuracy, per_class_accuracy, ClassAccuracyCounter,
    ScoringEngine, Similarity,
};
use crate::model::{EszslConfig, EszslProblem, ProjectionModel, TrainError};

/// Error from the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// The cross-validation configuration is unusable (bad fold count, empty
    /// grid, too few samples).
    InvalidConfig(String),
    /// Training failed inside a fold or the final fit.
    Train(TrainError),
    /// Reading a streamed bundle failed mid-evaluation.
    Data(DataError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InvalidConfig(msg) => write!(f, "invalid eval config: {msg}"),
            EvalError::Train(e) => write!(f, "training failed during evaluation: {e}"),
            EvalError::Data(e) => write!(f, "streamed bundle read failed during evaluation: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Train(e) => Some(e),
            EvalError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for EvalError {
    fn from(e: TrainError) -> Self {
        EvalError::Train(e)
    }
}

impl From<DataError> for EvalError {
    fn from(e: DataError) -> Self {
        EvalError::Data(e)
    }
}

/// Generalized zero-shot evaluation result.
///
/// Accuracies are mean per-class (robust to class imbalance); the harmonic
/// mean is the headline GZSL number. Per-class vectors are indexed by local
/// seen / unseen class id; `None` marks a class with no test samples.
#[derive(Clone, Debug, PartialEq)]
pub struct GzslReport {
    /// Mean per-class accuracy of the seen test split against the union bank.
    pub seen_accuracy: f64,
    /// Mean per-class accuracy of the unseen test split against the union
    /// bank.
    pub unseen_accuracy: f64,
    /// `2·s·u / (s + u)` of the two accuracies above.
    pub harmonic_mean: f64,
    /// Per-class accuracy over seen classes (index = seen class id).
    pub per_class_seen: Vec<Option<f64>>,
    /// Per-class accuracy over unseen classes (index = unseen class id).
    pub per_class_unseen: Vec<Option<f64>>,
}

impl std::fmt::Display for GzslReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "GZSL seen accuracy   : {:.4}", self.seen_accuracy)?;
        writeln!(f, "GZSL unseen accuracy : {:.4}", self.unseen_accuracy)?;
        write!(f, "GZSL harmonic mean   : {:.4}", self.harmonic_mean)
    }
}

/// Run the generalized ZSL protocol: score both test splits of `ds` against
/// the union of seen and unseen signatures and summarize as a [`GzslReport`].
///
/// Unseen truth labels are offset by the seen-class count to index the union
/// bank; a seen sample predicted as any unseen class (or vice versa) counts
/// as an error, exactly as in the reference ESZSL evaluation.
pub fn evaluate_gzsl(model: &ProjectionModel, ds: &Dataset, similarity: Similarity) -> GzslReport {
    let num_seen = ds.seen_signatures.rows();
    let num_unseen = ds.unseen_signatures.rows();
    let total = num_seen + num_unseen;
    let engine = ScoringEngine::new(model.clone(), ds.all_signatures(), similarity);

    let seen_pred = engine.predict(&ds.test_seen_x);
    let per_class_seen =
        per_class_accuracy(&seen_pred, &ds.test_seen_labels, total)[..num_seen].to_vec();

    let unseen_pred = engine.predict(&ds.test_unseen_x);
    let unseen_truth: Vec<usize> = ds
        .test_unseen_labels
        .iter()
        .map(|&l| l + num_seen)
        .collect();
    let per_class_unseen =
        per_class_accuracy(&unseen_pred, &unseen_truth, total)[num_seen..].to_vec();

    let seen_accuracy = mean_defined(&per_class_seen);
    let unseen_accuracy = mean_defined(&per_class_unseen);
    GzslReport {
        seen_accuracy,
        unseen_accuracy,
        harmonic_mean: harmonic_mean(seen_accuracy, unseen_accuracy),
        per_class_seen,
        per_class_unseen,
    }
}

/// Builder-style configuration for [`cross_validate`].
#[derive(Clone, Debug)]
pub struct CrossValConfig {
    /// Candidate feature-space regularizers γ.
    pub gammas: Vec<f64>,
    /// Candidate attribute-space regularizers λ.
    pub lambdas: Vec<f64>,
    /// Number of folds `k`; each fold is held out once.
    pub folds: usize,
    /// Seed of the fold-assignment shuffle; fully determines the result.
    pub seed: u64,
    /// Similarity used for validation scoring.
    pub similarity: Similarity,
}

impl Default for CrossValConfig {
    /// Powers-of-ten grid `10⁻³..10³` for both regularizers (the standard
    /// ESZSL search space), 3 folds, cosine similarity.
    fn default() -> Self {
        let decades: Vec<f64> = (-3..=3).map(|e| 10f64.powi(e)).collect();
        CrossValConfig {
            gammas: decades.clone(),
            lambdas: decades,
            folds: 3,
            seed: 0x5EED,
            similarity: Similarity::Cosine,
        }
    }
}

impl CrossValConfig {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the γ candidates.
    pub fn gammas(mut self, gammas: Vec<f64>) -> Self {
        self.gammas = gammas;
        self
    }

    /// Set the λ candidates.
    pub fn lambdas(mut self, lambdas: Vec<f64>) -> Self {
        self.lambdas = lambdas;
        self
    }

    /// Set the fold count (must be ≥ 2).
    pub fn folds(mut self, folds: usize) -> Self {
        self.folds = folds;
        self
    }

    /// Set the shuffle seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the validation similarity.
    pub fn similarity(mut self, similarity: Similarity) -> Self {
        self.similarity = similarity;
        self
    }
}

/// One `(γ, λ)` grid point's cross-validation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct GridPoint {
    /// Feature-space regularizer.
    pub gamma: f64,
    /// Attribute-space regularizer.
    pub lambda: f64,
    /// Validation mean per-class accuracy, averaged over folds.
    pub mean_accuracy: f64,
    /// Per-fold validation accuracies (length = fold count).
    pub fold_accuracies: Vec<f64>,
}

/// Full cross-validation outcome: the winning grid point plus the whole grid
/// in sweep order (γ outer, λ inner).
#[derive(Clone, Debug, PartialEq)]
pub struct CrossValReport {
    /// The grid point with the highest mean accuracy (earliest wins ties).
    pub best: GridPoint,
    /// Every grid point, in sweep order.
    pub grid: Vec<GridPoint>,
    /// Fold count used.
    pub folds: usize,
}

/// Seeded k-fold cross-validated grid search over `(γ, λ)` on seen-class
/// training data.
///
/// Sample indices are shuffled once with [`Rng`] (Fisher–Yates, seeded by
/// `config.seed`) and cut into `k` contiguous folds. For each fold, one
/// [`EszslProblem`] is built from the other `k−1` folds and solved for every
/// grid point; the held-out fold is scored against the full seen-class
/// signature bank and summarized as mean per-class accuracy. Identical
/// configuration + seed ⇒ identical report, regardless of thread count.
pub fn cross_validate(
    x: &crate::linalg::Matrix,
    labels: &[usize],
    signatures: &crate::linalg::Matrix,
    config: &CrossValConfig,
) -> Result<CrossValReport, EvalError> {
    let n = x.rows();
    validate_cv_shape(config, n)?;
    if x.rows() != labels.len() {
        return Err(EvalError::Train(TrainError::Shape(format!(
            "{} feature rows but {} labels",
            x.rows(),
            labels.len()
        ))));
    }

    let mut order: Vec<usize> = (0..n).collect();
    Rng::new(config.seed).shuffle(&mut order);

    let num_points = config.gammas.len() * config.lambdas.len();
    let mut fold_accuracies = vec![Vec::with_capacity(config.folds); num_points];
    let z = signatures.rows();

    for fold in 0..config.folds {
        // Contiguous slice of the shuffled order; balanced to within one
        // sample.
        let lo = fold * n / config.folds;
        let hi = (fold + 1) * n / config.folds;
        let val_idx = &order[lo..hi];
        let train_idx: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();

        let train_x = x.gather_rows(&train_idx);
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let val_x = x.gather_rows(val_idx);
        let val_labels: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();

        // Gram matrices once per fold; each grid point only re-solves.
        let problem = EszslProblem::new(&train_x, &train_labels, signatures)?;
        let mut point = 0;
        for &gamma in &config.gammas {
            for &lambda in &config.lambdas {
                let model = problem.solve(gamma, lambda)?;
                let engine = ScoringEngine::new(model, signatures.clone(), config.similarity);
                let pred = engine.predict(&val_x);
                let acc = mean_per_class_accuracy(&pred, &val_labels, z);
                fold_accuracies[point].push(acc);
                point += 1;
            }
        }
    }

    Ok(assemble_cross_val_report(config, fold_accuracies))
}

/// Shared [`cross_validate`] / [`cross_validate_stream`] configuration
/// checks.
fn validate_cv_shape(config: &CrossValConfig, n: usize) -> Result<(), EvalError> {
    if config.folds < 2 {
        return Err(EvalError::InvalidConfig(format!(
            "need at least 2 folds, got {}",
            config.folds
        )));
    }
    if n < config.folds {
        return Err(EvalError::InvalidConfig(format!(
            "{n} samples cannot be split into {} folds",
            config.folds
        )));
    }
    if config.gammas.is_empty() || config.lambdas.is_empty() {
        return Err(EvalError::InvalidConfig(
            "gamma and lambda grids must be non-empty".into(),
        ));
    }
    Ok(())
}

/// Assemble the grid + winner from per-point fold accuracies. One code path
/// for the in-memory and streamed sweeps keeps their reports bit-identical
/// (same summation order, same tie-break).
fn assemble_cross_val_report(
    config: &CrossValConfig,
    mut fold_accuracies: Vec<Vec<f64>>,
) -> CrossValReport {
    let mut grid = Vec::with_capacity(fold_accuracies.len());
    let mut point = 0;
    for &gamma in &config.gammas {
        for &lambda in &config.lambdas {
            let folds = std::mem::take(&mut fold_accuracies[point]);
            let mean_accuracy = folds.iter().sum::<f64>() / folds.len() as f64;
            grid.push(GridPoint {
                gamma,
                lambda,
                mean_accuracy,
                fold_accuracies: folds,
            });
            point += 1;
        }
    }
    let best = grid
        .iter()
        .reduce(|best, candidate| {
            // Strictly-greater keeps the earliest grid point on ties, making
            // selection deterministic and independent of float noise order.
            if candidate
                .mean_accuracy
                .total_cmp(&best.mean_accuracy)
                .is_gt()
            {
                candidate
            } else {
                best
            }
        })
        .expect("grid is non-empty")
        .clone();
    CrossValReport {
        best,
        grid,
        folds: config.folds,
    }
}

/// The full experiment protocol: cross-validate `(γ, λ)` on the trainval
/// split, retrain on all of it with the winner, and evaluate GZSL.
///
/// This is the path the `eval_dataset` example drives, and the one the
/// round-trip acceptance test pins: the same `ds` always yields the same
/// `(CrossValReport, GzslReport)` pair for a fixed config.
pub fn select_train_evaluate(
    ds: &Dataset,
    config: &CrossValConfig,
) -> Result<(CrossValReport, GzslReport), EvalError> {
    let cv = cross_validate(&ds.train_x, &ds.train_labels, &ds.seen_signatures, config)?;
    let model = EszslConfig::new()
        .gamma(cv.best.gamma)
        .lambda(cv.best.lambda)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)?;
    let report = evaluate_gzsl(&model, ds, config.similarity);
    Ok((cv, report))
}

/// Out-of-core [`evaluate_gzsl`]: run the generalized protocol over a
/// [`StreamingBundle`], scoring both test splits chunk-at-a-time against the
/// union signature bank.
///
/// Predictions are row-local and accuracy counting is integral, so the
/// resulting [`GzslReport`] is **bit-identical** to materializing the bundle
/// with [`crate::data::DatasetBundle::to_dataset`] and calling
/// [`evaluate_gzsl`] — for every chunk size. Peak feature memory is one
/// chunk.
pub fn evaluate_gzsl_stream(
    model: &ProjectionModel,
    bundle: &StreamingBundle,
    similarity: Similarity,
) -> Result<GzslReport, EvalError> {
    let num_seen = bundle.num_seen_classes();
    let num_unseen = bundle.num_unseen_classes();
    let total = num_seen + num_unseen;
    let engine = ScoringEngine::new(model.clone(), bundle.union_signatures(), similarity);

    let mut counter = ClassAccuracyCounter::new(total);
    for chunk in bundle.stream_test_seen()? {
        let (x, labels) = chunk?;
        counter.observe(&engine.predict(&x), &labels);
    }
    for chunk in bundle.stream_test_unseen()? {
        let (x, labels) = chunk?;
        // Unseen truth indexes the union bank after the seen block.
        let truth: Vec<usize> = labels.iter().map(|&l| l + num_seen).collect();
        counter.observe(&engine.predict(&x), &truth);
    }

    let per_class = counter.per_class();
    let per_class_seen = per_class[..num_seen].to_vec();
    let per_class_unseen = per_class[num_seen..].to_vec();
    let seen_accuracy = mean_defined(&per_class_seen);
    let unseen_accuracy = mean_defined(&per_class_unseen);
    Ok(GzslReport {
        seen_accuracy,
        unseen_accuracy,
        harmonic_mean: harmonic_mean(seen_accuracy, unseen_accuracy),
        per_class_seen,
        per_class_unseen,
    })
}

/// Out-of-core [`cross_validate`] over a [`StreamingBundle`]'s trainval
/// split: the same seeded shuffle, fold geometry, grid sweep, and scoring —
/// but each fold's Gram matrices are folded from streamed chunks
/// ([`EszslProblem::from_stream`]) and each fold's validation rows are
/// streamed once past *all* grid-point engines, so no fold ever exists as a
/// matrix in memory.
///
/// The report is **bit-identical** to running [`cross_validate`] on the
/// materialized trainval split. Shuffled folds need random row access, which
/// only the binary format offers: a CSV bundle is a typed
/// [`EvalError::InvalidConfig`] suggesting re-export as `.zsb`.
pub fn cross_validate_stream(
    bundle: &StreamingBundle,
    config: &CrossValConfig,
) -> Result<CrossValReport, EvalError> {
    if bundle.format() == FeatureFormat::Csv {
        return Err(EvalError::InvalidConfig(
            "cross-validation over a streamed CSV bundle needs random row access for \
             shuffled folds; re-export the bundle as features.zsb"
                .into(),
        ));
    }
    let n = bundle.manifest().trainval.len();
    validate_cv_shape(config, n)?;

    let signatures = bundle.seen_signatures();
    let mut order: Vec<usize> = (0..n).collect();
    Rng::new(config.seed).shuffle(&mut order);

    let num_points = config.gammas.len() * config.lambdas.len();
    let mut fold_accuracies = vec![Vec::with_capacity(config.folds); num_points];

    for fold in 0..config.folds {
        // Contiguous slice of the shuffled order; balanced to within one
        // sample — identical geometry to the in-memory sweep.
        let lo = fold * n / config.folds;
        let hi = (fold + 1) * n / config.folds;
        let val_idx = &order[lo..hi];
        let train_idx: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();

        // Gram matrices once per fold, folded from streamed chunks.
        let train_stream = bundle
            .stream_trainval_subset(&train_idx)?
            .map(|r| r.map_err(EvalError::from));
        let problem = EszslProblem::from_stream(train_stream, &signatures)?;

        // Solve every grid point up front (each model is only d x a), then
        // stream the fold's validation rows ONCE past all engines.
        let mut engines = Vec::with_capacity(num_points);
        let mut counters = Vec::with_capacity(num_points);
        for &gamma in &config.gammas {
            for &lambda in &config.lambdas {
                let model = problem.solve(gamma, lambda)?;
                engines.push(ScoringEngine::new(
                    model,
                    signatures.clone(),
                    config.similarity,
                ));
                counters.push(ClassAccuracyCounter::new(signatures.rows()));
            }
        }
        for chunk in bundle.stream_trainval_subset(val_idx)? {
            let (x, labels) = chunk?;
            for (engine, counter) in engines.iter().zip(&mut counters) {
                counter.observe(&engine.predict(&x), &labels);
            }
        }
        for (point, counter) in counters.iter().enumerate() {
            fold_accuracies[point].push(counter.mean());
        }
    }

    Ok(assemble_cross_val_report(config, fold_accuracies))
}

/// Out-of-core [`select_train_evaluate`]: cross-validate `(γ, λ)` on the
/// streamed trainval split, retrain on all of it with the winner (again
/// streamed), and evaluate GZSL chunk-at-a-time.
///
/// Both returned reports are **bit-identical** to the in-memory protocol on
/// the materialized bundle; peak feature memory across the whole experiment
/// is `O(chunk_rows x feature_dim)`.
pub fn select_train_evaluate_stream(
    bundle: &StreamingBundle,
    config: &CrossValConfig,
) -> Result<(CrossValReport, GzslReport), EvalError> {
    let cv = cross_validate_stream(bundle, config)?;
    let signatures = bundle.seen_signatures();
    let train_stream = bundle
        .stream_trainval()?
        .map(|r| r.map_err(EvalError::from));
    let model: ProjectionModel = EszslConfig::new()
        .gamma(cv.best.gamma)
        .lambda(cv.best.lambda)
        .build()
        .train_stream(train_stream, &signatures)?;
    let report = evaluate_gzsl_stream(&model, bundle, config.similarity)?;
    Ok((cv, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;

    fn trained_dataset() -> (ProjectionModel, Dataset) {
        let ds = SyntheticConfig::new().seed(99).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        (model, ds)
    }

    #[test]
    fn gzsl_report_matches_hand_rolled_protocol() {
        let (model, ds) = trained_dataset();
        let report = evaluate_gzsl(&model, &ds, Similarity::Cosine);
        assert!(report.harmonic_mean >= 0.9, "hm {}", report.harmonic_mean);
        assert_eq!(report.per_class_seen.len(), ds.seen_signatures.rows());
        assert_eq!(report.per_class_unseen.len(), ds.unseen_signatures.rows());
        assert!(report.per_class_seen.iter().all(|a| a.is_some()));
        // The report must equal the manual union-bank computation.
        let engine = ScoringEngine::new(model.clone(), ds.all_signatures(), Similarity::Cosine);
        let num_seen = ds.seen_signatures.rows();
        let total = ds.num_classes();
        let seen_pred = engine.predict(&ds.test_seen_x);
        let manual_seen =
            mean_defined(&per_class_accuracy(&seen_pred, &ds.test_seen_labels, total)[..num_seen]);
        assert_eq!(report.seen_accuracy, manual_seen);
        assert_eq!(
            report.harmonic_mean,
            harmonic_mean(report.seen_accuracy, report.unseen_accuracy)
        );
    }

    #[test]
    fn gzsl_handles_empty_test_splits_without_panicking() {
        let ds = SyntheticConfig::new().classes(20, 5).samples(10, 0).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        let report = evaluate_gzsl(&model, &ds, Similarity::Cosine);
        assert_eq!(report.seen_accuracy, 0.0);
        assert_eq!(report.unseen_accuracy, 0.0);
        assert_eq!(report.harmonic_mean, 0.0);
        assert!(report.per_class_seen.iter().all(|a| a.is_none()));
    }

    #[test]
    fn cross_validation_is_deterministic_for_a_fixed_seed() {
        let ds = SyntheticConfig::new()
            .classes(10, 2)
            .dims(6, 8)
            .samples(8, 2)
            .build();
        let config = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![0.1, 1.0])
            .folds(3)
            .seed(404);
        let a = cross_validate(&ds.train_x, &ds.train_labels, &ds.seen_signatures, &config)
            .expect("cv");
        let b = cross_validate(&ds.train_x, &ds.train_labels, &ds.seen_signatures, &config)
            .expect("cv");
        assert_eq!(a, b, "same seed must reproduce the full report");
        assert_eq!(a.grid.len(), 4);
        assert!(a.grid.iter().all(|p| p.fold_accuracies.len() == 3));
        // A different shuffle may (and here does) change fold accuracies.
        let shifted = cross_validate(
            &ds.train_x,
            &ds.train_labels,
            &ds.seen_signatures,
            &config.clone().seed(405),
        )
        .expect("cv");
        assert_eq!(shifted.grid.len(), a.grid.len());
    }

    #[test]
    fn cross_validation_rejects_bad_configs() {
        let ds = SyntheticConfig::new().classes(5, 1).samples(2, 1).build();
        let base = CrossValConfig::new().gammas(vec![1.0]).lambdas(vec![1.0]);
        assert!(matches!(
            cross_validate(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
                &base.clone().folds(1)
            ),
            Err(EvalError::InvalidConfig(_))
        ));
        assert!(matches!(
            cross_validate(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
                &base.clone().folds(99)
            ),
            Err(EvalError::InvalidConfig(_))
        ));
        assert!(matches!(
            cross_validate(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
                &base.clone().gammas(vec![])
            ),
            Err(EvalError::InvalidConfig(_))
        ));
        assert!(matches!(
            cross_validate(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
                &base.gammas(vec![-1.0])
            ),
            Err(EvalError::Train(TrainError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn grid_search_prefers_points_that_score_better() {
        // On clean synthetic data, moderate regularization should beat an
        // absurdly large γ; the sweep must reflect that in its best pick.
        let ds = SyntheticConfig::new().seed(123).build();
        let config = CrossValConfig::new()
            .gammas(vec![1.0, 1e6])
            .lambdas(vec![1.0])
            .folds(3)
            .seed(7);
        let report = cross_validate(&ds.train_x, &ds.train_labels, &ds.seen_signatures, &config)
            .expect("cv");
        assert_eq!(report.best.gamma, 1.0, "grid: {:?}", report.grid);
        assert!(report.best.mean_accuracy > 0.9);
    }

    #[test]
    fn select_train_evaluate_runs_end_to_end() {
        let ds = SyntheticConfig::new().seed(55).build();
        let config = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![0.1, 1.0])
            .folds(3);
        let (cv, report) = select_train_evaluate(&ds, &config).expect("experiment");
        assert!(cv.best.mean_accuracy > 0.9);
        assert!(report.harmonic_mean > 0.9);
    }
}
