//! Typed errors for the on-disk dataset subsystem.
//!
//! Every failure in the loader path — I/O, malformed headers, truncated
//! files, bad manifests — is reported through [`DataError`] rather than a
//! panic, so servers ingesting untrusted feature dumps can reject bad bundles
//! gracefully.

use std::path::PathBuf;

/// Error from reading, writing, or validating an on-disk dataset bundle.
#[derive(Debug)]
pub enum DataError {
    /// An underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A binary file ended before the bytes its header promised.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Bytes the header (or format minimum) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A header field is invalid or inconsistent with the file contents
    /// (bad magic, unsupported version, zero dims, class-count mismatch,
    /// trailing bytes).
    Header {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A text file (CSV or split manifest) failed to parse.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A class label was referenced that the signature table does not define.
    UnknownClass {
        /// The undefined raw class label.
        label: u32,
        /// Where the reference came from (e.g. `features.zsb`, `splits.txt`).
        context: String,
    },
    /// The signature table defined the same class label twice.
    DuplicateClass {
        /// The repeated raw class label.
        label: u32,
    },
    /// A required split has no sample indices.
    EmptySplit {
        /// Which split (`trainval`, `test_seen`, `test_unseen`).
        split: String,
    },
    /// The split manifest is structurally invalid: out-of-range or duplicate
    /// sample indices, seen/unseen class overlap, or a declared unseen-class
    /// set that disagrees with the test-unseen samples.
    Split {
        /// Manifest file the bad section came from, when the error was
        /// raised against an on-disk manifest (in-memory validation has no
        /// file to point at).
        path: Option<PathBuf>,
        /// 1-based line of the offending manifest section, when known.
        line: Option<usize>,
        /// What was wrong.
        message: String,
    },
    /// Matrices or label lists across the bundle's files disagree in shape.
    Shape {
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            DataError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} is truncated: need {expected} bytes, found {actual}",
                path.display()
            ),
            DataError::Header { path, message } => {
                write!(f, "bad header in {}: {message}", path.display())
            }
            DataError::Parse {
                path,
                line,
                message,
            } => write!(f, "parse error at {}:{line}: {message}", path.display()),
            DataError::UnknownClass { label, context } => {
                write!(f, "unknown class label {label} referenced by {context}")
            }
            DataError::DuplicateClass { label } => {
                write!(f, "class label {label} defined more than once")
            }
            DataError::EmptySplit { split } => {
                write!(f, "split '{split}' has no sample indices")
            }
            DataError::Split {
                path,
                line,
                message,
            } => {
                write!(f, "invalid split manifest")?;
                if let Some(path) = path {
                    write!(f, " at {}", path.display())?;
                    if let Some(line) = line {
                        write!(f, ":{line}")?;
                    }
                }
                write!(f, ": {message}")
            }
            DataError::Shape { message } => write!(f, "shape mismatch: {message}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl DataError {
    /// Wrap an I/O error with the path it occurred on.
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        DataError::Io {
            path: path.into(),
            source,
        }
    }

    /// Build a [`DataError::Header`] for `path`.
    pub(crate) fn header(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        DataError::Header {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Build a [`DataError::Parse`] for `path` at 1-based `line`.
    pub(crate) fn parse(path: impl Into<PathBuf>, line: usize, message: impl Into<String>) -> Self {
        DataError::Parse {
            path: path.into(),
            line,
            message: message.into(),
        }
    }

    /// Build a location-less [`DataError::Split`] (in-memory validation).
    pub(crate) fn split(message: impl Into<String>) -> Self {
        DataError::Split {
            path: None,
            line: None,
            message: message.into(),
        }
    }

    /// Build a [`DataError::Split`] pinned to a manifest file and the
    /// 1-based line of the offending section.
    pub(crate) fn split_at(
        path: impl Into<PathBuf>,
        line: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        DataError::Split {
            path: Some(path.into()),
            line,
            message: message.into(),
        }
    }
}
