//! On-disk serialization formats for dataset bundles.
//!
//! Three artifacts make up a bundle directory (loaded together by
//! [`crate::data::DatasetBundle`]):
//!
//! 1. **Feature table** — samples with raw class labels, in one of two
//!    interchangeable formats that round-trip bit-identically:
//!    - `features.zsb`: a compact little-endian binary dump with a fixed
//!      32-byte header (see [`ZSB_MAGIC`] and [`read_zsb`] for the layout);
//!    - `features.csv`: one line per sample, `label,f0,f1,...`, floats
//!      printed with Rust's shortest round-trip formatting.
//! 2. **Signature table** — `signatures.csv`, one line per class,
//!    `label,a0,a1,...`. Line order defines the dense class-id order used
//!    everywhere downstream.
//! 3. **Split manifest** — `splits.txt`, a [`SplitManifest`] assigning sample
//!    indices to the trainval / test-seen / test-unseen splits (the same
//!    structure as the `att_splits.mat` `*_loc` arrays in the reference ESZSL
//!    code), plus an optional declared unseen-class set.
//!
//! All readers return typed [`DataError`]s — truncated files, bad magic,
//! dimension mismatches, and malformed manifests never panic.

use super::error::DataError;
use crate::fsutil;
use crate::linalg::Matrix;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every `.zsb` feature dump.
pub const ZSB_MAGIC: [u8; 4] = *b"ZSBF";
/// Current `.zsb` format version.
pub const ZSB_VERSION: u16 = 1;
/// Fixed `.zsb` header length in bytes.
pub const ZSB_HEADER_LEN: u64 = 32;

/// A parsed feature table: per-sample raw class labels plus the feature
/// matrix, exactly as stored on disk (labels not yet remapped to dense ids).
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureTable {
    /// Raw class label per sample, `len == features.rows()`.
    pub labels: Vec<u32>,
    /// Feature matrix, `n_samples x feature_dim`.
    pub features: Matrix,
}

impl FeatureTable {
    /// Number of distinct raw labels (the `class_count` header field).
    pub fn distinct_classes(&self) -> usize {
        let mut sorted = self.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

/// Write a feature table as a `.zsb` binary dump.
///
/// Layout (all integers little-endian):
///
/// | offset | size | field |
/// |-------:|-----:|-------|
/// | 0      | 4    | magic `"ZSBF"` |
/// | 4      | 2    | version (= 1) |
/// | 6      | 2    | flags (= 0) |
/// | 8      | 8    | `n_samples` (u64) |
/// | 16     | 4    | `feature_dim` (u32) |
/// | 20     | 4    | `class_count` (u32, distinct labels) |
/// | 24     | 8    | reserved (= 0) |
/// | 32     | 4·n  | labels, one u32 per sample |
/// | 32+4n  | 8·n·d | features, row-major f64 |
pub fn write_zsb(path: &Path, table: &FeatureTable) -> Result<(), DataError> {
    validate_table_shape(path, table)?;
    // The streaming ZsbWriter is the one real encoder; this in-memory path
    // just feeds it the whole matrix at once, so the two cannot drift.
    let mut writer = ZsbWriter::create(path, &table.labels, table.features.cols())?;
    writer.append_rows(&table.features)?;
    writer.finish()
}

/// Incremental `.zsb` writer: header and labels up front, feature rows
/// appended chunk-at-a-time, finished with an fsync + atomic rename.
///
/// This is the bounded-memory counterpart of [`write_zsb`] (which is now a
/// thin wrapper over it): converters streaming a multi-GB feature matrix
/// out of a foreign container never hold more than one chunk of rows while
/// producing a byte-identical file. Until [`ZsbWriter::finish`] succeeds,
/// the target path is untouched — bytes accumulate in a uniquely named temp
/// sibling that is removed on failure or drop.
pub struct ZsbWriter {
    target: PathBuf,
    tmp: PathBuf,
    file: Option<std::io::BufWriter<std::fs::File>>,
    expected_rows: usize,
    feature_dim: usize,
    rows_written: usize,
    committed: bool,
}

impl ZsbWriter {
    /// Start a `.zsb` file for `labels.len()` samples of `feature_dim`
    /// features: writes the 32-byte header and the full label block to a
    /// temp sibling of `path`. Shape rules match [`write_zsb`]: no empty
    /// tables.
    pub fn create(path: &Path, labels: &[u32], feature_dim: usize) -> Result<Self, DataError> {
        if labels.is_empty() || feature_dim == 0 {
            return Err(DataError::Shape {
                message: format!(
                    "{}: refusing to write an empty feature table",
                    path.display()
                ),
            });
        }
        let n = labels.len();
        let mut distinct = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();

        let tmp = fsutil::unique_temp_sibling(path);
        let mut head = Vec::with_capacity(ZSB_HEADER_LEN as usize + 4 * n);
        head.extend_from_slice(&ZSB_MAGIC);
        head.extend_from_slice(&ZSB_VERSION.to_le_bytes());
        head.extend_from_slice(&0u16.to_le_bytes()); // flags
        head.extend_from_slice(&(n as u64).to_le_bytes());
        head.extend_from_slice(&(feature_dim as u32).to_le_bytes());
        head.extend_from_slice(&(distinct.len() as u32).to_le_bytes());
        head.extend_from_slice(&0u64.to_le_bytes()); // reserved
        for &label in labels {
            head.extend_from_slice(&label.to_le_bytes());
        }
        let write_head = (|| {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            file.write_all(&head)?;
            Ok(file)
        })();
        let file = match write_head {
            Ok(file) => file,
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                return Err(DataError::io(&tmp, e));
            }
        };
        Ok(ZsbWriter {
            target: path.into(),
            tmp,
            file: Some(file),
            expected_rows: n,
            feature_dim,
            rows_written: 0,
            committed: false,
        })
    }

    /// Append a chunk of feature rows (row-major, `feature_dim` columns).
    pub fn append_rows(&mut self, rows: &Matrix) -> Result<(), DataError> {
        if rows.cols() != self.feature_dim {
            return Err(DataError::Shape {
                message: format!(
                    "{}: chunk has {} columns, table has feature_dim {}",
                    self.target.display(),
                    rows.cols(),
                    self.feature_dim
                ),
            });
        }
        if self.rows_written + rows.rows() > self.expected_rows {
            return Err(DataError::Shape {
                message: format!(
                    "{}: {} rows appended but header promises {}",
                    self.target.display(),
                    self.rows_written + rows.rows(),
                    self.expected_rows
                ),
            });
        }
        let file = self.file.as_mut().expect("writer not finished");
        let mut buf = Vec::with_capacity(rows.as_slice().len() * 8);
        for &v in rows.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&buf)
            .map_err(|e| DataError::io(&self.tmp, e))?;
        self.rows_written += rows.rows();
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Validate the row count, fsync, and atomically rename the temp file
    /// over the target.
    pub fn finish(mut self) -> Result<(), DataError> {
        if self.rows_written != self.expected_rows {
            return Err(DataError::Shape {
                message: format!(
                    "{}: finished after {} rows but header promises {}",
                    self.target.display(),
                    self.rows_written,
                    self.expected_rows
                ),
            });
        }
        let file = self.file.take().expect("writer not finished");
        let synced = (|| {
            let file = file.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()
        })();
        if let Err(e) = synced {
            return Err(DataError::io(&self.tmp, e));
        }
        fsutil::commit_temp(&self.tmp, &self.target)
            .map_err(|e| DataError::io(e.path, e.source))?;
        self.committed = true;
        Ok(())
    }
}

impl Drop for ZsbWriter {
    fn drop(&mut self) {
        if !self.committed {
            self.file.take();
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

/// A validated `.zsb` header: magic, version, flags, and reserved bytes have
/// been checked, dimensions are non-zero, but lengths are *not* yet compared
/// against the file (callers hold that information).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ZsbHeader {
    /// Number of sample rows the header promises.
    pub n_samples: u64,
    /// Feature columns per row.
    pub feature_dim: u64,
    /// Distinct raw labels the header claims.
    pub class_count: u32,
}

/// Parse and validate the fixed 32-byte `.zsb` header (shared by the
/// in-memory [`read_zsb`] wrapper and the streaming
/// [`crate::data::stream::ZsbChunkReader`], so both reject exactly the same
/// corruptions with the same messages).
pub(crate) fn parse_zsb_header(path: &Path, bytes: &[u8; 32]) -> Result<ZsbHeader, DataError> {
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != ZSB_MAGIC {
        return Err(DataError::header(
            path,
            format!("bad magic {magic:?}, expected {ZSB_MAGIC:?} (\"ZSBF\")"),
        ));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != ZSB_VERSION {
        return Err(DataError::header(
            path,
            format!("unsupported version {version}, this reader handles {ZSB_VERSION}"),
        ));
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags != 0 {
        return Err(DataError::header(
            path,
            format!("unknown flags 0x{flags:04x}, version {ZSB_VERSION} defines none"),
        ));
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let d = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as u64;
    let class_count = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let reserved = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    if reserved != 0 {
        return Err(DataError::header(
            path,
            "reserved header bytes are non-zero",
        ));
    }
    if n == 0 || d == 0 || class_count == 0 {
        return Err(DataError::header(
            path,
            format!("zero-sized table: n_samples={n}, feature_dim={d}, class_count={class_count}"),
        ));
    }
    Ok(ZsbHeader {
        n_samples: n,
        feature_dim: d,
        class_count,
    })
}

/// Validate a header's dimensions against the platform and compute the exact
/// file length it promises.
///
/// Header fields are attacker-controlled: checked arithmetic keeps a crafted
/// `n_samples`/`feature_dim` pair from wrapping the expected size back into
/// range and panicking on allocation instead of returning an error; the
/// explicit `usize` conversions additionally reject tables whose cell count
/// cannot be addressed on this platform (a real hazard on 32-bit targets).
///
/// Returns `(n_samples, feature_dim, expected_file_len)`.
pub(crate) fn zsb_validate_dims(
    path: &Path,
    n: u64,
    d: u64,
) -> Result<(usize, usize, u64), DataError> {
    let expected = 4u64
        .checked_mul(n)
        .and_then(|labels| 8u64.checked_mul(n)?.checked_mul(d)?.checked_add(labels))
        .and_then(|payload| payload.checked_add(ZSB_HEADER_LEN));
    let Some(expected) = expected else {
        return Err(DataError::header(
            path,
            format!("header dims overflow: n_samples={n} x feature_dim={d}"),
        ));
    };
    // Both the cell count and the feature byte count (8·n·d — the largest
    // buffer any reader sizes; the 4·n label block is strictly smaller for
    // d ≥ 1) must be addressable, or chunk-size arithmetic could wrap on
    // 32-bit targets.
    let cells = usize::try_from(n)
        .ok()
        .zip(usize::try_from(d).ok())
        .and_then(|(n, d)| n.checked_mul(d)?.checked_mul(8).map(|_| (n, d)));
    let Some((n, d)) = cells else {
        return Err(DataError::header(
            path,
            format!("header dims overflow usize on this platform: n_samples={n} x feature_dim={d}"),
        ));
    };
    Ok((n, d, expected))
}

/// Read a `.zsb` feature dump written by [`write_zsb`].
///
/// Validates the magic, version, flags, non-zero dims, exact file length
/// (both truncation and trailing garbage are errors), the header
/// `class_count` against the labels actually present, and that every feature
/// value is finite.
///
/// This is a thin wrapper over the chunked
/// [`crate::data::stream::ZsbChunkReader`]: the streaming reader is the one
/// real decoder, and this path simply concatenates its chunks, so the two can
/// never drift apart.
pub fn read_zsb(path: &Path) -> Result<FeatureTable, DataError> {
    let mut reader = super::stream::ZsbChunkReader::open(path, usize::MAX)?;
    let (n, d) = (reader.num_samples(), reader.feature_dim());
    let mut data = Vec::with_capacity(n * d);
    for chunk in &mut reader {
        data.extend_from_slice(chunk?.features.as_slice());
    }
    Ok(FeatureTable {
        labels: reader.labels().to_vec(),
        features: Matrix::from_vec(n, d, data),
    })
}

/// Write a feature table as CSV, one `label,f0,f1,...` line per sample.
/// Floats use Rust's shortest round-trip formatting, so
/// [`read_features_csv`] recovers bit-identical values.
pub fn write_features_csv(path: &Path, table: &FeatureTable) -> Result<(), DataError> {
    validate_table_shape(path, table)?;
    let mut out = Vec::new();
    for (i, &label) in table.labels.iter().enumerate() {
        write_csv_row(&mut out, label, table.features.row(i));
    }
    fsutil::write_atomic(path, &out).map_err(|e| DataError::io(e.path, e.source))
}

/// Read a CSV feature table written by [`write_features_csv`].
///
/// Thin wrapper over the chunked [`crate::data::stream::CsvChunkReader`]
/// (mirroring [`read_zsb`]): the streaming parser is the one real decoder.
pub fn read_features_csv(path: &Path) -> Result<FeatureTable, DataError> {
    let mut labels = Vec::new();
    let mut data = Vec::new();
    let mut cols = 0;
    for chunk in super::stream::CsvChunkReader::open(path, usize::MAX)? {
        let chunk = chunk?;
        cols = chunk.features.cols();
        labels.extend_from_slice(&chunk.labels);
        data.extend_from_slice(chunk.features.as_slice());
    }
    let rows = labels.len();
    Ok(FeatureTable {
        labels,
        features: Matrix::from_vec(rows, cols, data),
    })
}

/// Write the signature table: one `label,a0,a1,...` line per class, in dense
/// class-id order.
pub fn write_signatures_csv(
    path: &Path,
    class_labels: &[u32],
    signatures: &Matrix,
) -> Result<(), DataError> {
    if class_labels.len() != signatures.rows() {
        return Err(DataError::Shape {
            message: format!(
                "{} class labels but {} signature rows",
                class_labels.len(),
                signatures.rows()
            ),
        });
    }
    let mut out = Vec::new();
    for (i, &label) in class_labels.iter().enumerate() {
        write_csv_row(&mut out, label, signatures.row(i));
    }
    fsutil::write_atomic(path, &out).map_err(|e| DataError::io(e.path, e.source))
}

/// Read the signature table. Line order defines dense class-id order;
/// duplicate labels are a [`DataError::DuplicateClass`].
pub fn read_signatures_csv(path: &Path) -> Result<(Vec<u32>, Matrix), DataError> {
    let (labels, signatures) = read_labeled_csv(path)?;
    if signatures.rows() == 0 {
        return Err(DataError::parse(path, 1, "signature table has no rows"));
    }
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
        return Err(DataError::DuplicateClass { label: dup[0] });
    }
    Ok((labels, signatures))
}

/// Sample-index assignment of every split, mirroring the `trainval_loc` /
/// `test_seen_loc` / `test_unseen_loc` arrays of the reference `att_splits`
/// format (0-based here).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SplitManifest {
    /// Sample indices trained on (seen classes).
    pub trainval: Vec<usize>,
    /// Held-out sample indices from seen classes.
    pub test_seen: Vec<usize>,
    /// Sample indices from unseen classes (never trained on).
    pub test_unseen: Vec<usize>,
    /// Optionally declared raw labels of the unseen classes; when present the
    /// loader checks each exists in the signature table and that the set
    /// matches the classes actually observed in `test_unseen`.
    pub unseen_classes: Option<Vec<u32>>,
}

/// 1-based line numbers of each section in a parsed `splits.txt`, recorded
/// by [`SplitManifest::read_located`] so validation failures can point at
/// the offending line, not just the file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SectionLines {
    /// Line of the `trainval:` section.
    pub trainval: Option<usize>,
    /// Line of the `test_seen:` section.
    pub test_seen: Option<usize>,
    /// Line of the `test_unseen:` section.
    pub test_unseen: Option<usize>,
    /// Line of the optional `unseen_classes:` section.
    pub unseen_classes: Option<usize>,
}

impl SectionLines {
    /// Line of the named section, if it was present.
    pub fn section(&self, name: &str) -> Option<usize> {
        match name {
            "trainval" => self.trainval,
            "test_seen" => self.test_seen,
            "test_unseen" => self.test_unseen,
            "unseen_classes" => self.unseen_classes,
            _ => None,
        }
    }
}

impl SplitManifest {
    /// Check internal consistency against a feature table of `num_samples`
    /// rows: every split non-empty, every index in range, and no index
    /// assigned to two splits.
    pub fn validate(&self, num_samples: usize) -> Result<(), DataError> {
        self.validate_inner(num_samples, None)
    }

    /// [`SplitManifest::validate`] for a manifest parsed from disk: any
    /// failure carries the manifest path and the 1-based line of the section
    /// the offending index came from.
    pub fn validate_located(
        &self,
        num_samples: usize,
        path: &Path,
        lines: &SectionLines,
    ) -> Result<(), DataError> {
        self.validate_inner(num_samples, Some((path, lines)))
    }

    fn validate_inner(
        &self,
        num_samples: usize,
        locate: Option<(&Path, &SectionLines)>,
    ) -> Result<(), DataError> {
        let split_err = |name: &str, message: String| match locate {
            Some((path, lines)) => DataError::split_at(path, lines.section(name), message),
            None => DataError::split(message),
        };
        for (name, indices) in self.sections() {
            if indices.is_empty() {
                return Err(DataError::EmptySplit { split: name.into() });
            }
        }
        let mut assigned = vec![false; num_samples];
        for (name, indices) in self.sections() {
            for &i in indices {
                if i >= num_samples {
                    return Err(split_err(
                        name,
                        format!("{name} index {i} out of range for {num_samples} samples"),
                    ));
                }
                if assigned[i] {
                    return Err(split_err(
                        name,
                        format!("sample index {i} assigned to more than one split"),
                    ));
                }
                assigned[i] = true;
            }
        }
        Ok(())
    }

    /// The three index sections with their manifest names.
    fn sections(&self) -> [(&'static str, &Vec<usize>); 3] {
        [
            ("trainval", &self.trainval),
            ("test_seen", &self.test_seen),
            ("test_unseen", &self.test_unseen),
        ]
    }

    /// Write the manifest as `splits.txt`:
    ///
    /// ```text
    /// # zsl split manifest v1
    /// trainval: 0 1 2
    /// test_seen: 3 4
    /// test_unseen: 5 6
    /// unseen_classes: 7 8
    /// ```
    pub fn write(&self, path: &Path) -> Result<(), DataError> {
        let mut out = Vec::new();
        writeln!(out, "# zsl split manifest v1").expect("vec write");
        for (name, indices) in self.sections() {
            write!(out, "{name}:").expect("vec write");
            for i in indices {
                write!(out, " {i}").expect("vec write");
            }
            writeln!(out).expect("vec write");
        }
        if let Some(classes) = &self.unseen_classes {
            write!(out, "unseen_classes:").expect("vec write");
            for c in classes {
                write!(out, " {c}").expect("vec write");
            }
            writeln!(out).expect("vec write");
        }
        fsutil::write_atomic(path, &out).map_err(|e| DataError::io(e.path, e.source))
    }

    /// Parse a manifest written by [`SplitManifest::write`]. Blank lines and
    /// `#` comments are ignored; unknown or repeated section names, and
    /// non-numeric indices, are [`DataError::Parse`]; a missing or empty
    /// section is a [`DataError::EmptySplit`].
    pub fn read(path: &Path) -> Result<Self, DataError> {
        Ok(Self::read_located(path)?.0)
    }

    /// [`SplitManifest::read`] plus the 1-based line number each section was
    /// declared on, for validation errors that point at the offending line.
    pub fn read_located(path: &Path) -> Result<(Self, SectionLines), DataError> {
        let text = std::fs::read_to_string(path).map_err(|e| DataError::io(path, e))?;
        let mut trainval = None;
        let mut test_seen = None;
        let mut test_unseen = None;
        let mut unseen_classes = None;
        let mut lines = SectionLines::default();
        for (line_no, raw_line) in text.lines().enumerate() {
            let line_no = line_no + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, rest) = line.split_once(':').ok_or_else(|| {
                DataError::parse(path, line_no, "expected '<section>: <indices...>'")
            })?;
            let (slot, slot_line): (&mut Option<Vec<usize>>, &mut Option<usize>) = match name.trim()
            {
                "trainval" => (&mut trainval, &mut lines.trainval),
                "test_seen" => (&mut test_seen, &mut lines.test_seen),
                "test_unseen" => (&mut test_unseen, &mut lines.test_unseen),
                "unseen_classes" => {
                    if unseen_classes.is_some() {
                        return Err(DataError::parse(
                            path,
                            line_no,
                            "section 'unseen_classes' repeated",
                        ));
                    }
                    let parsed: Result<Vec<u32>, _> = rest
                        .split_whitespace()
                        .map(|tok| {
                            tok.parse::<u32>().map_err(|_| {
                                DataError::parse(path, line_no, format!("bad class label '{tok}'"))
                            })
                        })
                        .collect();
                    unseen_classes = Some(parsed?);
                    lines.unseen_classes = Some(line_no);
                    continue;
                }
                other => {
                    return Err(DataError::parse(
                        path,
                        line_no,
                        format!("unknown section '{other}'"),
                    ));
                }
            };
            if slot.is_some() {
                return Err(DataError::parse(
                    path,
                    line_no,
                    format!("section '{}' repeated", name.trim()),
                ));
            }
            let parsed: Result<Vec<usize>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<usize>().map_err(|_| {
                        DataError::parse(path, line_no, format!("bad sample index '{tok}'"))
                    })
                })
                .collect();
            *slot = Some(parsed?);
            *slot_line = Some(line_no);
        }
        let require = |slot: Option<Vec<usize>>, name: &str| {
            slot.ok_or_else(|| DataError::EmptySplit { split: name.into() })
        };
        Ok((
            SplitManifest {
                trainval: require(trainval, "trainval")?,
                test_seen: require(test_seen, "test_seen")?,
                test_unseen: require(test_unseen, "test_unseen")?,
                unseen_classes,
            },
            lines,
        ))
    }
}

/// Shared shape check for feature-table writers.
fn validate_table_shape(path: &Path, table: &FeatureTable) -> Result<(), DataError> {
    if table.labels.len() != table.features.rows() {
        return Err(DataError::Shape {
            message: format!(
                "{}: {} labels but {} feature rows",
                path.display(),
                table.labels.len(),
                table.features.rows()
            ),
        });
    }
    if table.features.rows() == 0 || table.features.cols() == 0 {
        return Err(DataError::Shape {
            message: format!(
                "{}: refusing to write an empty feature table",
                path.display()
            ),
        });
    }
    Ok(())
}

/// One `label,v0,v1,...` CSV line. `{}` on f64 prints the shortest string
/// that parses back to the identical bits, which is what makes CSV bundles
/// round-trip exactly.
fn write_csv_row(out: &mut Vec<u8>, label: u32, values: &[f64]) {
    write!(out, "{label}").expect("vec write");
    for v in values {
        write!(out, ",{v}").expect("vec write");
    }
    writeln!(out).expect("vec write");
}

/// Parse one line of a `label,v0,v1,...` CSV table, appending the row's
/// values to `data`. Returns `Ok(Some(label))` for a data row, `Ok(None)` for
/// a blank or `#`-comment line. `cols` tracks the established row width so
/// ragged rows fail exactly as they always have.
///
/// Shared by the in-memory [`read_labeled_csv`] and the streaming
/// [`crate::data::stream::CsvChunkReader`], so the two parsers cannot drift:
/// same trimming, same error strings, same finite-value policy. On `Err`,
/// partially appended values may remain in `data`; every caller treats a
/// parse error as fatal for the whole table.
pub(crate) fn parse_labeled_csv_line(
    path: &Path,
    line_no: usize,
    raw_line: &str,
    cols: &mut Option<usize>,
    data: &mut Vec<f64>,
) -> Result<Option<u32>, DataError> {
    let line = raw_line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split(',');
    let label_tok = fields.next().expect("split yields at least one field");
    let label = label_tok
        .parse::<u32>()
        .map_err(|_| DataError::parse(path, line_no, format!("bad class label '{label_tok}'")))?;
    let mut row_width = 0;
    for tok in fields {
        let v = tok
            .trim()
            .parse::<f64>()
            .map_err(|_| DataError::parse(path, line_no, format!("bad float '{tok}'")))?;
        if !v.is_finite() {
            return Err(DataError::parse(
                path,
                line_no,
                format!("non-finite value {v}"),
            ));
        }
        data.push(v);
        row_width += 1;
    }
    if row_width == 0 {
        return Err(DataError::parse(
            path,
            line_no,
            "row has a label but no values",
        ));
    }
    match cols {
        None => *cols = Some(row_width),
        Some(w) if *w != row_width => {
            return Err(DataError::parse(
                path,
                line_no,
                format!("ragged row: {row_width} values, previous rows had {w}"),
            ));
        }
        Some(_) => {}
    }
    Ok(Some(label))
}

/// Parse a `label,v0,v1,...` CSV file into labels plus a dense matrix.
/// Rejects ragged rows, non-numeric fields, and non-finite values.
fn read_labeled_csv(path: &Path) -> Result<(Vec<u32>, Matrix), DataError> {
    let text = std::fs::read_to_string(path).map_err(|e| DataError::io(path, e))?;
    let mut labels = Vec::new();
    let mut data = Vec::new();
    let mut cols: Option<usize> = None;
    for (line_no, raw_line) in text.lines().enumerate() {
        if let Some(label) =
            parse_labeled_csv_line(path, line_no + 1, raw_line, &mut cols, &mut data)?
        {
            labels.push(label);
        }
    }
    let cols = cols.unwrap_or(0);
    let rows = labels.len();
    Ok((labels, Matrix::from_vec(rows, cols, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("zsl_format_{}_{tag}", std::process::id()))
    }

    fn random_table(seed: u64, n: usize, d: usize, classes: u32) -> FeatureTable {
        let mut rng = Rng::new(seed);
        let labels = (0..n).map(|i| (i as u32) % classes).collect();
        let features = Matrix::from_vec(n, d, (0..n * d).map(|_| rng.normal()).collect());
        FeatureTable { labels, features }
    }

    #[test]
    fn zsb_roundtrip_is_bit_identical() {
        let table = random_table(5, 17, 9, 4);
        let path = temp_path("zsb_rt.zsb");
        write_zsb(&path, &table).unwrap();
        let back = read_zsb(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip_is_bit_identical() {
        let table = random_table(6, 13, 5, 3);
        let path = temp_path("csv_rt.csv");
        write_features_csv(&path, &table).unwrap();
        let back = read_features_csv(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let manifest = SplitManifest {
            trainval: vec![0, 1, 2],
            test_seen: vec![3],
            test_unseen: vec![4, 5],
            unseen_classes: Some(vec![7, 9]),
        };
        let path = temp_path("manifest.txt");
        manifest.write(&path).unwrap();
        let back = SplitManifest::read(&path).unwrap();
        assert_eq!(back, manifest);
        assert!(back.validate(6).is_ok());
        assert!(matches!(back.validate(5), Err(DataError::Split { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_rejects_overlapping_and_empty_splits() {
        let overlapping = SplitManifest {
            trainval: vec![0, 1],
            test_seen: vec![1],
            test_unseen: vec![2],
            unseen_classes: None,
        };
        assert!(matches!(
            overlapping.validate(3),
            Err(DataError::Split { .. })
        ));
        let empty = SplitManifest {
            trainval: vec![0],
            test_seen: vec![1],
            test_unseen: vec![],
            unseen_classes: None,
        };
        assert!(matches!(
            empty.validate(2),
            Err(DataError::EmptySplit { split }) if split == "test_unseen"
        ));
    }
}
