//! Small deterministic PRNG used everywhere randomness is needed.

/// Small deterministic PRNG (SplitMix64) with a Box–Muller Gaussian sampler.
///
/// Not cryptographic; exists so datasets and tests are reproducible without
/// pulling in an external crate.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Guard against ln(0).
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of `slice`, fully determined by the seed.
    ///
    /// Index selection uses `next_u64() % (i + 1)`; the modulo bias is
    /// negligible (< 2⁻⁵⁰) for the slice lengths this crate shuffles and does
    /// not affect determinism, which is the property callers rely on.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniform_in_range() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            let u = a.uniform();
            assert_eq!(u, b.uniform());
            assert!((0.0..1.0).contains(&u));
        }
        let mut c = Rng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_normal_has_sane_moments() {
        let mut rng = Rng::new(2024);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        Rng::new(9).shuffle(&mut a);
        Rng::new(9).shuffle(&mut b);
        assert_eq!(a, b, "same seed must give the same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "must be a permutation");
        let mut c: Vec<usize> = (0..50).collect();
        Rng::new(10).shuffle(&mut c);
        assert_ne!(a, c, "different seeds should (here) differ");
    }
}
