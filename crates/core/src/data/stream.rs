//! Out-of-core streaming ingestion: iterate on-disk feature tables in
//! fixed-row chunks so dataset size never bounds memory.
//!
//! The ESZSL closed form `W = (XᵀX + γI)⁻¹ XᵀYS (SᵀS + λI)⁻¹` only ever
//! needs the Gram accumulators `XᵀX` and `XᵀY`, so the full feature matrix
//! never has to exist in RAM. This module provides the disk side of that
//! pipeline:
//!
//! - [`ZsbChunkReader`] / [`CsvChunkReader`] iterate a bundle's feature table
//!   as [`FeatureChunk`]s of at most `chunk_rows` rows, with full header and
//!   truncation validation through the same typed [`DataError`]s (and, for
//!   `.zsb`, literally the same parsing code) as the in-memory readers —
//!   which are now thin wrappers over these.
//! - [`StreamingBundle`] is the streaming twin of
//!   [`crate::data::DatasetBundle`]: signatures, labels, and the split
//!   manifest are loaded and cross-validated eagerly (all `O(n)` or smaller),
//!   while features stay on disk and are re-streamed per pass via
//!   [`SplitStream`].
//!
//! Peak resident *feature* memory anywhere in this module is
//! `O(chunk_rows x feature_dim)`; per-sample labels are `O(n)` (4–8 bytes per
//! row, negligible next to `feature_dim` doubles per row).
//!
//! **Bit-identity.** Streamed consumers ([`crate::model::GramAccumulator`],
//! [`crate::infer::ScoringEngine::predict_source`], the generic evaluators
//! in [`crate::eval`]) produce results bit-for-bit equal to the in-memory
//! pipeline at every chunk size, because chunks preserve row order and every
//! downstream kernel accumulates in ascending row order
//! (see [`crate::linalg::Matrix::add_transposed_product`]). The differential
//! suite in `tests/streaming_equiv.rs` pins this end to end.

use super::error::DataError;
use super::format::{
    parse_labeled_csv_line, parse_zsb_header, zsb_validate_dims, SplitManifest, ZSB_HEADER_LEN,
};
use super::loader::{remap_labels, ClassMap, FeatureFormat, SplitPlan};
use crate::linalg::Matrix;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Byte offsets (and line numbers) of every data row in a CSV feature table
/// — the random-access map that lets indexed/shuffled streamed reads work on
/// line-oriented files.
///
/// Built in **one pass** ([`CsvLineIndex::build`]) that doubles as the full
/// validation scan a CSV bundle needs anyway (CSV has no header to trust), so
/// a [`StreamingBundle`] gets the index for free at open. Memory is
/// `O(n_samples)` bookkeeping (16 bytes per row), the same class as the
/// per-sample labels — never `O(n x d)` features.
#[derive(Clone, Debug)]
pub struct CsvLineIndex {
    /// Byte offset of each data row, file order.
    offsets: Vec<u64>,
    /// 1-based line number of each data row (for error messages).
    line_nos: Vec<usize>,
    /// Established row width.
    cols: usize,
}

impl CsvLineIndex {
    /// Scan `path` once: validate every line through the shared CSV parser,
    /// record each data row's byte offset and line number, and collect the
    /// raw labels. Exactly the errors of a full [`CsvChunkReader`] pass
    /// (same parse function, same line numbering), plus the index.
    pub fn build(path: &Path) -> Result<(Vec<u32>, CsvLineIndex), DataError> {
        let file = File::open(path).map_err(|e| DataError::io(path, e))?;
        let mut reader = BufReader::new(file);
        let mut labels = Vec::new();
        let mut offsets = Vec::new();
        let mut line_nos = Vec::new();
        let mut cols: Option<usize> = None;
        let mut scratch = Vec::new();
        let mut line = String::new();
        let mut offset = 0u64;
        let mut line_no = 0usize;
        loop {
            line.clear();
            let read = reader
                .read_line(&mut line)
                .map_err(|e| DataError::io(path, e))?;
            if read == 0 {
                break;
            }
            line_no += 1;
            let start = offset;
            offset += read as u64;
            scratch.clear();
            if let Some(label) =
                parse_labeled_csv_line(path, line_no, &line, &mut cols, &mut scratch)?
            {
                labels.push(label);
                offsets.push(start);
                line_nos.push(line_no);
            }
        }
        if labels.is_empty() {
            // Matches the chunk reader's empty-table error.
            return Err(DataError::parse(path, 1, "feature table has no rows"));
        }
        let cols = cols.expect("a non-empty table sets cols");
        Ok((
            labels,
            CsvLineIndex {
                offsets,
                line_nos,
                cols,
            },
        ))
    }

    /// Number of indexed data rows.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the index holds no rows (never after a successful
    /// [`CsvLineIndex::build`], which rejects empty tables).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Established row width of the indexed table.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Indexed chunked reader over a CSV feature table: yields exactly the
/// requested rows, in the given order (repeats allowed), in `chunk_rows`
/// blocks — the CSV counterpart of [`ZsbChunkReader::open_indexed`].
///
/// Runs of consecutive row numbers are coalesced into one seek followed by
/// sequential line reads (comment/blank lines between data rows are skipped
/// by the shared parser), so an ascending selection costs one seek per gap,
/// not one per row. A file that shrank after indexing surfaces as a typed
/// error, never a silently shorter stream; the iterator fuses after the
/// first error.
#[derive(Debug)]
pub struct CsvIndexedReader {
    path: PathBuf,
    file: BufReader<File>,
    /// Requested global rows, with their byte offsets and line numbers
    /// gathered from the index (aligned vectors, selection order).
    order: Vec<usize>,
    offsets: Vec<u64>,
    line_nos: Vec<usize>,
    cols: usize,
    chunk_rows: usize,
    cursor: usize,
    failed: bool,
}

impl CsvIndexedReader {
    /// Open `path` to stream exactly `indices` (global data-row numbers from
    /// `index`, in the given order) in `chunk_rows` blocks.
    pub fn open(
        path: &Path,
        index: &CsvLineIndex,
        indices: &[usize],
        chunk_rows: usize,
    ) -> Result<Self, DataError> {
        validate_chunk_rows(chunk_rows)?;
        if let Some(&bad) = indices.iter().find(|&&i| i >= index.len()) {
            return Err(DataError::split(format!(
                "streamed row index {bad} out of range for {} samples",
                index.len()
            )));
        }
        let file = File::open(path).map_err(|e| DataError::io(path, e))?;
        Ok(CsvIndexedReader {
            path: path.into(),
            file: BufReader::new(file),
            order: indices.to_vec(),
            offsets: indices.iter().map(|&i| index.offsets[i]).collect(),
            line_nos: indices.iter().map(|&i| index.line_nos[i]).collect(),
            cols: index.cols,
            chunk_rows,
            cursor: 0,
            failed: false,
        })
    }

    /// Read the `run_len` consecutive data rows starting at selection
    /// position `pos`: one seek, then sequential line reads through the
    /// shared parser.
    fn read_run(
        &mut self,
        pos: usize,
        run_len: usize,
        data: &mut Vec<f64>,
        labels: &mut Vec<u32>,
    ) -> Result<(), DataError> {
        self.file
            .seek(SeekFrom::Start(self.offsets[pos]))
            .map_err(|e| DataError::io(&self.path, e))?;
        let mut line = String::new();
        for r in 0..run_len {
            let line_no = self.line_nos[pos + r];
            loop {
                line.clear();
                let read = self
                    .file
                    .read_line(&mut line)
                    .map_err(|e| DataError::io(&self.path, e))?;
                if read == 0 {
                    return Err(DataError::Shape {
                        message: format!(
                            "{}: feature table ended before indexed row {} — the file \
                             shrank after the bundle was validated",
                            self.path.display(),
                            self.order[pos + r]
                        ),
                    });
                }
                let mut cols = Some(self.cols);
                match parse_labeled_csv_line(&self.path, line_no, &line, &mut cols, data)? {
                    Some(label) => {
                        labels.push(label);
                        break;
                    }
                    None => continue, // blank/comment between data rows
                }
            }
        }
        Ok(())
    }
}

impl Iterator for CsvIndexedReader {
    type Item = Result<FeatureChunk, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.cursor >= self.order.len() {
            return None;
        }
        let start_pos = self.cursor;
        let take = self.chunk_rows.min(self.order.len() - start_pos);
        let mut data = Vec::with_capacity(take * self.cols);
        let mut labels = Vec::with_capacity(take);
        let mut p = 0;
        while p < take {
            // Coalesce a run of consecutive global rows into one seek.
            let pos = start_pos + p;
            let mut run_len = 1;
            while p + run_len < take
                && self.order[pos + run_len] == self.order[pos + run_len - 1] + 1
            {
                run_len += 1;
            }
            if let Err(e) = self.read_run(pos, run_len, &mut data, &mut labels) {
                self.failed = true;
                return Some(Err(e));
            }
            p += run_len;
        }
        self.cursor = start_pos + take;
        Some(Ok(FeatureChunk {
            start_row: start_pos,
            labels,
            features: Matrix::from_vec(take, self.cols, data),
        }))
    }
}

/// One block of consecutive samples pulled from a feature table.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureChunk {
    /// Global index of the first row: its row number in the file for forward
    /// readers, or its position in the requested index list for indexed
    /// readers ([`ZsbChunkReader::open_indexed`]).
    pub start_row: usize,
    /// Raw class label per chunk row, `len == features.rows()` (empty when
    /// the crate-internal trusted indexed mode skipped the label block).
    pub labels: Vec<u32>,
    /// Feature rows, `chunk_rows x feature_dim` (the final chunk may be
    /// shorter).
    pub features: Matrix,
}

/// Reject a zero chunk size with a typed error: a zero-row chunk could never
/// make progress and would loop forever.
fn validate_chunk_rows(chunk_rows: usize) -> Result<(), DataError> {
    if chunk_rows == 0 {
        return Err(DataError::Shape {
            message: "streaming chunk_rows must be at least 1, got 0".into(),
        });
    }
    Ok(())
}

/// Map a mid-stream `read_exact` failure: an unexpected EOF means the file
/// shrank after its length was validated at open (or the header lied in a way
/// the length check could not see), which is a truncation as far as the
/// caller is concerned.
fn read_failure(path: &Path, expected: u64, e: std::io::Error) -> DataError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        let actual = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        DataError::Truncated {
            path: path.into(),
            expected,
            actual,
        }
    } else {
        DataError::io(path, e)
    }
}

/// Chunked reader over a `.zsb` binary feature dump.
///
/// [`ZsbChunkReader::open`] reads and fully validates the 32-byte header and
/// the label block (magic, version, flags, reserved bytes, non-zero dims,
/// u64 *and* usize overflow of the promised payload, exact file length —
/// truncation and trailing garbage are both rejected before the first chunk —
/// and the header `class_count` against the labels actually present). Feature
/// rows are then streamed in `chunk_rows` blocks; every value is checked
/// finite with the same error message as the in-memory reader.
///
/// The iterator yields `Result<FeatureChunk, DataError>` and fuses after the
/// first error.
#[derive(Debug)]
pub struct ZsbChunkReader {
    path: PathBuf,
    file: BufReader<File>,
    labels: Vec<u32>,
    n_samples: usize,
    feature_dim: usize,
    expected_len: u64,
    chunk_rows: usize,
    /// `None`: forward scan over all rows. `Some(indices)`: yield exactly
    /// these global rows, in order, via seeks.
    order: Option<Vec<usize>>,
    /// Next global row (forward mode) or next position in `order` (indexed).
    cursor: usize,
    failed: bool,
}

impl ZsbChunkReader {
    /// Open a `.zsb` file for a forward scan in `chunk_rows` blocks.
    pub fn open(path: &Path, chunk_rows: usize) -> Result<Self, DataError> {
        Self::open_inner(path, chunk_rows, None, true)
    }

    /// Open a `.zsb` file to stream exactly `indices` (global row numbers, in
    /// the given order, repeats allowed) in `chunk_rows` blocks.
    ///
    /// Rows are fetched with coalesced seeks, so arbitrary-order access —
    /// e.g. a shuffled cross-validation fold — costs one seek per *run* of
    /// consecutive indices, not one per row, and still never holds more than
    /// one chunk of features in memory. Ascending lists degenerate to long
    /// sequential runs, so a sparse split over a huge file reads *only* the
    /// selected byte ranges.
    pub fn open_indexed(
        path: &Path,
        indices: &[usize],
        chunk_rows: usize,
    ) -> Result<Self, DataError> {
        Self::open_indexed_inner(path, indices, chunk_rows, true)
    }

    /// [`ZsbChunkReader::open_indexed`] minus the label-block read and
    /// class-count recheck — for callers (the [`StreamingBundle`] split
    /// streams) that already validated the labels at bundle open and would
    /// otherwise re-read and re-sort 4·n bytes on every pass. Header and
    /// exact file length are still validated, so shrink/corruption races
    /// stay caught. Yielded chunks carry empty `labels`.
    pub(crate) fn open_indexed_trusted(
        path: &Path,
        indices: &[usize],
        chunk_rows: usize,
    ) -> Result<Self, DataError> {
        Self::open_indexed_inner(path, indices, chunk_rows, false)
    }

    fn open_indexed_inner(
        path: &Path,
        indices: &[usize],
        chunk_rows: usize,
        read_labels: bool,
    ) -> Result<Self, DataError> {
        let reader = Self::open_inner(path, chunk_rows, Some(indices.to_vec()), read_labels)?;
        if let Some(&bad) = indices.iter().find(|&&i| i >= reader.n_samples) {
            return Err(DataError::split(format!(
                "streamed row index {bad} out of range for {} samples",
                reader.n_samples
            )));
        }
        Ok(reader)
    }

    fn open_inner(
        path: &Path,
        chunk_rows: usize,
        order: Option<Vec<usize>>,
        read_labels: bool,
    ) -> Result<Self, DataError> {
        validate_chunk_rows(chunk_rows)?;
        let file = File::open(path).map_err(|e| DataError::io(path, e))?;
        let actual = file.metadata().map_err(|e| DataError::io(path, e))?.len();
        if actual < ZSB_HEADER_LEN {
            return Err(DataError::Truncated {
                path: path.into(),
                expected: ZSB_HEADER_LEN,
                actual,
            });
        }
        let mut file = BufReader::new(file);
        let mut header = [0u8; ZSB_HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| read_failure(path, ZSB_HEADER_LEN, e))?;
        let parsed = parse_zsb_header(path, &header)?;
        let (n, d, expected) = zsb_validate_dims(path, parsed.n_samples, parsed.feature_dim)?;
        if actual < expected {
            return Err(DataError::Truncated {
                path: path.into(),
                expected,
                actual,
            });
        }
        if actual > expected {
            return Err(DataError::header(
                path,
                format!(
                    "{} trailing bytes after the feature payload",
                    actual - expected
                ),
            ));
        }

        let labels = if read_labels {
            let mut label_bytes = vec![0u8; 4 * n];
            file.read_exact(&mut label_bytes)
                .map_err(|e| read_failure(path, expected, e))?;
            let labels: Vec<u32> = label_bytes
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                .collect();
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != parsed.class_count as usize {
                return Err(DataError::header(
                    path,
                    format!(
                        "header claims {} distinct classes but labels contain {}",
                        parsed.class_count,
                        distinct.len()
                    ),
                ));
            }
            labels
        } else {
            Vec::new()
        };

        Ok(ZsbChunkReader {
            path: path.into(),
            file,
            labels,
            n_samples: n,
            feature_dim: d,
            expected_len: expected,
            chunk_rows,
            order,
            cursor: 0,
            failed: false,
        })
    }

    /// Total sample rows in the file (not the index list).
    pub fn num_samples(&self) -> usize {
        self.n_samples
    }

    /// Feature columns per row.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// All raw per-sample labels, in file order (read once at open; `O(n)`).
    /// Empty only for the crate-internal trusted mode, which skips the label
    /// block.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Byte offset of global feature row `row`.
    fn row_offset(&self, row: usize) -> u64 {
        ZSB_HEADER_LEN + 4 * self.n_samples as u64 + (row as u64) * (8 * self.feature_dim as u64)
    }

    /// Read `rows` consecutive feature rows starting at global row `start`
    /// from the current file position, finite-checking each value.
    fn read_rows_at_cursor(&mut self, start: usize, rows: usize) -> Result<Vec<f64>, DataError> {
        let d = self.feature_dim;
        let mut bytes = vec![0u8; rows * d * 8];
        let expected = self.expected_len;
        self.file
            .read_exact(&mut bytes)
            .map_err(|e| read_failure(&self.path, expected, e))?;
        let mut data = Vec::with_capacity(rows * d);
        for (i, b) in bytes.chunks_exact(8).enumerate() {
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(DataError::header(
                    &self.path,
                    format!(
                        "non-finite feature value {v} at row {}, col {}",
                        start + i / d,
                        i % d
                    ),
                ));
            }
            data.push(v);
        }
        Ok(data)
    }

    fn next_forward(&mut self) -> Option<Result<FeatureChunk, DataError>> {
        if self.cursor >= self.n_samples {
            return None;
        }
        let start = self.cursor;
        let rows = self.chunk_rows.min(self.n_samples - start);
        let data = match self.read_rows_at_cursor(start, rows) {
            Ok(data) => data,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        self.cursor = start + rows;
        Some(Ok(FeatureChunk {
            start_row: start,
            labels: self.labels[start..start + rows].to_vec(),
            features: Matrix::from_vec(rows, self.feature_dim, data),
        }))
    }

    fn next_indexed(&mut self) -> Option<Result<FeatureChunk, DataError>> {
        let order = self.order.take().expect("indexed mode");
        let result = self.next_indexed_inner(&order);
        self.order = Some(order);
        result
    }

    fn next_indexed_inner(&mut self, order: &[usize]) -> Option<Result<FeatureChunk, DataError>> {
        if self.cursor >= order.len() {
            return None;
        }
        let start_pos = self.cursor;
        let take = self.chunk_rows.min(order.len() - start_pos);
        let wanted = &order[start_pos..start_pos + take];
        let d = self.feature_dim;
        let mut data = Vec::with_capacity(take * d);
        let mut labels = Vec::with_capacity(take);
        let mut p = 0;
        while p < take {
            // Coalesce a run of consecutive indices into one seek + read.
            let run_start = wanted[p];
            let mut run_len = 1;
            while p + run_len < take && wanted[p + run_len] == wanted[p + run_len - 1] + 1 {
                run_len += 1;
            }
            let offset = self.row_offset(run_start);
            let run = self
                .file
                .seek(SeekFrom::Start(offset))
                .map_err(|e| DataError::io(&self.path, e))
                .and_then(|_| self.read_rows_at_cursor(run_start, run_len));
            match run {
                Ok(rows) => data.extend_from_slice(&rows),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
            if !self.labels.is_empty() {
                labels.extend(wanted[p..p + run_len].iter().map(|&g| self.labels[g]));
            }
            p += run_len;
        }
        self.cursor = start_pos + take;
        Some(Ok(FeatureChunk {
            start_row: start_pos,
            labels,
            features: Matrix::from_vec(take, d, data),
        }))
    }
}

impl Iterator for ZsbChunkReader {
    type Item = Result<FeatureChunk, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.order.is_some() {
            self.next_indexed()
        } else {
            self.next_forward()
        }
    }
}

/// Chunked reader over a CSV feature table (`label,f0,f1,...` per line).
///
/// Lines are parsed lazily through the same per-line parser as the in-memory
/// reader (identical trimming, error strings, and finite-value policy), so
/// only `chunk_rows` parsed rows plus one line buffer are resident at a time.
/// Unlike `.zsb` there is no header to pre-validate: malformed rows surface
/// as errors on the chunk that reaches them, and the iterator fuses after the
/// first error.
#[derive(Debug)]
pub struct CsvChunkReader {
    path: PathBuf,
    lines: std::io::Lines<BufReader<File>>,
    chunk_rows: usize,
    line_no: usize,
    cols: Option<usize>,
    next_row: usize,
    finished: bool,
}

impl CsvChunkReader {
    /// Open a CSV feature table for a forward scan in `chunk_rows` blocks.
    pub fn open(path: &Path, chunk_rows: usize) -> Result<Self, DataError> {
        validate_chunk_rows(chunk_rows)?;
        let file = File::open(path).map_err(|e| DataError::io(path, e))?;
        Ok(CsvChunkReader {
            path: path.into(),
            lines: BufReader::new(file).lines(),
            chunk_rows,
            line_no: 0,
            cols: None,
            next_row: 0,
            finished: false,
        })
    }

    /// Established row width, once the first data row has been parsed.
    pub fn cols(&self) -> Option<usize> {
        self.cols
    }
}

impl Iterator for CsvChunkReader {
    type Item = Result<FeatureChunk, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut labels = Vec::new();
        let mut data = Vec::new();
        loop {
            match self.lines.next() {
                None => {
                    if labels.is_empty() {
                        if self.next_row == 0 {
                            // Matches the in-memory reader's empty-table error.
                            self.finished = true;
                            return Some(Err(DataError::parse(
                                &self.path,
                                1,
                                "feature table has no rows",
                            )));
                        }
                        return None;
                    }
                    break;
                }
                Some(Err(e)) => {
                    self.finished = true;
                    return Some(Err(DataError::io(&self.path, e)));
                }
                Some(Ok(line)) => {
                    self.line_no += 1;
                    match parse_labeled_csv_line(
                        &self.path,
                        self.line_no,
                        &line,
                        &mut self.cols,
                        &mut data,
                    ) {
                        Err(e) => {
                            self.finished = true;
                            return Some(Err(e));
                        }
                        Ok(None) => continue,
                        Ok(Some(label)) => {
                            labels.push(label);
                            if labels.len() == self.chunk_rows {
                                break;
                            }
                        }
                    }
                }
            }
        }
        let rows = labels.len();
        let start = self.next_row;
        self.next_row += rows;
        let cols = self.cols.expect("at least one row parsed");
        Some(Ok(FeatureChunk {
            start_row: start,
            labels,
            features: Matrix::from_vec(rows, cols, data),
        }))
    }
}

/// Format-erased chunk reader so split streaming works over either on-disk
/// representation.
#[derive(Debug)]
pub enum ChunkReader {
    /// Binary `.zsb` reader.
    Zsb(ZsbChunkReader),
    /// CSV reader.
    Csv(CsvChunkReader),
}

impl ChunkReader {
    /// Open `path` in the given format for a forward scan.
    pub fn open(path: &Path, format: FeatureFormat, chunk_rows: usize) -> Result<Self, DataError> {
        Ok(match format {
            FeatureFormat::Zsb => ChunkReader::Zsb(ZsbChunkReader::open(path, chunk_rows)?),
            FeatureFormat::Csv => ChunkReader::Csv(CsvChunkReader::open(path, chunk_rows)?),
        })
    }
}

impl Iterator for ChunkReader {
    type Item = Result<FeatureChunk, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ChunkReader::Zsb(r) => r.next(),
            ChunkReader::Csv(r) => r.next(),
        }
    }
}

/// A chunked stream over one split of a bundle: yields
/// `(features, dense-rank labels)` blocks in the split's manifest order,
/// holding at most `chunk_rows` feature rows at a time.
///
/// Produced by the `stream_*` methods on [`StreamingBundle`]. Fuses after
/// the first error: a consumer that keeps polling past an `Err` gets `None`,
/// never a second (possibly misleading) error.
#[derive(Debug)]
pub struct SplitStream {
    inner: SplitStreamInner,
    failed: bool,
}

#[derive(Debug)]
struct SplitStreamInner {
    /// Seek-coalesced gather in explicit index order: only the selected byte
    /// ranges (`.zsb`) or lines (CSV, via [`CsvLineIndex`]) are read, so a
    /// sparse split over a huge file skips the rest entirely — an ascending
    /// dense split degenerates to one long sequential run.
    reader: IndexedReader,
    /// `labels[position]` pairs with the index list handed to the reader.
    labels: Vec<usize>,
}

/// Format-erased indexed chunk reader, so shuffled/subset split streams work
/// over either on-disk representation.
#[derive(Debug)]
pub enum IndexedReader {
    /// Seek-coalesced binary reads.
    Zsb(ZsbChunkReader),
    /// Line-index-backed CSV reads.
    Csv(CsvIndexedReader),
}

impl Iterator for IndexedReader {
    type Item = Result<FeatureChunk, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            IndexedReader::Zsb(r) => r.next(),
            IndexedReader::Csv(r) => r.next(),
        }
    }
}

impl Iterator for SplitStream {
    type Item = Result<(Matrix, Vec<usize>), DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = self.next_inner();
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

impl SplitStream {
    fn next_inner(&mut self) -> Option<<Self as Iterator>::Item> {
        let SplitStreamInner { reader, labels } = &mut self.inner;
        let chunk = match reader.next()? {
            Ok(chunk) => chunk,
            Err(e) => return Some(Err(e)),
        };
        let rows = chunk.features.rows();
        let local = labels[chunk.start_row..chunk.start_row + rows].to_vec();
        Some(Ok((chunk.features, local)))
    }
}

/// The streaming twin of [`crate::data::DatasetBundle`]: everything *except*
/// the feature matrix is loaded and cross-validated up front (signatures,
/// class map, per-sample labels, split manifest — all `O(n)` or smaller),
/// while features stay on disk and are re-read chunk-at-a-time per pass.
///
/// Construction runs the same validation as the in-memory loader: label
/// remapping against the signature table, manifest index validation, declared
/// unseen-class checks, and the full GZSL [`SplitPlan`] protocol checks. For
/// `.zsb` bundles the feature file's header and labels are validated without
/// touching the payload; CSV bundles pay one full validation scan (CSV has no
/// header to trust).
#[derive(Debug)]
pub struct StreamingBundle {
    dir: PathBuf,
    format: FeatureFormat,
    chunk_rows: usize,
    /// Dense class id per sample, file order.
    labels: Vec<usize>,
    signatures: Matrix,
    class_map: ClassMap,
    manifest: SplitManifest,
    num_samples: usize,
    feature_dim: usize,
    plan: SplitPlan,
    /// Data-row byte offsets of a CSV feature table, built for free during
    /// the open-time validation scan; `None` for `.zsb` (which seeks by
    /// arithmetic). This is what lets shuffled manifests and CV folds stream
    /// from CSV bundles.
    csv_index: Option<CsvLineIndex>,
}

impl StreamingBundle {
    /// Open a bundle directory for streaming, preferring `features.zsb` over
    /// `features.csv` when both exist (same auto-detection as
    /// [`crate::data::DatasetBundle::load`]).
    pub fn open(dir: &Path, chunk_rows: usize) -> Result<Self, DataError> {
        Self::open_with_format(dir, super::loader::detect_feature_format(dir)?, chunk_rows)
    }

    /// Open a bundle directory for streaming with an explicit feature format.
    pub fn open_with_format(
        dir: &Path,
        format: FeatureFormat,
        chunk_rows: usize,
    ) -> Result<Self, DataError> {
        validate_chunk_rows(chunk_rows)?;
        let (signatures, class_map) = super::loader::load_signature_table(dir)?;

        let features_path = dir.join(format.file_name());
        let (raw_labels, feature_dim, csv_index) = match format {
            FeatureFormat::Zsb => {
                let reader = ZsbChunkReader::open(&features_path, chunk_rows)?;
                (reader.labels().to_vec(), reader.feature_dim(), None)
            }
            FeatureFormat::Csv => {
                // CSV has no header: one bounded-memory validation scan
                // collects labels, establishes the row width, surfaces any
                // parse error before training starts — and records each data
                // row's byte offset, giving indexed (shuffled) reads on a
                // line-oriented file for free.
                let (labels, index) = CsvLineIndex::build(&features_path)?;
                (labels, index.cols(), Some(index))
            }
        };
        let num_samples = raw_labels.len();
        let labels = remap_labels(&raw_labels, &class_map, format.file_name())?;

        let manifest = super::loader::load_validated_manifest(dir, num_samples, &class_map)?;
        let plan = SplitPlan::compute(&labels, &manifest, &class_map, signatures.rows())?;

        Ok(StreamingBundle {
            dir: dir.into(),
            format,
            chunk_rows,
            labels,
            signatures,
            class_map,
            manifest,
            num_samples,
            feature_dim,
            plan,
            csv_index,
        })
    }

    /// Number of samples in the feature table.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Visual feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Attribute/signature dimension.
    pub fn attr_dim(&self) -> usize {
        self.signatures.cols()
    }

    /// Number of classes in the signature table.
    pub fn num_classes(&self) -> usize {
        self.signatures.rows()
    }

    /// Rows per streamed chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The on-disk feature format being streamed.
    pub fn format(&self) -> FeatureFormat {
        self.format
    }

    /// The split manifest (validated at open).
    pub fn manifest(&self) -> &SplitManifest {
        &self.manifest
    }

    /// The raw-label ↔ dense-id bijection.
    pub fn class_map(&self) -> &ClassMap {
        &self.class_map
    }

    /// The full signature table, dense-id order.
    pub fn signatures(&self) -> &Matrix {
        &self.signatures
    }

    /// The resolved GZSL split plan.
    pub fn split_plan(&self) -> &SplitPlan {
        &self.plan
    }

    /// Number of seen classes (≥ 1 trainval sample).
    pub fn num_seen_classes(&self) -> usize {
        self.plan.num_seen()
    }

    /// Number of unseen classes (observed in test_unseen).
    pub fn num_unseen_classes(&self) -> usize {
        self.plan.num_unseen()
    }

    /// Seen-class signatures in rank order — bit-identical to
    /// `Dataset::seen_signatures` from the in-memory path.
    pub fn seen_signatures(&self) -> Matrix {
        self.signatures.gather_rows(&self.plan.seen_classes)
    }

    /// Unseen-class signatures in rank order.
    pub fn unseen_signatures(&self) -> Matrix {
        self.signatures.gather_rows(&self.plan.unseen_classes)
    }

    /// Seen then unseen signatures stacked — bit-identical to
    /// `Dataset::all_signatures`, the GZSL union bank.
    pub fn union_signatures(&self) -> Matrix {
        let mut data =
            Vec::with_capacity((self.plan.num_seen() + self.plan.num_unseen()) * self.attr_dim());
        data.extend_from_slice(self.seen_signatures().as_slice());
        data.extend_from_slice(self.unseen_signatures().as_slice());
        Matrix::from_vec(
            self.plan.num_seen() + self.plan.num_unseen(),
            self.attr_dim(),
            data,
        )
    }

    /// Stream the trainval split as `(features, seen-rank labels)` chunks, in
    /// manifest order.
    pub fn stream_trainval(&self) -> Result<SplitStream, DataError> {
        self.stream_rows(&self.manifest.trainval, |c| self.plan.seen_rank[c])
    }

    /// Stream the test-seen split as `(features, seen-rank labels)` chunks.
    pub fn stream_test_seen(&self) -> Result<SplitStream, DataError> {
        self.stream_rows(&self.manifest.test_seen, |c| self.plan.seen_rank[c])
    }

    /// Stream the test-unseen split as `(features, unseen-rank labels)`
    /// chunks.
    pub fn stream_test_unseen(&self) -> Result<SplitStream, DataError> {
        self.stream_rows(&self.manifest.test_unseen, |c| self.plan.unseen_rank[c])
    }

    /// Stream an arbitrary subset of the trainval split, given positions
    /// *within* the trainval index list (the shape a cross-validation fold
    /// produces), in the given order.
    pub fn stream_trainval_subset(&self, local: &[usize]) -> Result<SplitStream, DataError> {
        let trainval = &self.manifest.trainval;
        if let Some(&bad) = local.iter().find(|&&p| p >= trainval.len()) {
            return Err(DataError::split(format!(
                "trainval-subset position {bad} out of range for {} trainval samples",
                trainval.len()
            )));
        }
        let global: Vec<usize> = local.iter().map(|&p| trainval[p]).collect();
        self.stream_rows(&global, |c| self.plan.seen_rank[c])
    }

    /// Core row streamer: yield the given global rows, in order, paired with
    /// `rank(dense_class)` labels.
    ///
    /// Both formats go through a seek-coalesced indexed reader — byte-range
    /// arithmetic for `.zsb`, the [`CsvLineIndex`] built at open for CSV — so
    /// only the selected rows are read: a sparse split over a huge file skips
    /// the rest entirely, and a fully contiguous (ascending) split
    /// degenerates to one sequential read. Rows arrive in exactly the given
    /// order, which is what keeps streamed training bit-identical to the
    /// in-memory gather.
    fn stream_rows<F>(&self, indices: &[usize], rank: F) -> Result<SplitStream, DataError>
    where
        F: Fn(usize) -> usize,
    {
        let features_path = self.dir.join(self.format.file_name());
        let labels: Vec<usize> = indices.iter().map(|&g| rank(self.labels[g])).collect();
        let reader = match self.format {
            FeatureFormat::Zsb => {
                // Trusted open: the label block was validated when this
                // bundle opened; re-reading it on every pass would cost
                // O(n log n) per stream for nothing.
                IndexedReader::Zsb(ZsbChunkReader::open_indexed_trusted(
                    &features_path,
                    indices,
                    self.chunk_rows,
                )?)
            }
            FeatureFormat::Csv => {
                let index = self
                    .csv_index
                    .as_ref()
                    .expect("CSV bundles build a line index at open");
                IndexedReader::Csv(CsvIndexedReader::open(
                    &features_path,
                    index,
                    indices,
                    self.chunk_rows,
                )?)
            }
        };
        Ok(SplitStream {
            inner: SplitStreamInner { reader, labels },
            failed: false,
        })
    }
}
