//! Loading and exporting dataset bundles.
//!
//! A *bundle* is a directory holding a feature table (`features.zsb` or
//! `features.csv`), a signature table (`signatures.csv`), and a split
//! manifest (`splits.txt`) — see [`crate::data::format`] for the file
//! formats. [`DatasetBundle::load`] reads and cross-validates the three
//! files, remaps arbitrary raw class labels to dense ids, and
//! [`DatasetBundle::to_dataset`] materializes the trainval / test-seen /
//! test-unseen splits as the in-memory [`Dataset`] the trainers and
//! evaluators consume. [`export_dataset`] is the inverse: any [`Dataset`]
//! (e.g. a synthetic one) round-trips through disk bit-identically.

use super::error::DataError;
use super::format::{
    read_features_csv, read_signatures_csv, read_zsb, write_features_csv, write_signatures_csv,
    write_zsb, FeatureTable, SplitManifest,
};
use super::synthetic::Dataset;
use crate::linalg::Matrix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the binary feature table inside a bundle directory.
pub const FEATURES_ZSB: &str = "features.zsb";
/// File name of the CSV feature table inside a bundle directory.
pub const FEATURES_CSV: &str = "features.csv";
/// File name of the signature table inside a bundle directory.
pub const SIGNATURES_CSV: &str = "signatures.csv";
/// File name of the split manifest inside a bundle directory.
pub const SPLITS_TXT: &str = "splits.txt";

/// Which on-disk representation a bundle's feature table uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureFormat {
    /// Compact little-endian binary (`features.zsb`).
    Zsb,
    /// Human-readable CSV (`features.csv`).
    Csv,
}

impl FeatureFormat {
    /// The bundle file name for this format.
    pub fn file_name(self) -> &'static str {
        match self {
            FeatureFormat::Zsb => FEATURES_ZSB,
            FeatureFormat::Csv => FEATURES_CSV,
        }
    }
}

/// Bijective map between arbitrary raw class labels and dense ids
/// `0..num_classes`, in signature-table order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMap {
    to_raw: Vec<u32>,
    to_dense: BTreeMap<u32, usize>,
}

impl ClassMap {
    /// Build from the raw labels of the signature table, in file order
    /// (line `i` becomes dense id `i`). Duplicates are a
    /// [`DataError::DuplicateClass`].
    pub fn from_labels(raw_labels: &[u32]) -> Result<Self, DataError> {
        let mut to_dense = BTreeMap::new();
        for (dense, &raw) in raw_labels.iter().enumerate() {
            if to_dense.insert(raw, dense).is_some() {
                return Err(DataError::DuplicateClass { label: raw });
            }
        }
        Ok(ClassMap {
            to_raw: raw_labels.to_vec(),
            to_dense,
        })
    }

    /// Dense id for a raw label, if defined.
    pub fn dense(&self, raw: u32) -> Option<usize> {
        self.to_dense.get(&raw).copied()
    }

    /// Raw label for a dense id, if in range.
    pub fn raw(&self, dense: usize) -> Option<u32> {
        self.to_raw.get(dense).copied()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.to_raw.len()
    }

    /// True when no classes are mapped.
    pub fn is_empty(&self) -> bool {
        self.to_raw.is_empty()
    }
}

/// A fully loaded and cross-validated dataset bundle.
///
/// `labels` are already remapped to dense class ids (row indices of
/// `signatures`); `class_map` recovers the original raw labels.
#[derive(Clone, Debug)]
pub struct DatasetBundle {
    /// All sample features, `n_samples x feature_dim`.
    pub features: Matrix,
    /// Dense class id per sample, `len == n_samples`.
    pub labels: Vec<usize>,
    /// Class signatures, `num_classes x attr_dim`, dense-id order.
    pub signatures: Matrix,
    /// Raw-label ↔ dense-id bijection.
    pub class_map: ClassMap,
    /// Sample-index split assignment.
    pub manifest: SplitManifest,
}

/// Auto-detect a bundle's feature format, preferring `features.zsb` over
/// `features.csv` when both exist. Shared by [`DatasetBundle::load`] and
/// [`crate::data::StreamingBundle::open`], so the two loaders cannot drift.
pub(crate) fn detect_feature_format(dir: &Path) -> Result<FeatureFormat, DataError> {
    if dir.join(FEATURES_ZSB).is_file() {
        Ok(FeatureFormat::Zsb)
    } else if dir.join(FEATURES_CSV).is_file() {
        Ok(FeatureFormat::Csv)
    } else {
        Err(DataError::io(
            dir.join(FEATURES_ZSB),
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("bundle has neither {FEATURES_ZSB} nor {FEATURES_CSV}"),
            ),
        ))
    }
}

/// Load `signatures.csv` and build the raw-label ↔ dense-id map — the bundle
/// prologue shared by the in-memory and streaming loaders.
pub(crate) fn load_signature_table(dir: &Path) -> Result<(Matrix, ClassMap), DataError> {
    let (raw_class_labels, signatures) = read_signatures_csv(&dir.join(SIGNATURES_CSV))?;
    let class_map = ClassMap::from_labels(&raw_class_labels)?;
    Ok((signatures, class_map))
}

/// Read and cross-validate `splits.txt` against the sample count and class
/// map (index validity plus declared-unseen-class existence) — shared by the
/// in-memory and streaming loaders.
pub(crate) fn load_validated_manifest(
    dir: &Path,
    num_samples: usize,
    class_map: &ClassMap,
) -> Result<SplitManifest, DataError> {
    let splits_path = dir.join(SPLITS_TXT);
    let (manifest, section_lines) = SplitManifest::read_located(&splits_path)?;
    manifest.validate_located(num_samples, &splits_path, &section_lines)?;
    if let Some(declared) = &manifest.unseen_classes {
        for &raw in declared {
            if class_map.dense(raw).is_none() {
                return Err(DataError::UnknownClass {
                    label: raw,
                    context: format!("{SPLITS_TXT} unseen_classes"),
                });
            }
        }
    }
    Ok(manifest)
}

impl DatasetBundle {
    /// Load a bundle directory, preferring `features.zsb` over
    /// `features.csv` when both exist.
    pub fn load(dir: &Path) -> Result<Self, DataError> {
        Self::load_with_format(dir, detect_feature_format(dir)?)
    }

    /// Load a bundle directory with an explicit feature-table format.
    pub fn load_with_format(dir: &Path, format: FeatureFormat) -> Result<Self, DataError> {
        let (signatures, class_map) = load_signature_table(dir)?;

        let features_path = dir.join(format.file_name());
        let table = match format {
            FeatureFormat::Zsb => read_zsb(&features_path)?,
            FeatureFormat::Csv => read_features_csv(&features_path)?,
        };
        let labels = remap_labels(&table.labels, &class_map, format.file_name())?;

        let manifest = load_validated_manifest(dir, table.features.rows(), &class_map)?;

        Ok(DatasetBundle {
            features: table.features,
            labels,
            signatures,
            class_map,
            manifest,
        })
    }

    /// Number of samples in the feature table.
    pub fn num_samples(&self) -> usize {
        self.features.rows()
    }

    /// Visual feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Attribute/signature dimension.
    pub fn attr_dim(&self) -> usize {
        self.signatures.cols()
    }

    /// Number of classes in the signature table.
    pub fn num_classes(&self) -> usize {
        self.signatures.rows()
    }

    /// Resolve the GZSL class structure of this bundle's splits — see
    /// [`SplitPlan`]. Shared by [`DatasetBundle::to_dataset`] and the
    /// streaming path ([`crate::data::StreamingBundle`]), so both enforce the
    /// identical protocol checks.
    pub fn split_plan(&self) -> Result<SplitPlan, DataError> {
        SplitPlan::compute(
            &self.labels,
            &self.manifest,
            &self.class_map,
            self.num_classes(),
        )
    }

    /// Materialize the manifest's splits as an in-memory [`Dataset`].
    ///
    /// Seen classes are those with at least one `trainval` sample, unseen
    /// classes those observed in `test_unseen`; both keep dense-id order.
    /// Errors when the two sets overlap (a GZSL protocol violation), when a
    /// `test_seen` sample belongs to a class never trained on, or when the
    /// manifest's declared `unseen_classes` disagree with the samples.
    pub fn to_dataset(&self) -> Result<Dataset, DataError> {
        let plan = self.split_plan()?;

        let gather = |indices: &[usize], rank: &[usize]| -> (Matrix, Vec<usize>) {
            let x = self.features.gather_rows(indices);
            let labels = indices
                .iter()
                .map(|&i| {
                    let r = rank[self.labels[i]];
                    debug_assert_ne!(r, usize::MAX, "rank validated by SplitPlan::compute");
                    r
                })
                .collect();
            (x, labels)
        };

        let (train_x, train_labels) = gather(&self.manifest.trainval, &plan.seen_rank);
        let (test_seen_x, test_seen_labels) = gather(&self.manifest.test_seen, &plan.seen_rank);
        let (test_unseen_x, test_unseen_labels) =
            gather(&self.manifest.test_unseen, &plan.unseen_rank);

        Ok(Dataset {
            train_x,
            train_labels,
            test_seen_x,
            test_seen_labels,
            test_unseen_x,
            test_unseen_labels,
            seen_signatures: self.signatures.gather_rows(&plan.seen_classes),
            unseen_signatures: self.signatures.gather_rows(&plan.unseen_classes),
        })
    }
}

/// The resolved GZSL class structure of a bundle's splits: which dense class
/// ids are seen (≥ 1 `trainval` sample) vs unseen (observed in
/// `test_unseen`), in dense-id order, plus the rank of each class within its
/// list — the local label space the trainers and evaluators use.
///
/// Computing the plan performs the protocol checks that used to live inside
/// `to_dataset`: seen/unseen overlap, declared-unseen-set agreement, and
/// `test_seen` samples whose class was never trained on.
#[derive(Clone, Debug)]
pub struct SplitPlan {
    /// Dense class ids with at least one `trainval` sample, ascending.
    pub seen_classes: Vec<usize>,
    /// Dense class ids observed in `test_unseen`, ascending.
    pub unseen_classes: Vec<usize>,
    /// Dense class id → rank in `seen_classes` (`usize::MAX` when unseen).
    pub(crate) seen_rank: Vec<usize>,
    /// Dense class id → rank in `unseen_classes` (`usize::MAX` when seen).
    pub(crate) unseen_rank: Vec<usize>,
}

impl SplitPlan {
    /// Build the plan from per-sample dense labels and a validated manifest,
    /// running every GZSL protocol check.
    pub(crate) fn compute(
        labels: &[usize],
        manifest: &SplitManifest,
        class_map: &ClassMap,
        num_classes: usize,
    ) -> Result<Self, DataError> {
        let z = num_classes;
        let mut in_trainval = vec![false; z];
        for &i in &manifest.trainval {
            in_trainval[labels[i]] = true;
        }
        let mut in_unseen = vec![false; z];
        for &i in &manifest.test_unseen {
            let class = labels[i];
            if in_trainval[class] {
                return Err(DataError::split(format!(
                    "class {} (raw label {}) has samples in both trainval and test_unseen",
                    class,
                    class_map.raw(class).expect("dense id in range")
                )));
            }
            in_unseen[class] = true;
        }

        let seen_classes: Vec<usize> = (0..z).filter(|&c| in_trainval[c]).collect();
        let unseen_classes: Vec<usize> = (0..z).filter(|&c| in_unseen[c]).collect();
        if let Some(declared) = &manifest.unseen_classes {
            let mut declared_dense: Vec<usize> = declared
                .iter()
                .map(|&raw| class_map.dense(raw).expect("checked at load"))
                .collect();
            declared_dense.sort_unstable();
            if declared_dense != unseen_classes {
                return Err(DataError::split(format!(
                    "manifest declares unseen classes {declared:?} but test_unseen \
                     samples cover a different class set"
                )));
            }
        }

        // Rank of each dense class id within its (seen or unseen) list.
        let mut seen_rank = vec![usize::MAX; z];
        for (rank, &c) in seen_classes.iter().enumerate() {
            seen_rank[c] = rank;
        }
        let mut unseen_rank = vec![usize::MAX; z];
        for (rank, &c) in unseen_classes.iter().enumerate() {
            unseen_rank[c] = rank;
        }

        // trainval and test_unseen classes rank by construction; only a
        // test_seen sample can reference a class that was never trained on.
        for &i in &manifest.test_seen {
            if seen_rank[labels[i]] == usize::MAX {
                return Err(DataError::split(format!(
                    "test_seen sample {i} belongs to class with raw label {} \
                     which has no trainval samples",
                    class_map.raw(labels[i]).expect("dense id in range")
                )));
            }
        }

        Ok(SplitPlan {
            seen_classes,
            unseen_classes,
            seen_rank,
            unseen_rank,
        })
    }

    /// Number of seen classes.
    pub fn num_seen(&self) -> usize {
        self.seen_classes.len()
    }

    /// Number of unseen classes.
    pub fn num_unseen(&self) -> usize {
        self.unseen_classes.len()
    }
}

/// Map a feature table's raw labels to dense class ids, failing with
/// [`DataError::UnknownClass`] on a label the signature table lacks.
pub(crate) fn remap_labels(
    raw: &[u32],
    class_map: &ClassMap,
    context: &str,
) -> Result<Vec<usize>, DataError> {
    raw.iter()
        .map(|&label| {
            class_map
                .dense(label)
                .ok_or_else(|| DataError::UnknownClass {
                    label,
                    context: context.into(),
                })
        })
        .collect()
}

/// Export a [`Dataset`] as a bundle directory (created if absent), the
/// inverse of [`DatasetBundle::load`] + [`DatasetBundle::to_dataset`]:
/// reloading reproduces every matrix and label list bit-identically.
///
/// Classes are written with dense raw labels `0..num_seen` (seen) and
/// `num_seen..num_seen+num_unseen` (unseen); samples are concatenated
/// train, then test-seen, then test-unseen.
pub fn export_dataset(
    ds: &Dataset,
    dir: &Path,
    format: FeatureFormat,
) -> Result<PathBuf, DataError> {
    let num_seen = ds.seen_signatures.rows();
    let num_unseen = ds.unseen_signatures.rows();
    let check_labels =
        |labels: &[usize], bound: usize, what: &str| match labels.iter().find(|&&l| l >= bound) {
            Some(&bad) => Err(DataError::Shape {
                message: format!("{what} label {bad} out of range for {bound} classes"),
            }),
            None => Ok(()),
        };
    check_labels(&ds.train_labels, num_seen, "train")?;
    check_labels(&ds.test_seen_labels, num_seen, "test_seen")?;
    check_labels(&ds.test_unseen_labels, num_unseen, "test_unseen")?;

    std::fs::create_dir_all(dir).map_err(|e| DataError::io(dir, e))?;

    let class_labels: Vec<u32> = (0..num_seen + num_unseen).map(|c| c as u32).collect();
    write_signatures_csv(
        &dir.join(SIGNATURES_CSV),
        &class_labels,
        &ds.all_signatures(),
    )?;

    let n_train = ds.train_x.rows();
    let n_seen = ds.test_seen_x.rows();
    let n_unseen = ds.test_unseen_x.rows();
    let d = ds.train_x.cols();
    let mut data = Vec::with_capacity((n_train + n_seen + n_unseen) * d);
    data.extend_from_slice(ds.train_x.as_slice());
    data.extend_from_slice(ds.test_seen_x.as_slice());
    data.extend_from_slice(ds.test_unseen_x.as_slice());
    let mut labels: Vec<u32> = Vec::with_capacity(n_train + n_seen + n_unseen);
    labels.extend(ds.train_labels.iter().map(|&l| l as u32));
    labels.extend(ds.test_seen_labels.iter().map(|&l| l as u32));
    labels.extend(ds.test_unseen_labels.iter().map(|&l| (num_seen + l) as u32));
    let table = FeatureTable {
        labels,
        features: Matrix::from_vec(n_train + n_seen + n_unseen, d, data),
    };
    let features_path = dir.join(format.file_name());
    match format {
        FeatureFormat::Zsb => write_zsb(&features_path, &table)?,
        FeatureFormat::Csv => write_features_csv(&features_path, &table)?,
    }

    let manifest = SplitManifest {
        trainval: (0..n_train).collect(),
        test_seen: (n_train..n_train + n_seen).collect(),
        test_unseen: (n_train + n_seen..n_train + n_seen + n_unseen).collect(),
        unseen_classes: Some(
            (num_seen..num_seen + num_unseen)
                .map(|c| c as u32)
                .collect(),
        ),
    };
    manifest.write(&dir.join(SPLITS_TXT))?;
    Ok(dir.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zsl_loader_{}_{tag}", std::process::id()))
    }

    #[test]
    fn class_map_is_bijective_in_signature_order() {
        let raw = [42u32, 7, 1000, 0];
        let map = ClassMap::from_labels(&raw).unwrap();
        assert_eq!(map.len(), 4);
        for (dense, &label) in raw.iter().enumerate() {
            assert_eq!(map.dense(label), Some(dense));
            assert_eq!(map.raw(dense), Some(label));
        }
        assert_eq!(map.dense(5), None);
        assert_eq!(map.raw(4), None);
        assert!(matches!(
            ClassMap::from_labels(&[1, 2, 1]),
            Err(DataError::DuplicateClass { label: 1 })
        ));
    }

    #[test]
    fn export_then_load_reproduces_the_dataset_exactly() {
        let ds = SyntheticConfig::new()
            .classes(5, 2)
            .dims(3, 4)
            .samples(4, 2)
            .seed(314)
            .build();
        for format in [FeatureFormat::Zsb, FeatureFormat::Csv] {
            let dir = temp_dir(&format!("rt_{format:?}"));
            export_dataset(&ds, &dir, format).unwrap();
            let bundle = DatasetBundle::load_with_format(&dir, format).unwrap();
            assert_eq!(
                bundle.num_samples(),
                ds.train_x.rows() + ds.test_seen_x.rows() + ds.test_unseen_x.rows()
            );
            let back = bundle.to_dataset().unwrap();
            assert_eq!(back.train_x.as_slice(), ds.train_x.as_slice());
            assert_eq!(back.train_labels, ds.train_labels);
            assert_eq!(back.test_seen_x.as_slice(), ds.test_seen_x.as_slice());
            assert_eq!(back.test_seen_labels, ds.test_seen_labels);
            assert_eq!(back.test_unseen_x.as_slice(), ds.test_unseen_x.as_slice());
            assert_eq!(back.test_unseen_labels, ds.test_unseen_labels);
            assert_eq!(
                back.seen_signatures.as_slice(),
                ds.seen_signatures.as_slice()
            );
            assert_eq!(
                back.unseen_signatures.as_slice(),
                ds.unseen_signatures.as_slice()
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn load_autodetects_zsb_over_csv() {
        let ds = SyntheticConfig::new()
            .classes(3, 1)
            .dims(2, 3)
            .samples(2, 1)
            .build();
        let dir = temp_dir("autodetect");
        export_dataset(&ds, &dir, FeatureFormat::Csv).unwrap();
        export_dataset(&ds, &dir, FeatureFormat::Zsb).unwrap();
        let bundle = DatasetBundle::load(&dir).unwrap();
        assert_eq!(bundle.num_samples(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
