//! Seeded synthetic dataset generation.
//!
//! Real ESZSL experiments load `res101.mat` / `att_splits.mat` feature dumps;
//! this generator ships a seeded synthetic regime instead so every train/eval
//! cycle runs without external files. Each class gets an attribute signature,
//! features are a fixed random linear image of that signature plus Gaussian
//! noise — exactly the regime where a linear feature→attribute projection is
//! recoverable, which is what the trainer tests exploit. Generated datasets
//! can be exported to disk with [`crate::data::export_dataset`] and reloaded
//! bit-identically through [`crate::data::DatasetBundle`].

use super::rng::Rng;
use crate::linalg::Matrix;

/// Configuration for [`Dataset::synthetic`], builder style.
///
/// Defaults produce a dataset on which the closed-form ESZSL trainer recovers
/// unseen classes essentially perfectly — the anchor for the end-to-end tests.
/// For that recovery the number of seen classes must exceed `attr_dim`:
/// `W` is learned from class-level equations, so fewer seen classes than
/// attributes leaves the projection rank-deficient.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of classes visible at training time.
    pub num_seen_classes: usize,
    /// Number of held-out classes only present in the test split.
    pub num_unseen_classes: usize,
    /// Dimension of the attribute/semantic signature vectors.
    pub attr_dim: usize,
    /// Dimension of the visual feature vectors.
    pub feature_dim: usize,
    /// Training samples generated per seen class. Must be positive: a zero
    /// here would silently produce an empty design matrix that every trainer
    /// rejects much later with a confusing shape error.
    pub train_samples_per_class: usize,
    /// Test samples generated per class (seen and unseen splits).
    pub test_samples_per_class: usize,
    /// Standard deviation of the additive Gaussian feature noise.
    pub noise_std: f64,
    /// PRNG seed; fully determines the dataset.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_seen_classes: 20,
            num_unseen_classes: 5,
            attr_dim: 16,
            feature_dim: 32,
            train_samples_per_class: 30,
            test_samples_per_class: 20,
            noise_std: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

impl SyntheticConfig {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set seen/unseen class counts.
    pub fn classes(mut self, seen: usize, unseen: usize) -> Self {
        self.num_seen_classes = seen;
        self.num_unseen_classes = unseen;
        self
    }

    /// Set attribute and feature dimensions.
    pub fn dims(mut self, attr_dim: usize, feature_dim: usize) -> Self {
        self.attr_dim = attr_dim;
        self.feature_dim = feature_dim;
        self
    }

    /// Set per-class sample counts for the train and test splits.
    pub fn samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_samples_per_class = train_per_class;
        self.test_samples_per_class = test_per_class;
        self
    }

    /// Set the feature noise standard deviation.
    pub fn noise(mut self, std: f64) -> Self {
        self.noise_std = std;
        self
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the dataset.
    ///
    /// Panics on configurations that cannot produce a trainable dataset:
    /// zero seen classes, zero dimensions, or zero training samples per class
    /// (the last would otherwise surface much later as an empty design
    /// matrix inside the trainer).
    pub fn build(self) -> Dataset {
        Dataset::synthetic(&self)
    }
}

/// A zero-shot learning dataset split into seen (train + test) and unseen
/// (test only) classes.
///
/// Labels index rows of the corresponding signature matrix: `train_labels[i]`
/// is a row of `seen_signatures`, `test_unseen_labels[i]` a row of
/// `unseen_signatures`.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Training features, `n_train x feature_dim`; seen classes only.
    pub train_x: Matrix,
    /// Training labels into `seen_signatures`.
    pub train_labels: Vec<usize>,
    /// Test features from seen classes, `n_test_seen x feature_dim`.
    pub test_seen_x: Matrix,
    /// Labels for `test_seen_x`, indices into `seen_signatures`.
    pub test_seen_labels: Vec<usize>,
    /// Test features from unseen classes, `n_test_unseen x feature_dim`.
    pub test_unseen_x: Matrix,
    /// Labels for `test_unseen_x`, indices into `unseen_signatures`.
    pub test_unseen_labels: Vec<usize>,
    /// Seen-class attribute signatures, `num_seen x attr_dim`.
    pub seen_signatures: Matrix,
    /// Unseen-class attribute signatures, `num_unseen x attr_dim`.
    pub unseen_signatures: Matrix,
}

impl Dataset {
    /// Deterministically generate a synthetic dataset from `config`.
    ///
    /// Construction: draw one signature per class (i.i.d. uniform in
    /// `[-1, 1]` per attribute), draw a fixed mixing matrix
    /// `M : feature_dim x attr_dim` with `N(0, 1/attr_dim)` entries shared by
    /// all classes, then emit samples `x = M s_c + noise_std * ε`. Because
    /// features are (noisy) linear images of signatures, a linear ZSL model
    /// can transfer from seen to unseen classes.
    pub fn synthetic(config: &SyntheticConfig) -> Dataset {
        assert!(config.num_seen_classes > 0, "need at least one seen class");
        assert!(
            config.attr_dim > 0 && config.feature_dim > 0,
            "dims must be positive"
        );
        assert!(
            config.train_samples_per_class > 0,
            "SyntheticConfig: train_samples_per_class must be > 0 — zero training \
             samples per seen class produces an empty design matrix that no trainer \
             can fit"
        );
        let mut rng = Rng::new(config.seed);

        let draw_signatures = |rng: &mut Rng, n: usize| {
            let data = (0..n * config.attr_dim)
                .map(|_| rng.uniform() * 2.0 - 1.0)
                .collect();
            Matrix::from_vec(n, config.attr_dim, data)
        };
        let seen_signatures = draw_signatures(&mut rng, config.num_seen_classes);
        let unseen_signatures = draw_signatures(&mut rng, config.num_unseen_classes);

        // Shared mixing matrix, scaled so feature magnitudes are O(1).
        let scale = 1.0 / (config.attr_dim as f64).sqrt();
        let mixing = Matrix::from_vec(
            config.feature_dim,
            config.attr_dim,
            (0..config.feature_dim * config.attr_dim)
                .map(|_| rng.normal() * scale)
                .collect(),
        );

        let emit = |rng: &mut Rng, signatures: &Matrix, per_class: usize| {
            // Noiseless class means M·s_c, computed once per class bank.
            let prototypes = signatures.matmul(&mixing.transpose());
            let n = signatures.rows() * per_class;
            let mut x = Matrix::zeros(n, config.feature_dim);
            let mut labels = Vec::with_capacity(n);
            let mut row_idx = 0;
            for class in 0..signatures.rows() {
                let prototype = prototypes.row(class).to_vec();
                for _ in 0..per_class {
                    let row = x.row_mut(row_idx);
                    for (f, &p) in row.iter_mut().zip(&prototype) {
                        *f = p + config.noise_std * rng.normal();
                    }
                    labels.push(class);
                    row_idx += 1;
                }
            }
            (x, labels)
        };

        let (train_x, train_labels) =
            emit(&mut rng, &seen_signatures, config.train_samples_per_class);
        let (test_seen_x, test_seen_labels) =
            emit(&mut rng, &seen_signatures, config.test_samples_per_class);
        let (test_unseen_x, test_unseen_labels) =
            emit(&mut rng, &unseen_signatures, config.test_samples_per_class);

        Dataset {
            train_x,
            train_labels,
            test_seen_x,
            test_seen_labels,
            test_unseen_x,
            test_unseen_labels,
            seen_signatures,
            unseen_signatures,
        }
    }

    /// Total number of classes across the seen and unseen splits.
    pub fn num_classes(&self) -> usize {
        self.seen_signatures.rows() + self.unseen_signatures.rows()
    }

    /// All class signatures stacked: seen rows first, then unseen rows.
    /// Used for generalized ZSL evaluation where the search space is the
    /// union of both class sets.
    pub fn all_signatures(&self) -> Matrix {
        let attr_dim = self.seen_signatures.cols();
        let mut data = Vec::with_capacity(self.num_classes() * attr_dim);
        data.extend_from_slice(self.seen_signatures.as_slice());
        data.extend_from_slice(self.unseen_signatures.as_slice());
        Matrix::from_vec(self.num_classes(), attr_dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_dataset_shapes_and_label_ranges() {
        let ds = SyntheticConfig::new()
            .classes(4, 3)
            .dims(8, 12)
            .samples(10, 5)
            .build();
        assert_eq!(ds.train_x.rows(), 4 * 10);
        assert_eq!(ds.train_x.cols(), 12);
        assert_eq!(ds.train_labels.len(), 40);
        assert_eq!(ds.test_seen_x.rows(), 4 * 5);
        assert_eq!(ds.test_unseen_x.rows(), 3 * 5);
        assert_eq!(ds.seen_signatures.rows(), 4);
        assert_eq!(ds.unseen_signatures.rows(), 3);
        assert_eq!(ds.seen_signatures.cols(), 8);
        assert!(ds.train_labels.iter().all(|&l| l < 4));
        assert!(ds.test_unseen_labels.iter().all(|&l| l < 3));
        assert_eq!(ds.num_classes(), 7);
        let all = ds.all_signatures();
        assert_eq!(all.rows(), 7);
        assert_eq!(all.row(4), ds.unseen_signatures.row(0));
    }

    #[test]
    fn same_seed_same_dataset_different_seed_different_dataset() {
        let a = SyntheticConfig::new().seed(1).build();
        let b = SyntheticConfig::new().seed(1).build();
        let c = SyntheticConfig::new().seed(2).build();
        assert_eq!(a.train_x.as_slice(), b.train_x.as_slice());
        assert_eq!(a.train_labels, b.train_labels);
        assert_ne!(a.train_x.as_slice(), c.train_x.as_slice());
    }

    #[test]
    #[should_panic(expected = "train_samples_per_class must be > 0")]
    fn zero_train_samples_per_class_is_rejected_at_build_time() {
        // Regression: this used to build an empty design matrix and fail much
        // later inside the trainer with an unrelated shape error.
        SyntheticConfig::new().samples(0, 5).build();
    }

    #[test]
    fn zero_test_samples_still_builds_a_trainable_dataset() {
        let ds = SyntheticConfig::new().classes(3, 2).samples(4, 0).build();
        assert_eq!(ds.train_x.rows(), 12);
        assert_eq!(ds.test_seen_x.rows(), 0);
        assert_eq!(ds.test_unseen_x.rows(), 0);
    }
}
