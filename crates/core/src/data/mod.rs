//! Datasets for the ZSL pipeline: seeded synthetic generation plus an
//! on-disk bundle subsystem for real feature dumps.
//!
//! Two ways to get a [`Dataset`]:
//!
//! - **Synthetic** ([`SyntheticConfig`]): hermetic, seed-determined data in
//!   the regime where a linear feature→attribute projection is recoverable —
//!   the anchor for the trainer tests.
//! - **From disk** ([`DatasetBundle`]): a bundle directory holding a feature
//!   table (compact `.zsb` binary or CSV), a `signatures.csv` class table,
//!   and a `splits.txt` manifest assigning samples to trainval / test-seen /
//!   test-unseen (mirroring the `att_splits` structure of the reference
//!   ESZSL code). Raw class labels are arbitrary `u32`s, remapped to dense
//!   ids by a [`ClassMap`]. Every loader failure is a typed [`DataError`].
//!
//! [`export_dataset`] writes any [`Dataset`] as a bundle; the round trip
//! (write → read → [`DatasetBundle::to_dataset`]) is bit-identical, which the
//! property tests in `tests/property.rs` sweep across shapes and seeds.
//!
//! For feature files larger than RAM, the [`stream`] module iterates bundles
//! chunk-at-a-time: [`StreamingBundle`] keeps features on disk and feeds the
//! out-of-core trainer/evaluator paths with peak feature memory
//! `O(chunk_rows x feature_dim)`, bit-identical to the in-memory pipeline.

mod error;
pub mod format;
mod loader;
mod rng;
pub mod stream;
mod synthetic;

pub use error::DataError;
pub use format::{
    FeatureTable, SectionLines, SplitManifest, ZsbWriter, ZSB_HEADER_LEN, ZSB_MAGIC, ZSB_VERSION,
};
pub use loader::{
    export_dataset, ClassMap, DatasetBundle, FeatureFormat, SplitPlan, FEATURES_CSV, FEATURES_ZSB,
    SIGNATURES_CSV, SPLITS_TXT,
};
pub use rng::Rng;
pub use stream::{
    ChunkReader, CsvChunkReader, CsvIndexedReader, CsvLineIndex, FeatureChunk, IndexedReader,
    SplitStream, StreamingBundle, ZsbChunkReader,
};
pub use synthetic::{Dataset, SyntheticConfig};
