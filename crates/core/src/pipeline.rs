//! The documented front door: a builder facade over the generic pipeline.
//!
//! ```
//! use zsl_core::{CrossValConfig, Pipeline, SyntheticConfig};
//!
//! # fn main() -> Result<(), zsl_core::ZslError> {
//! let ds = SyntheticConfig::new().classes(20, 4).seed(7).build();
//! let cv = CrossValConfig::new()
//!     .gammas(vec![0.1, 1.0, 10.0])
//!     .lambdas(vec![0.1, 1.0, 10.0])
//!     .folds(3);
//! let report = Pipeline::from(&ds).cross_validate(&cv)?.train()?.evaluate()?;
//! assert!(report.harmonic_mean > 0.9);
//! # Ok(())
//! # }
//! ```
//!
//! [`Pipeline`] wires the generic stages together — `(γ, λ)` selection via
//! [`cross_validate`], a final fit via the pipeline's [`Trainer`]
//! (ESZSL by default; [`Pipeline::with_trainer`] swaps in any other family,
//! e.g. [`crate::trainer::SaeTrainer`] or
//! [`crate::trainer::KernelEszslTrainer`]), GZSL scoring via
//! [`evaluate_gzsl_with`] — over any [`FeatureSource`]: swap the
//! in-memory dataset above for a [`crate::data::StreamingBundle`] and the
//! same chain runs out-of-core with bit-identical numbers. The model choice
//! is sticky: the trainer set once governs the sweep, the final fit, and the
//! artifact's provenance metadata. Each stage is a
//! thin delegation, so the facade adds no measurable overhead over calling
//! the stages directly (the `[bench] facade-vs-direct` line in
//! `tests/throughput.rs` tracks this).
//!
//! A trained pipeline exposes its [`ScoringEngine`] and can persist it as a
//! `.zsm` artifact ([`TrainedPipeline::save`]) whose provenance metadata
//! records the hyperparameters — serving then boots from that file alone
//! ([`ScoringEngine::load`] + [`evaluate_gzsl_with`] or raw `predict`).

use crate::error::ZslError;
use crate::eval::{
    cross_validate, cross_validate_with, evaluate_gzsl_with, CrossValConfig, CrossValReport,
    GzslReport,
};
use crate::infer::{ScoringEngine, Similarity};
use crate::model::{EszslConfig, EszslTrainer};
use crate::source::{DynSource, FeatureSource};
use crate::trainer::{TrainedModel, Trainer};
use std::path::Path;

/// Untrained pipeline: a source plus the training configuration to apply.
///
/// Build one with `Pipeline::from(&source)` (any [`FeatureSource`]),
/// optionally adjust the [`EszslConfig`] / similarity or run
/// [`Pipeline::cross_validate`], then [`Pipeline::train`].
#[derive(Clone, Debug)]
pub struct Pipeline<'a, S: FeatureSource + ?Sized> {
    source: &'a S,
    config: EszslConfig,
    /// `Some` once [`Pipeline::with_trainer`] chose a model family; `None`
    /// runs the historical ESZSL path driven by `config`, bit-for-bit.
    trainer: Option<Box<dyn Trainer>>,
    /// `Some` once set explicitly (or adopted from a sweep); `None` means
    /// "nobody chose yet" and resolves to cosine at train time.
    similarity: Option<Similarity>,
    /// Calibrated-stacking penalty `γ_cal` applied to the seen-class prefix
    /// of the union bank at serving time; 0 disables calibration (the
    /// historical behavior, bit-for-bit).
    calibration: f64,
    cv: Option<CrossValReport>,
}

impl<'a, S: FeatureSource + ?Sized> From<&'a S> for Pipeline<'a, S> {
    /// Start a pipeline over `source` with the default configuration
    /// (ESZSL, γ = λ = 1, no normalization, cosine similarity).
    fn from(source: &'a S) -> Self {
        Pipeline {
            source,
            config: EszslConfig::default(),
            trainer: None,
            similarity: None,
            calibration: 0.0,
            cv: None,
        }
    }
}

impl<'a, S: FeatureSource + ?Sized> Pipeline<'a, S> {
    /// Replace the ESZSL trainer configuration (regularizers +
    /// normalization). Ignored once [`Pipeline::with_trainer`] picked a
    /// different trainer — configure that trainer directly instead.
    pub fn config(mut self, config: EszslConfig) -> Self {
        self.config = config;
        self
    }

    /// Choose the model family: any [`Trainer`] — [`EszslTrainer`],
    /// [`crate::trainer::SaeTrainer`],
    /// [`crate::trainer::KernelEszslTrainer`], or a custom impl. The choice
    /// is sticky: [`Pipeline::cross_validate`] sweeps this trainer's own
    /// grid, [`Pipeline::train`] refits it at the winning point, and
    /// [`TrainedPipeline::save`] records its [`Trainer::describe`] string as
    /// artifact provenance.
    pub fn with_trainer<T: Trainer + 'static>(mut self, trainer: T) -> Self {
        self.trainer = Some(Box::new(trainer));
        self
    }

    /// Set the similarity used for scoring and evaluation. An explicit
    /// choice here is sticky: a later [`Pipeline::cross_validate`] sweeps
    /// *under* it rather than overwriting it.
    pub fn similarity(mut self, similarity: Similarity) -> Self {
        self.similarity = Some(similarity);
        self
    }

    /// Set the calibrated-stacking penalty `γ_cal` directly: the trained
    /// engine subtracts it from every seen-class score, trading a little
    /// seen accuracy for unseen accuracy in GZSL reports. `0` (the default)
    /// disables calibration. A later [`Pipeline::cross_validate`] whose
    /// [`CrossValConfig::calibrations`] grid is non-trivial overwrites this
    /// with the sweep winner.
    pub fn calibration(mut self, gamma_cal: f64) -> Self {
        self.calibration = gamma_cal;
        self
    }

    /// Select `(γ, λ)` by seeded k-fold cross-validation on the source's
    /// trainval split and adopt the winning pair for the subsequent
    /// [`Pipeline::train`]. The full [`CrossValReport`] is retained and
    /// available from the trained pipeline.
    ///
    /// The sweep runs under this pipeline's preprocessing: the normalization
    /// toggles (set via [`Pipeline::config`]) and any similarity set via
    /// [`Pipeline::similarity`] govern the sweep — hyperparameters are
    /// always selected for the exact model `train()` will fit and serve,
    /// never for a differently-configured one. When no similarity was set on
    /// the pipeline, the sweep's similarity is adopted for training. A
    /// [`CrossValConfig`] that explicitly enables normalization the pipeline
    /// will *not* train with is a contradiction and a typed
    /// [`ZslError::Config`], never a silently un-normalized sweep.
    pub fn cross_validate(mut self, config: &CrossValConfig) -> Result<Self, ZslError> {
        if let Some(trainer) = &self.trainer {
            if config.normalize_features || config.normalize_signatures {
                return Err(ZslError::Config(format!(
                    "the CrossValConfig enables normalization, but this pipeline's {} trainer \
                     already owns its preprocessing; set normalization on the trainer passed \
                     to Pipeline::with_trainer",
                    trainer.family()
                )));
            }
            let trainer = self.trainer.take().expect("just checked");
            let mut sweep = config.clone();
            if let Some(similarity) = self.similarity {
                sweep.similarity = similarity;
            }
            let cv = cross_validate_with(trainer.as_ref(), &DynSource(self.source), &sweep)?;
            self.trainer = Some(trainer.with_point(cv.best.gamma, cv.best.lambda));
            self.similarity = Some(sweep.similarity);
            self.calibration = cv.best.calibration;
            self.cv = Some(cv);
            return Ok(self);
        }
        if (config.normalize_features && !self.config.normalize_features)
            || (config.normalize_signatures && !self.config.normalize_signatures)
        {
            return Err(ZslError::Config(
                "the CrossValConfig enables normalization that this pipeline's EszslConfig \
                 does not; set normalization via Pipeline::config, which governs both the \
                 sweep and the final fit"
                    .into(),
            ));
        }
        let mut sweep = config
            .clone()
            .normalize_features(self.config.normalize_features)
            .normalize_signatures(self.config.normalize_signatures);
        if let Some(similarity) = self.similarity {
            sweep.similarity = similarity;
        }
        let cv = cross_validate(self.source, &sweep)?;
        self.config.gamma = cv.best.gamma;
        self.config.lambda = cv.best.lambda;
        self.similarity = Some(sweep.similarity);
        self.calibration = cv.best.calibration;
        self.cv = Some(cv);
        Ok(self)
    }

    /// Fit the pipeline's trainer on the trainval split and build the
    /// serving engine over the source's union signature bank, applying any
    /// calibrated-stacking penalty to the bank's seen-class prefix.
    pub fn train(self) -> Result<TrainedPipeline<'a, S>, ZslError> {
        let similarity = self.similarity.unwrap_or_default();
        let model: TrainedModel = match &self.trainer {
            Some(trainer) => trainer.fit(&DynSource(self.source))?,
            None => EszslTrainer::new(self.config.clone())
                .fit(self.source)?
                .into(),
        };
        // Fallible construction + calibration: this path feeds artifacts and
        // servers, so malformed parts (or a γ_cal that cannot apply) must be
        // typed errors, not panics. γ_cal = 0 leaves the engine untouched.
        let engine = ScoringEngine::try_new(model, self.source.union_signatures(), similarity)?
            .with_calibration(self.calibration, self.source.num_seen_classes())?;
        Ok(TrainedPipeline {
            source: self.source,
            engine,
            config: self.config,
            trainer: self.trainer,
            cv: self.cv,
        })
    }
}

/// A trained pipeline: the scoring engine plus the source it came from.
#[derive(Clone, Debug)]
pub struct TrainedPipeline<'a, S: FeatureSource + ?Sized> {
    source: &'a S,
    engine: ScoringEngine,
    config: EszslConfig,
    trainer: Option<Box<dyn Trainer>>,
    cv: Option<CrossValReport>,
}

impl<S: FeatureSource + ?Sized> TrainedPipeline<'_, S> {
    /// Run the GZSL protocol on the source's test splits — bit-identical to
    /// [`crate::eval::evaluate_gzsl`] with this pipeline's model.
    pub fn evaluate(&self) -> Result<GzslReport, ZslError> {
        evaluate_gzsl_with(&self.engine, self.source)
    }

    /// The serving engine (cached union bank, parallel scoring).
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// Consume the pipeline, keeping the engine (e.g. to move it into a
    /// server).
    pub fn into_engine(self) -> ScoringEngine {
        self.engine
    }

    /// The trained model (any family).
    pub fn model(&self) -> &TrainedModel {
        self.engine.model()
    }

    /// The ESZSL trainer configuration that produced this model (after any
    /// cross-validated `(γ, λ)` adoption). Reflects the fit only when no
    /// [`Pipeline::with_trainer`] override was set — see
    /// [`TrainedPipeline::trainer`] otherwise.
    pub fn config(&self) -> &EszslConfig {
        &self.config
    }

    /// The trainer override that produced this model, when
    /// [`Pipeline::with_trainer`] set one (after any cross-validated
    /// `(γ, λ)` adoption).
    pub fn trainer(&self) -> Option<&dyn Trainer> {
        self.trainer.as_deref()
    }

    /// The cross-validation report, when [`Pipeline::cross_validate`] ran.
    pub fn cv_report(&self) -> Option<&CrossValReport> {
        self.cv.as_ref()
    }

    /// Persist the engine as a `.zsm` artifact whose provenance metadata
    /// records how it was trained — γ, λ, normalization toggles, similarity,
    /// and the class counts — so a serving process can boot from this file
    /// alone and an operator can later tell artifacts apart.
    pub fn save(&self, path: &Path) -> Result<(), ZslError> {
        let trainer = match &self.trainer {
            Some(t) => t.describe(),
            None => format!(
                "trainer=eszsl; gamma={}; lambda={}; normalize_features={}; \
                 normalize_signatures={}",
                self.config.gamma,
                self.config.lambda,
                self.config.normalize_features,
                self.config.normalize_signatures,
            ),
        };
        let mut metadata = format!(
            "{trainer}; similarity={}; seen_classes={}; unseen_classes={}",
            self.engine.similarity(),
            self.source.num_seen_classes(),
            self.source.num_unseen_classes(),
        );
        if let Some((gamma_cal, _)) = self.engine.seen_calibration() {
            metadata.push_str(&format!("; gamma_cal={gamma_cal}"));
        }
        self.engine.save_with_metadata(path, &metadata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;
    use crate::eval::select_train_evaluate;

    #[test]
    fn facade_matches_the_direct_protocol_bit_for_bit() {
        let ds = SyntheticConfig::new().seed(404).build();
        let config = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![1.0])
            .folds(3)
            .seed(9);
        let (direct_cv, direct_report) = select_train_evaluate(&ds, &config).expect("direct");
        let trained = Pipeline::from(&ds)
            .cross_validate(&config)
            .expect("cv")
            .train()
            .expect("train");
        assert_eq!(trained.cv_report(), Some(&direct_cv));
        assert_eq!(trained.config().gamma, direct_cv.best.gamma);
        let report = trained.evaluate().expect("evaluate");
        assert_eq!(report, direct_report);
    }

    #[test]
    fn cross_validation_sweeps_under_the_pipelines_normalization() {
        // Selecting (γ, λ) on raw features and then training on normalized
        // ones would tune a different model than the one shipped; the facade
        // must run the sweep under its own normalization toggles.
        let ds = SyntheticConfig::new().seed(88).build();
        let cfg = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![0.1, 1.0])
            .folds(3)
            .seed(5);
        let trained = Pipeline::from(&ds)
            .config(
                EszslConfig::new()
                    .normalize_features(true)
                    .normalize_signatures(true),
            )
            .cross_validate(&cfg)
            .expect("cv")
            .train()
            .expect("train");
        let normalized_sweep = crate::eval::cross_validate(
            &ds,
            &cfg.clone()
                .normalize_features(true)
                .normalize_signatures(true),
        )
        .expect("normalized cv");
        assert_eq!(trained.cv_report(), Some(&normalized_sweep));
        // The toggles survive the (γ, λ) adoption into the final fit.
        assert!(trained.config().normalize_features);
        assert!(trained.config().normalize_signatures);
        let direct = EszslConfig::new()
            .gamma(normalized_sweep.best.gamma)
            .lambda(normalized_sweep.best.lambda)
            .normalize_features(true)
            .normalize_signatures(true)
            .build()
            .fit(&ds)
            .expect("fit");
        assert_eq!(
            trained
                .model()
                .projection()
                .expect("linear")
                .weights()
                .as_slice(),
            direct.weights().as_slice()
        );
    }

    #[test]
    fn contradictory_sweep_normalization_is_a_typed_error() {
        // Asking the sweep for normalization the pipeline will not train
        // with must fail loudly, not silently run an un-normalized sweep.
        let ds = SyntheticConfig::new().seed(14).build();
        let cfg = CrossValConfig::new()
            .gammas(vec![1.0])
            .lambdas(vec![1.0])
            .folds(2)
            .normalize_features(true);
        let err = Pipeline::from(&ds).cross_validate(&cfg).unwrap_err();
        assert!(
            matches!(&err, ZslError::Config(msg) if msg.contains("Pipeline::config")),
            "got {err:?}"
        );
        // Agreement (both normalized) is fine.
        Pipeline::from(&ds)
            .config(EszslConfig::new().normalize_features(true))
            .cross_validate(&cfg)
            .expect("consistent normalization");
    }

    #[test]
    fn explicit_similarity_is_sticky_through_cross_validation() {
        // similarity(Dot) then cross_validate must sweep under Dot and serve
        // Dot — not silently reset to the CrossValConfig's cosine.
        let ds = SyntheticConfig::new().seed(66).build();
        let cfg = CrossValConfig::new()
            .gammas(vec![0.1, 1.0])
            .lambdas(vec![1.0])
            .folds(3)
            .seed(2);
        let trained = Pipeline::from(&ds)
            .similarity(Similarity::Dot)
            .cross_validate(&cfg)
            .expect("cv")
            .train()
            .expect("train");
        assert_eq!(trained.engine().similarity(), Similarity::Dot);
        let dot_sweep = crate::eval::cross_validate(&ds, &cfg.clone().similarity(Similarity::Dot))
            .expect("dot cv");
        assert_eq!(trained.cv_report(), Some(&dot_sweep));
        // Without an explicit choice, the sweep's similarity is adopted.
        let adopted = Pipeline::from(&ds)
            .cross_validate(&cfg.similarity(Similarity::Dot))
            .expect("cv")
            .train()
            .expect("train");
        assert_eq!(adopted.engine().similarity(), Similarity::Dot);
    }

    #[test]
    fn facade_without_cv_uses_the_given_config() {
        let ds = SyntheticConfig::new().seed(21).build();
        let trained = Pipeline::from(&ds)
            .config(EszslConfig::new().gamma(0.5).lambda(2.0))
            .similarity(Similarity::Dot)
            .train()
            .expect("train");
        assert!(trained.cv_report().is_none());
        let direct = EszslConfig::new()
            .gamma(0.5)
            .lambda(2.0)
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        assert_eq!(
            trained
                .model()
                .projection()
                .expect("linear")
                .weights()
                .as_slice(),
            direct.weights().as_slice()
        );
        assert_eq!(trained.engine().similarity(), Similarity::Dot);
    }

    #[test]
    fn trainer_override_is_sticky_from_sweep_to_artifact_metadata() {
        use crate::eval::{cross_validate_with, select_train_evaluate_with};
        use crate::source::DynSource;
        use crate::trainer::{ModelFamily, SaeConfig, SaeTrainer};

        let ds = SyntheticConfig::new().seed(31).build();
        let cfg = CrossValConfig::new()
            .gammas(vec![1.0])
            .lambdas(vec![0.1, 1.0, 10.0])
            .folds(3)
            .seed(8);
        let trained = Pipeline::from(&ds)
            .with_trainer(SaeTrainer::new(SaeConfig::new()))
            .cross_validate(&cfg)
            .expect("cv")
            .train()
            .expect("train");
        assert_eq!(trained.model().family(), ModelFamily::Sae);
        // Same numbers as the direct generic protocol.
        let sae = SaeTrainer::new(SaeConfig::new());
        let direct_cv = cross_validate_with(&sae, &DynSource(&ds), &cfg).expect("direct cv");
        assert_eq!(trained.cv_report(), Some(&direct_cv));
        let (_, direct_report) =
            select_train_evaluate_with(&sae, &DynSource(&ds), &cfg).expect("direct");
        assert_eq!(trained.evaluate().expect("evaluate"), direct_report);
        // The adopted λ shows up in the provenance the artifact will carry.
        let description = trained.trainer().expect("override").describe();
        assert!(
            description.contains(&format!("trainer=sae; lambda={}", direct_cv.best.lambda)),
            "got {description}"
        );
    }

    #[test]
    fn trainer_override_rejects_sweep_normalization() {
        use crate::trainer::{SaeConfig, SaeTrainer};

        let ds = SyntheticConfig::new().seed(13).build();
        let cfg = CrossValConfig::new()
            .gammas(vec![1.0])
            .lambdas(vec![1.0])
            .folds(2)
            .normalize_features(true);
        let err = Pipeline::from(&ds)
            .with_trainer(SaeTrainer::new(SaeConfig::new()))
            .cross_validate(&cfg)
            .unwrap_err();
        assert!(
            matches!(&err, ZslError::Config(msg) if msg.contains("with_trainer")),
            "got {err:?}"
        );
    }
}
