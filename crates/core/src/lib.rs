//! # zsl-core — a zero-shot learning engine
//!
//! Reproduces the embedding-projection family of zero-shot learning (ZSL)
//! methods (conf_sc_WangZSLY09; same closed-form family as ESZSL and the
//! Semantic Autoencoder): learn a linear map `W` from visual features to
//! class attribute/semantic vectors on *seen* classes, then classify *unseen*
//! classes — classes with zero training samples — by nearest semantic
//! signature.
//!
//! ## Pipeline: feature → attribute → class
//!
//! 1. **Features** `X : n x d` — one row per sample (e.g. CNN embeddings; here,
//!    hermetic synthetic features from [`data::SyntheticConfig`]).
//! 2. **Projection** — [`model::EszslTrainer`] solves the closed form
//!    `W = (XᵀX + γI)⁻¹ XᵀYS (SᵀS + λI)⁻¹` on seen classes
//!    ([`model::RidgeTrainer`] is the simpler fallback). `X W` lands samples
//!    in attribute space.
//! 3. **Class** — [`infer::Classifier`] scores projected samples against a
//!    bank of class signatures (cosine or dot similarity) and picks the
//!    nearest; unseen classes are classified purely via their signatures.
//!
//! ## Module map
//!
//! | Module | Paper concept |
//! |--------|---------------|
//! | [`linalg`] | dense math: blocked + row-banded parallel matmul, packed `A·Bᵀ` kernel, Cholesky solves for the two SPD systems |
//! | [`model`] | the closed-form trainer (Eq. `W = (XᵀX+γI)⁻¹XᵀYS(SᵀS+λI)⁻¹`), [`model::EszslProblem`] Gram reuse for grid searches |
//! | [`infer`] | [`infer::ScoringEngine`] (cached bank, parallel + chunked batch scoring), nearest-signature classification, top-k, ZSL/GZSL metrics |
//! | [`data`]  | seeded synthetic datasets **plus** on-disk bundles: `.zsb`/CSV feature dumps, signature tables, and `att_splits`-style split manifests loaded by [`data::DatasetBundle`] — or streamed chunk-at-a-time by [`data::StreamingBundle`] when features exceed RAM |
//! | [`eval`]  | the GZSL protocol ([`eval::GzslReport`]) and seeded k-fold `(γ, λ)` cross-validation ([`eval::cross_validate`]), each with a bit-identical out-of-core twin (`*_stream`) |
//!
//! ## End-to-end example
//!
//! ```
//! use zsl_core::data::SyntheticConfig;
//! use zsl_core::infer::{mean_per_class_accuracy, Classifier, Similarity};
//! use zsl_core::model::EszslConfig;
//!
//! let ds = SyntheticConfig::new().classes(20, 4).seed(7).build();
//! let model = EszslConfig::new()
//!     .gamma(1.0)
//!     .lambda(1.0)
//!     .build()
//!     .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
//!     .unwrap();
//! let clf = Classifier::new(model, ds.unseen_signatures.clone(), Similarity::Cosine);
//! let predictions = clf.predict(&ds.test_unseen_x);
//! let acc = mean_per_class_accuracy(&predictions, &ds.test_unseen_labels, 4);
//! assert!(acc > 0.9);
//! ```

pub mod data;
pub mod eval;
pub mod infer;
pub mod linalg;
pub mod model;

pub use data::{
    export_dataset, ClassMap, CsvChunkReader, DataError, Dataset, DatasetBundle, FeatureChunk,
    FeatureFormat, FeatureTable, Rng, SplitManifest, SplitPlan, SplitStream, StreamingBundle,
    SyntheticConfig, ZsbChunkReader,
};
pub use eval::{
    cross_validate, cross_validate_stream, evaluate_gzsl, evaluate_gzsl_stream,
    select_train_evaluate, select_train_evaluate_stream, CrossValConfig, CrossValReport, EvalError,
    GridPoint, GzslReport,
};
pub use infer::{
    harmonic_mean, mean_per_class_accuracy, overall_accuracy, per_class_accuracy,
    ClassAccuracyCounter, Classifier, ScoringEngine, Similarity, TopK,
};
pub use linalg::{default_threads, solve_spd, Cholesky, LinalgError, Matrix};
pub use model::{
    EszslConfig, EszslProblem, EszslTrainer, GramAccumulator, ProjectionModel, RidgeConfig,
    RidgeTrainer, TrainError,
};
