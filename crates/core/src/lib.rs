pub fn placeholder() {}
