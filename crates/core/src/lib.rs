//! # zsl-core — a zero-shot learning engine
//!
//! Reproduces the embedding-projection family of zero-shot learning (ZSL)
//! methods (conf_sc_WangZSLY09; same closed-form family as ESZSL and the
//! Semantic Autoencoder): learn a linear map `W` from visual features to
//! class attribute/semantic vectors on *seen* classes, then classify *unseen*
//! classes — classes with zero training samples — by nearest semantic
//! signature.
//!
//! ## One pipeline, any source
//!
//! The public API is organized around two ideas:
//!
//! - **[`FeatureSource`]** — anything that can stream its GZSL splits as
//!   `(features, labels)` chunks: an in-memory [`Dataset`], an out-of-core
//!   [`StreamingBundle`] (features stay on disk, peak memory
//!   `O(chunk_rows x feature_dim)`), or a bare [`MemorySource`]. Every
//!   train/evaluate entry point is ONE generic function over this trait, and
//!   results are **bit-identical** across sources and chunk sizes.
//! - **[`Pipeline`]** — the documented front door chaining the stages:
//!
//! ```
//! use zsl_core::{CrossValConfig, Pipeline, SyntheticConfig};
//!
//! # fn main() -> Result<(), zsl_core::ZslError> {
//! let ds = SyntheticConfig::new().classes(20, 4).seed(7).build();
//! let cv = CrossValConfig::new()
//!     .gammas(vec![0.1, 1.0, 10.0])
//!     .lambdas(vec![0.1, 1.0, 10.0])
//!     .folds(3);
//! let trained = Pipeline::from(&ds)
//!     .cross_validate(&cv)?  // pick (γ, λ) on seen classes only
//!     .train()?;             // fit + build the serving engine
//! let report = trained.evaluate()?; // GZSL protocol
//! assert!(report.harmonic_mean > 0.9);
//! # Ok(())
//! # }
//! ```
//!
//! A trained pipeline persists as a versioned **`.zsm` model artifact**
//! (`trained.save(path)?` / [`ScoringEngine::load`]), so a serving process
//! boots from one small file — no training data, no re-solve — and
//! reproduces predictions bit-for-bit.
//!
//! ## Pipeline: feature → attribute → class
//!
//! 1. **Features** `X : n x d` — one row per sample (e.g. CNN embeddings;
//!    here, hermetic synthetic features from [`data::SyntheticConfig`] or
//!    on-disk bundles).
//! 2. **Projection** — [`model::EszslTrainer`] solves the closed form
//!    `W = (XᵀX + γI)⁻¹ XᵀYS (SᵀS + λI)⁻¹` on seen classes
//!    ([`model::RidgeTrainer`] is the simpler fallback). `X W` lands samples
//!    in attribute space.
//! 3. **Class** — [`infer::ScoringEngine`] scores projected samples against a
//!    bank of class signatures (cosine or dot similarity) and picks the
//!    nearest; unseen classes are classified purely via their signatures.
//!
//! ## Module map
//!
//! | Module | Role |
//! |--------|------|
//! | [`pipeline`] | the [`Pipeline`] builder facade: source → CV → train → evaluate / save |
//! | [`source`] | the [`FeatureSource`] trait + [`MemorySource`]; implemented by [`Dataset`] and [`StreamingBundle`] |
//! | [`linalg`] | dense math: blocked + row-banded parallel matmul, packed `A·Bᵀ` kernel, Cholesky solves for the two SPD systems |
//! | [`model`] | the closed-form trainer (Eq. `W = (XᵀX+γI)⁻¹XᵀYS(SᵀS+λI)⁻¹`); [`model::GramAccumulator`] is the single Gram fold behind every source kind |
//! | [`infer`] | [`infer::ScoringEngine`] (cached bank, parallel + chunked batch scoring), nearest-signature classification, top-k, ZSL/GZSL metrics |
//! | [`artifact`] | the versioned `.zsm` model artifact: [`ScoringEngine::save`] / [`ScoringEngine::load`], bit-identical round trips |
//! | [`data`]  | seeded synthetic datasets **plus** on-disk bundles: `.zsb`/CSV feature dumps, signature tables, split manifests — loaded whole by [`data::DatasetBundle`] or streamed chunk-at-a-time by [`StreamingBundle`] (CSV gets shuffled reads via [`data::CsvLineIndex`]) |
//! | [`eval`]  | the generic GZSL protocol ([`eval::GzslReport`]) and seeded k-fold `(γ, λ)` cross-validation ([`eval::cross_validate`]) over any source |
//! | [`trainer`] | the object-safe [`Trainer`] trait + [`TrainedModel`]: ESZSL, the Sylvester-solved [`trainer::SaeTrainer`], and [`trainer::KernelEszslTrainer`] (linear/RBF), all streaming through the same accumulator |
//!
//! Errors across the pipeline unify into the top-level [`ZslError`], which
//! chains inner causes through [`std::error::Error::source`].
//!
//! ## Low-level example (no facade)
//!
//! ```
//! use zsl_core::data::SyntheticConfig;
//! use zsl_core::infer::{mean_per_class_accuracy, Classifier, Similarity};
//! use zsl_core::model::EszslConfig;
//!
//! let ds = SyntheticConfig::new().classes(20, 4).seed(7).build();
//! let model = EszslConfig::new()
//!     .gamma(1.0)
//!     .lambda(1.0)
//!     .build()
//!     .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
//!     .unwrap();
//! let clf = Classifier::new(model, ds.unseen_signatures.clone(), Similarity::Cosine);
//! let predictions = clf.predict(&ds.test_unseen_x);
//! let acc = mean_per_class_accuracy(&predictions, &ds.test_unseen_labels, 4);
//! assert!(acc > 0.9);
//! ```

pub mod artifact;
pub mod data;
mod error;
pub mod eval;
pub(crate) mod fsutil;
pub mod infer;
pub mod linalg;
mod mmap;
pub mod model;
pub mod pipeline;
pub mod source;
pub mod trainer;

pub use artifact::{ZSM_HEADER_LEN, ZSM_MAGIC, ZSM_MIN_VERSION, ZSM_NORM_TOLERANCE, ZSM_VERSION};
pub use data::{
    export_dataset, ClassMap, CsvChunkReader, CsvIndexedReader, CsvLineIndex, DataError, Dataset,
    DatasetBundle, FeatureChunk, FeatureFormat, FeatureTable, Rng, SectionLines, SplitManifest,
    SplitPlan, SplitStream, StreamingBundle, SyntheticConfig, ZsbChunkReader, ZsbWriter,
};
pub use error::ZslError;
pub use eval::{
    cross_validate, cross_validate_with, evaluate_gzsl, evaluate_gzsl_with, select_train_evaluate,
    select_train_evaluate_with, CrossValConfig, CrossValReport, GridPoint, GzslReport,
};
pub use infer::{
    harmonic_mean, mean_per_class_accuracy, overall_accuracy, per_class_accuracy, BankShards,
    BankView, ClassAccuracyCounter, Classifier, ScoringEngine, ScoringPrecision, Similarity, TopK,
};
pub use linalg::{
    default_threads, pool_threads, solve_spd, solve_sylvester, Cholesky, LinalgError, Matrix,
    SymmetricEigen,
};
pub use model::{
    EszslConfig, EszslProblem, EszslTrainer, GramAccumulator, ProjectionModel, RidgeConfig,
    RidgeTrainer, TrainError,
};
pub use pipeline::{Pipeline, TrainedPipeline};
pub use source::{DynSource, FeatureSource, MemorySource, SourceChunk, SourceStream, SplitKind};
pub use trainer::{
    KernelEszslConfig, KernelEszslTrainer, KernelKind, KernelModel, ModelFamily, SaeConfig,
    SaeTrainer, TrainedModel, Trainer,
};
