//! Crash-safe file writes, shared by every artifact and bundle writer.
//!
//! The pattern (proven out by the `.zsm` saver): write into a temp file *in
//! the target's directory* (renames across filesystems fail), named with a
//! pid + process-wide-counter suffix so no two concurrent saves can share a
//! temp file — not even two saves to the same target path, which is exactly
//! what a hot-swap retrainer does. The data is fsynced before the rename;
//! without that, delayed allocation can commit the rename before the bytes
//! and a power loss would leave a truncated "new" file. Any failure removes
//! the temp file rather than leaving partial bytes (e.g. on a full disk)
//! behind. Readers therefore only ever observe the old complete file or the
//! new complete file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An I/O failure during an atomic write, carrying the path it occurred on
/// (the temp file for write/sync failures, the target for rename failures).
#[derive(Debug)]
pub(crate) struct AtomicWriteError {
    /// File the failing operation targeted.
    pub path: PathBuf,
    /// The OS-level error.
    pub source: std::io::Error,
}

/// A sibling path of `target` that no other in-flight save can collide
/// with: `<target>.<pid>.<counter>.tmp`.
pub(crate) fn unique_temp_sibling(target: &Path) -> PathBuf {
    let mut tmp_name = target.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    target.with_file_name(tmp_name)
}

/// Atomically replace `target` with `bytes`: unique temp sibling, write,
/// fsync, rename. On any failure the temp file is removed and the previous
/// `target` (if any) is untouched.
pub(crate) fn write_atomic(target: &Path, bytes: &[u8]) -> Result<(), AtomicWriteError> {
    let tmp = unique_temp_sibling(target);
    let write_synced = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()
    })();
    if let Err(e) = write_synced {
        std::fs::remove_file(&tmp).ok();
        return Err(AtomicWriteError {
            path: tmp,
            source: e,
        });
    }
    commit_temp(&tmp, target)
}

/// Rename a fully written, fsynced temp file over `target`, removing the
/// temp file on failure. Used directly by streaming writers that manage
/// their own temp-file handle.
pub(crate) fn commit_temp(tmp: &Path, target: &Path) -> Result<(), AtomicWriteError> {
    std::fs::rename(tmp, target).map_err(|e| {
        std::fs::remove_file(tmp).ok();
        AtomicWriteError {
            path: target.into(),
            source: e,
        }
    })
}
