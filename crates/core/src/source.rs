//! The source abstraction of the unified pipeline API.
//!
//! A [`FeatureSource`] is anything that can hand the pipeline its three GZSL
//! splits as chunked `(features, labels)` streams plus the class signature
//! banks: an in-memory [`Dataset`], an out-of-core [`StreamingBundle`], or a
//! bare [`MemorySource`] wrapping a feature matrix and labels. Every generic
//! entry point — [`crate::model::EszslTrainer::fit`],
//! [`crate::eval::evaluate_gzsl`], [`crate::eval::cross_validate`],
//! [`crate::eval::select_train_evaluate`],
//! [`crate::infer::ScoringEngine::predict_source`], and the
//! [`crate::pipeline::Pipeline`] facade — is written against this trait, so
//! one code path serves every source kind.
//!
//! **Bit-identity.** Chunks preserve row order, the Gram folds
//! ([`crate::model::GramAccumulator`]) accumulate in ascending row order, and
//! accuracy counting is integral, so every consumer produces results
//! bit-for-bit equal across sources and chunk sizes — the differential suite
//! in `tests/streaming_equiv.rs` enforces this through the *same* generic
//! code path for all sources, rather than comparing two parallel
//! implementations.
//!
//! Chunks are [`Cow`]s: in-memory sources lend their matrices without
//! copying, disk-backed sources hand over owned chunks. The trait is object
//! safe, so heterogeneous callers (e.g. a CLI choosing between in-memory and
//! streamed ingestion at runtime) can work through `&dyn FeatureSource`.

use crate::data::{DataError, Dataset, StreamingBundle};
use crate::error::ZslError;
use crate::linalg::Matrix;
use std::borrow::Cow;

/// Which GZSL split of a source to stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitKind {
    /// Seen-class training samples; labels are seen-class ranks.
    Trainval,
    /// Held-out seen-class samples; labels are seen-class ranks.
    TestSeen,
    /// Unseen-class samples; labels are unseen-class ranks.
    TestUnseen,
}

/// One streamed block: feature rows paired with their (local-rank) labels.
pub type SourceChunk<'a> = (Cow<'a, Matrix>, Cow<'a, [usize]>);

/// A chunked stream over one split of a source. Boxed so the trait stays
/// object safe; the per-chunk dynamic dispatch is noise next to the dense
/// kernels each chunk feeds (the `[bench] facade-vs-direct` line in
/// `tests/throughput.rs` keeps that claim honest).
pub type SourceStream<'a> = Box<dyn Iterator<Item = Result<SourceChunk<'a>, ZslError>> + 'a>;

/// A source of labeled feature data for the ZSL pipeline: three splits
/// streamable in chunks, plus the seen/unseen signature banks.
///
/// Labels in every yielded chunk are *local ranks*: trainval and test-seen
/// labels index rows of [`FeatureSource::seen_signatures`], test-unseen
/// labels index rows of [`FeatureSource::unseen_signatures`] — the same
/// convention the in-memory [`Dataset`] fields use.
pub trait FeatureSource {
    /// Number of samples in one split.
    fn split_len(&self, split: SplitKind) -> usize;

    /// Number of trainval samples (the unit cross-validation folds over).
    fn trainval_len(&self) -> usize {
        self.split_len(SplitKind::Trainval)
    }

    /// Seen-class signature bank, `num_seen x attr_dim`, rank order.
    fn seen_signatures(&self) -> Cow<'_, Matrix>;

    /// Unseen-class signature bank, `num_unseen x attr_dim`, rank order.
    fn unseen_signatures(&self) -> Cow<'_, Matrix>;

    /// Stream one split as `(features, labels)` chunks, in source order.
    fn stream(&self, split: SplitKind) -> Result<SourceStream<'_>, ZslError>;

    /// Stream an arbitrary subset of the trainval split, given positions
    /// *within* that split (the shape a cross-validation fold produces), in
    /// the given order. Out-of-range positions are a typed error.
    fn stream_trainval_subset(&self, positions: &[usize]) -> Result<SourceStream<'_>, ZslError>;

    /// Number of seen classes. Default: rows of the seen bank.
    fn num_seen_classes(&self) -> usize {
        self.seen_signatures().rows()
    }

    /// Number of unseen classes. Default: rows of the unseen bank.
    fn num_unseen_classes(&self) -> usize {
        self.unseen_signatures().rows()
    }

    /// Seen then unseen signatures stacked — the union bank generalized
    /// evaluation scores against. The default stacks the two banks in rank
    /// order, matching [`Dataset::all_signatures`] byte for byte.
    fn union_signatures(&self) -> Matrix {
        let seen = self.seen_signatures();
        let unseen = self.unseen_signatures();
        let attr_dim = seen.cols();
        let rows = seen.rows() + unseen.rows();
        let mut data = Vec::with_capacity(rows * attr_dim);
        data.extend_from_slice(seen.as_slice());
        data.extend_from_slice(unseen.as_slice());
        Matrix::from_vec(rows, attr_dim, data)
    }
}

/// Sized delegating wrapper that turns any `&S` (including `&dyn
/// FeatureSource` itself) into something coercible to `&dyn FeatureSource`.
///
/// Generic functions over `S: FeatureSource + ?Sized` cannot unsize `&S`
/// directly, but `&DynSource<S>` is a reference to a *sized* type, so the
/// coercion applies — this is how the generic eval entry points hand their
/// source to the object-safe [`crate::trainer::Trainer`] API.
pub struct DynSource<'s, S: FeatureSource + ?Sized>(pub &'s S);

impl<S: FeatureSource + ?Sized> FeatureSource for DynSource<'_, S> {
    fn split_len(&self, split: SplitKind) -> usize {
        self.0.split_len(split)
    }

    fn trainval_len(&self) -> usize {
        self.0.trainval_len()
    }

    fn seen_signatures(&self) -> Cow<'_, Matrix> {
        self.0.seen_signatures()
    }

    fn unseen_signatures(&self) -> Cow<'_, Matrix> {
        self.0.unseen_signatures()
    }

    fn stream(&self, split: SplitKind) -> Result<SourceStream<'_>, ZslError> {
        self.0.stream(split)
    }

    fn stream_trainval_subset(&self, positions: &[usize]) -> Result<SourceStream<'_>, ZslError> {
        self.0.stream_trainval_subset(positions)
    }

    fn num_seen_classes(&self) -> usize {
        self.0.num_seen_classes()
    }

    fn num_unseen_classes(&self) -> usize {
        self.0.num_unseen_classes()
    }

    fn union_signatures(&self) -> Matrix {
        self.0.union_signatures()
    }
}

/// Shared out-of-range check for trainval-subset positions, matching the
/// error the streaming loader raises.
fn validate_subset_positions(positions: &[usize], len: usize) -> Result<(), ZslError> {
    if let Some(&bad) = positions.iter().find(|&&p| p >= len) {
        return Err(ZslError::Data(DataError::split(format!(
            "trainval-subset position {bad} out of range for {len} trainval samples"
        ))));
    }
    Ok(())
}

/// A materialized [`Dataset`] is a zero-copy source: every split streams as
/// one borrowed chunk, and fold subsets gather rows exactly as the pre-PR 5
/// in-memory cross-validation did.
impl FeatureSource for Dataset {
    fn split_len(&self, split: SplitKind) -> usize {
        match split {
            SplitKind::Trainval => self.train_x.rows(),
            SplitKind::TestSeen => self.test_seen_x.rows(),
            SplitKind::TestUnseen => self.test_unseen_x.rows(),
        }
    }

    fn seen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Borrowed(&self.seen_signatures)
    }

    fn unseen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Borrowed(&self.unseen_signatures)
    }

    fn union_signatures(&self) -> Matrix {
        self.all_signatures()
    }

    fn stream(&self, split: SplitKind) -> Result<SourceStream<'_>, ZslError> {
        let (x, labels) = match split {
            SplitKind::Trainval => (&self.train_x, &self.train_labels),
            SplitKind::TestSeen => (&self.test_seen_x, &self.test_seen_labels),
            SplitKind::TestUnseen => (&self.test_unseen_x, &self.test_unseen_labels),
        };
        Ok(Box::new(std::iter::once(Ok((
            Cow::Borrowed(x),
            Cow::Borrowed(labels.as_slice()),
        )))))
    }

    fn stream_trainval_subset(&self, positions: &[usize]) -> Result<SourceStream<'_>, ZslError> {
        validate_subset_positions(positions, self.train_x.rows())?;
        let x = self.train_x.gather_rows(positions);
        let labels: Vec<usize> = positions.iter().map(|&p| self.train_labels[p]).collect();
        Ok(Box::new(std::iter::once(Ok((
            Cow::Owned(x),
            Cow::Owned(labels),
        )))))
    }
}

/// A [`StreamingBundle`] streams every split chunk-at-a-time from disk —
/// peak feature memory stays `O(chunk_rows x feature_dim)` through the
/// generic entry points, exactly as through the old `*_stream` twins.
impl FeatureSource for StreamingBundle {
    fn split_len(&self, split: SplitKind) -> usize {
        match split {
            SplitKind::Trainval => self.manifest().trainval.len(),
            SplitKind::TestSeen => self.manifest().test_seen.len(),
            SplitKind::TestUnseen => self.manifest().test_unseen.len(),
        }
    }

    fn seen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Owned(StreamingBundle::seen_signatures(self))
    }

    fn unseen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Owned(StreamingBundle::unseen_signatures(self))
    }

    fn union_signatures(&self) -> Matrix {
        StreamingBundle::union_signatures(self)
    }

    fn num_seen_classes(&self) -> usize {
        StreamingBundle::num_seen_classes(self)
    }

    fn num_unseen_classes(&self) -> usize {
        StreamingBundle::num_unseen_classes(self)
    }

    fn stream(&self, split: SplitKind) -> Result<SourceStream<'_>, ZslError> {
        let stream = match split {
            SplitKind::Trainval => self.stream_trainval(),
            SplitKind::TestSeen => self.stream_test_seen(),
            SplitKind::TestUnseen => self.stream_test_unseen(),
        }?;
        Ok(Box::new(stream.map(|r| {
            r.map(|(x, labels)| (Cow::Owned(x), Cow::Owned(labels)))
                .map_err(ZslError::from)
        })))
    }

    fn stream_trainval_subset(&self, positions: &[usize]) -> Result<SourceStream<'_>, ZslError> {
        let stream = StreamingBundle::stream_trainval_subset(self, positions)?;
        Ok(Box::new(stream.map(|r| {
            r.map(|(x, labels)| (Cow::Owned(x), Cow::Owned(labels)))
                .map_err(ZslError::from)
        })))
    }
}

/// Bare in-memory source: a feature matrix, its labels, and the signature
/// bank those labels index — the PR 5 replacement for the old
/// `cross_validate(&x, &labels, &signatures, ..)` raw-matrix signature.
///
/// There are no test splits: [`SplitKind::TestSeen`] and
/// [`SplitKind::TestUnseen`] stream empty, and the unseen bank is a zero-row
/// matrix. Training and cross-validation see exactly the data they were
/// handed; generalized evaluation over a `MemorySource` degenerates to a
/// seen-classes-only report.
#[derive(Clone, Copy, Debug)]
pub struct MemorySource<'a> {
    x: &'a Matrix,
    labels: &'a [usize],
    signatures: &'a Matrix,
}

impl<'a> MemorySource<'a> {
    /// Wrap a feature matrix (`n x d`), per-row labels, and the signature
    /// bank (`z x a`) the labels index.
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() != labels.len()` — a construction-time guard in
    /// the [`crate::infer::ScoringEngine::new`] style, so mismatched inputs
    /// fail where they are wired together rather than inside a fold loop.
    pub fn new(x: &'a Matrix, labels: &'a [usize], signatures: &'a Matrix) -> Self {
        assert_eq!(
            x.rows(),
            labels.len(),
            "MemorySource: {} feature rows but {} labels",
            x.rows(),
            labels.len()
        );
        MemorySource {
            x,
            labels,
            signatures,
        }
    }
}

impl FeatureSource for MemorySource<'_> {
    fn split_len(&self, split: SplitKind) -> usize {
        match split {
            SplitKind::Trainval => self.x.rows(),
            SplitKind::TestSeen | SplitKind::TestUnseen => 0,
        }
    }

    fn seen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Borrowed(self.signatures)
    }

    fn unseen_signatures(&self) -> Cow<'_, Matrix> {
        Cow::Owned(Matrix::zeros(0, self.signatures.cols()))
    }

    fn stream(&self, split: SplitKind) -> Result<SourceStream<'_>, ZslError> {
        match split {
            SplitKind::Trainval => Ok(Box::new(std::iter::once(Ok((
                Cow::Borrowed(self.x),
                Cow::Borrowed(self.labels),
            ))))),
            SplitKind::TestSeen | SplitKind::TestUnseen => Ok(Box::new(std::iter::empty())),
        }
    }

    fn stream_trainval_subset(&self, positions: &[usize]) -> Result<SourceStream<'_>, ZslError> {
        validate_subset_positions(positions, self.x.rows())?;
        let x = self.x.gather_rows(positions);
        let labels: Vec<usize> = positions.iter().map(|&p| self.labels[p]).collect();
        Ok(Box::new(std::iter::once(Ok((
            Cow::Owned(x),
            Cow::Owned(labels),
        )))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;

    #[test]
    fn dataset_source_streams_borrowed_splits_in_order() {
        let ds = SyntheticConfig::new().classes(5, 2).seed(3).build();
        for (split, x, labels) in [
            (SplitKind::Trainval, &ds.train_x, &ds.train_labels),
            (SplitKind::TestSeen, &ds.test_seen_x, &ds.test_seen_labels),
            (
                SplitKind::TestUnseen,
                &ds.test_unseen_x,
                &ds.test_unseen_labels,
            ),
        ] {
            let chunks: Vec<_> = ds
                .stream(split)
                .expect("stream")
                .collect::<Result<_, _>>()
                .expect("chunks");
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].0.as_slice(), x.as_slice());
            assert_eq!(&*chunks[0].1, labels.as_slice());
            assert!(
                matches!(chunks[0].0, Cow::Borrowed(_)),
                "in-memory split must stream without copying"
            );
        }
        assert_eq!(ds.trainval_len(), ds.train_x.rows());
        assert_eq!(
            FeatureSource::union_signatures(&ds).as_slice(),
            ds.all_signatures().as_slice()
        );
    }

    #[test]
    fn subset_streams_gather_in_requested_order_and_validate_positions() {
        let ds = SyntheticConfig::new().classes(4, 2).seed(9).build();
        let positions = [3usize, 0, 7, 3];
        let chunks: Vec<_> = ds
            .stream_trainval_subset(&positions)
            .expect("stream")
            .collect::<Result<_, _>>()
            .expect("chunks");
        assert_eq!(chunks.len(), 1);
        assert_eq!(
            chunks[0].0.as_slice(),
            ds.train_x.gather_rows(&positions).as_slice()
        );
        assert_eq!(&*chunks[0].1, &[3, 0, 7, 3].map(|p| ds.train_labels[p]));
        assert!(matches!(
            ds.stream_trainval_subset(&[1_000_000]),
            Err(ZslError::Data(DataError::Split { .. }))
        ));
    }

    #[test]
    fn memory_source_has_trainval_only() {
        let ds = SyntheticConfig::new().classes(4, 2).seed(5).build();
        let source = MemorySource::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures);
        assert_eq!(source.trainval_len(), ds.train_x.rows());
        assert_eq!(source.num_seen_classes(), 4);
        assert_eq!(source.num_unseen_classes(), 0);
        assert_eq!(
            source.union_signatures().as_slice(),
            ds.seen_signatures.as_slice()
        );
        assert_eq!(
            source.stream(SplitKind::TestSeen).expect("stream").count(),
            0
        );
        let chunks: Vec<_> = source
            .stream(SplitKind::Trainval)
            .expect("stream")
            .collect::<Result<_, _>>()
            .expect("chunks");
        assert_eq!(chunks[0].0.as_slice(), ds.train_x.as_slice());
    }

    #[test]
    #[should_panic(expected = "feature rows but")]
    fn memory_source_rejects_label_length_mismatch() {
        let ds = SyntheticConfig::new().classes(4, 2).build();
        MemorySource::new(&ds.train_x, &ds.train_labels[..3], &ds.seen_signatures);
    }
}
