//! The crate-level error type of the unified pipeline API.
//!
//! Before PR 5 every subsystem surfaced its own error enum — [`DataError`]
//! from the loaders, [`TrainError`] from the trainers, [`LinalgError`] from
//! the factorizations — and callers gluing stages together had to thread a
//! different error type through each seam. The generic entry points
//! ([`crate::eval::evaluate_gzsl`], [`crate::eval::cross_validate`],
//! [`crate::model::EszslTrainer::fit`], every [`crate::trainer::Trainer`]
//! impl, the [`crate::pipeline::Pipeline`] facade, and the `.zsm` model
//! artifacts) all return one [`ZslError`] instead.
//!
//! Every variant that wraps an inner error reports it through
//! [`std::error::Error::source`], so `anyhow`-style chain printers and
//! `error.source()` walks see the full causal chain.

use crate::data::DataError;
use crate::linalg::LinalgError;
use crate::model::TrainError;

/// Unified error of the pipeline API: everything that can go wrong between
/// opening a [`crate::source::FeatureSource`] and producing a
/// [`crate::eval::GzslReport`] or a saved `.zsm` artifact.
#[derive(Debug)]
pub enum ZslError {
    /// Reading, writing, or validating on-disk data (dataset bundles, feature
    /// streams, `.zsm` model artifacts) failed.
    Data(DataError),
    /// Model training failed (bad shapes, labels, regularizers, or an
    /// unfactorable Gram matrix).
    Train(TrainError),
    /// A dense factorization or solve failed outside the training path.
    Linalg(LinalgError),
    /// The pipeline or evaluation configuration is unusable (bad fold count,
    /// empty grid, mismatched signature bank, ...).
    Config(String),
}

impl std::fmt::Display for ZslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZslError::Data(e) => write!(f, "data error: {e}"),
            ZslError::Train(e) => write!(f, "training error: {e}"),
            ZslError::Linalg(e) => write!(f, "linear-algebra error: {e}"),
            ZslError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ZslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZslError::Data(e) => Some(e),
            ZslError::Train(e) => Some(e),
            ZslError::Linalg(e) => Some(e),
            ZslError::Config(_) => None,
        }
    }
}

impl From<DataError> for ZslError {
    fn from(e: DataError) -> Self {
        ZslError::Data(e)
    }
}

impl From<TrainError> for ZslError {
    fn from(e: TrainError) -> Self {
        ZslError::Train(e)
    }
}

impl From<LinalgError> for ZslError {
    fn from(e: LinalgError) -> Self {
        ZslError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chains_reach_the_innermost_error() {
        let inner = LinalgError::NotPositiveDefinite { pivot_index: 3 };
        let train = TrainError::Solver(inner.clone());
        let top = ZslError::from(train);
        // ZslError -> TrainError -> LinalgError.
        let level1 = top.source().expect("train source");
        assert!(level1.to_string().contains("solver"));
        let level2 = level1.source().expect("linalg source");
        assert!(level2.to_string().contains("positive-definite"));
        assert!(level2.source().is_none());
    }
}
