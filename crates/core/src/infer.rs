//! Batch inference and evaluation for trained ZSL models.
//!
//! The workhorse is the [`ScoringEngine`]: it validates and (for cosine)
//! pre-normalizes the signature bank **once at construction**, projects
//! feature batches into attribute space, and scores them against the cached
//! bank through the multi-threaded packed `X·Sᵀ` kernel in [`crate::linalg`].
//! [`ScoringEngine::scores_chunked`] streams scores chunk-by-chunk so
//! million-sample workloads never materialize one giant score matrix.
//!
//! [`Classifier`] is a thin compatibility wrapper over the engine. Evaluation
//! helpers cover the standard ZSL protocol (mean per-class accuracy) and the
//! generalized protocol (harmonic mean of seen and unseen accuracy).
//!
//! For large class counts the bank can additionally be split into
//! [`BankShards`] — contiguous row bands scored independently and folded
//! through a per-row streaming merge, so `predict`/`predict_topk` never
//! materialize a full `n x num_classes` score matrix — and borrowed zero-copy
//! from an mmap'd `.zsm` artifact instead of the heap. Both modes are
//! bit-identical to the monolithic heap engine (pinned by
//! `tests/shard_equiv.rs`). Calibrated stacking (a seen-class score penalty
//! `γ_cal`, the classic fix for GZSL seen-swamping) is applied at scoring
//! time through the same paths.

use crate::error::ZslError;
use crate::linalg::{default_threads, gemm_bt_parallel, Matrix, BLOCK, NORM_EPSILON};
use crate::mmap::MappedFile;
use crate::source::{FeatureSource, SplitKind};
use crate::trainer::{KernelKind, TrainedModel};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::Arc;

/// Rows per chunk used by [`ScoringEngine::predict`] and
/// [`ScoringEngine::predict_topk`]: scores are reduced chunk-by-chunk, so
/// peak score memory is `DEFAULT_CHUNK_ROWS * num_classes` doubles no matter
/// how many samples are scored.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Scoring function between a projected sample and a class signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Similarity {
    /// Cosine similarity — scale invariant, the usual ZSL choice.
    #[default]
    Cosine,
    /// Raw dot product — cheaper, appropriate when signatures are already
    /// normalized.
    Dot,
}

impl std::fmt::Display for Similarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Similarity::Cosine => write!(f, "cosine"),
            Similarity::Dot => write!(f, "dot"),
        }
    }
}

impl std::str::FromStr for Similarity {
    type Err = String;

    /// Parse `"cosine"` or `"dot"` (case-insensitive) — the spelling used by
    /// CLI flags and config files.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cosine" => Ok(Similarity::Cosine),
            "dot" => Ok(Similarity::Dot),
            other => Err(format!(
                "unknown similarity '{other}', expected 'cosine' or 'dot'"
            )),
        }
    }
}

/// Numeric precision the engine scores in. Training always runs in `f64`;
/// [`ScoringPrecision::F32`] casts the model parameters, the (already
/// normalized) signature bank, and each input batch to `f32` once, runs the
/// same banded kernels in single precision (roughly half the memory
/// traffic), and widens the final scores back to `f64` losslessly. Within
/// each precision, results stay bit-identical across thread counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScoringPrecision {
    /// Full double precision — the default, bit-compatible with training.
    #[default]
    F64,
    /// Opt-in single-precision serving (train f64, serve f32).
    F32,
}

impl std::fmt::Display for ScoringPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoringPrecision::F64 => write!(f, "f64"),
            ScoringPrecision::F32 => write!(f, "f32"),
        }
    }
}

impl std::str::FromStr for ScoringPrecision {
    type Err = String;

    /// Parse `"f64"` or `"f32"` (case-insensitive) — the spelling used by
    /// CLI flags and artifact metadata.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" => Ok(ScoringPrecision::F64),
            "f32" => Ok(ScoringPrecision::F32),
            other => Err(format!(
                "unknown scoring precision '{other}', expected 'f64' or 'f32'"
            )),
        }
    }
}

/// A ranked prediction: class indices ordered best-first with their scores.
#[derive(Clone, Debug, PartialEq)]
pub struct TopK {
    /// Class indices, best first.
    pub classes: Vec<usize>,
    /// Similarity scores aligned with `classes`.
    pub scores: Vec<f64>,
}

/// Layout of the signature bank as contiguous row bands ("shards") scored
/// independently and merged per sample row.
///
/// Band boundaries are always multiples of the matmul kernel's 64-column
/// cache tile: `gemm_bt`'s SIMD cascade (8-wide, 4-wide, scalar remainder)
/// assigns kernels by a class's position *within* its 64-wide tile, so
/// tile-aligned bands score every class through the same kernel with the same
/// accumulation order as one monolithic pass. That makes sharded results
/// bit-identical to the unsharded engine at every shard count — structurally,
/// not within a tolerance. A requested count is therefore a *hint*: it is
/// clamped to the number of 64-row tiles the bank actually has.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BankShards {
    /// Exclusive end row of each band, ascending; the last entry is the class
    /// count. Band `i` covers `ends[i-1]..ends[i]` (band 0 starts at row 0).
    ends: Vec<usize>,
}

impl BankShards {
    /// Split `num_classes` bank rows into (at most) `requested` bands of
    /// near-equal tile counts. `requested` is clamped to `[1, ceil(z / 64)]`;
    /// every boundary except the last is a multiple of 64.
    pub fn uniform(num_classes: usize, requested: usize) -> Self {
        let tiles = num_classes.div_ceil(BLOCK).max(1);
        let bands = requested.clamp(1, tiles);
        let mut ends = Vec::with_capacity(bands);
        for b in 1..=bands {
            ends.push((b * tiles / bands * BLOCK).min(num_classes));
        }
        BankShards { ends }
    }

    /// Number of bands.
    pub fn count(&self) -> usize {
        self.ends.len()
    }

    /// Global class-row range of band `i`.
    pub fn band(&self, i: usize) -> Range<usize> {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        start..self.ends[i]
    }

    /// Widest band, in classes — the per-chunk score-block width bound.
    pub fn max_band_classes(&self) -> usize {
        (0..self.count())
            .map(|i| self.band(i).len())
            .max()
            .unwrap_or(0)
    }
}

/// The engine's cached signature bank: either owned rows on the heap or rows
/// borrowed zero-copy from a memory-mapped `.zsm` artifact.
#[derive(Clone, Debug)]
enum Bank {
    /// Heap-owned `num_classes x attr_dim` rows — the default.
    Owned(Matrix),
    /// Rows borrowed from a mapped artifact: `offset` bytes into the mapping,
    /// `rows x cols` little-endian `f64`s. The loader guarantees the region
    /// is in-bounds and 8-byte aligned (64-byte-aligned payload in a
    /// page-aligned mapping) before constructing this variant.
    Mapped {
        map: Arc<MappedFile>,
        offset: usize,
        rows: usize,
        cols: usize,
    },
}

impl Bank {
    fn rows(&self) -> usize {
        match self {
            Bank::Owned(m) => m.rows(),
            Bank::Mapped { rows, .. } => *rows,
        }
    }

    fn cols(&self) -> usize {
        match self {
            Bank::Owned(m) => m.cols(),
            Bank::Mapped { cols, .. } => *cols,
        }
    }

    fn as_slice(&self) -> &[f64] {
        match self {
            Bank::Owned(m) => m.as_slice(),
            Bank::Mapped {
                map,
                offset,
                rows,
                cols,
            } => {
                let bytes = &map.as_bytes()[*offset..*offset + rows * cols * 8];
                // Safety: the loader verified bounds and 8-byte alignment at
                // construction, the mapping is immutable and lives as long as
                // the `Arc`, and the target is little-endian (gated by the
                // loader), so these bytes *are* the bank's f64 rows.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, rows * cols) }
            }
        }
    }

    /// Heap bytes this bank keeps resident (0 when mapped).
    fn resident_bytes(&self) -> usize {
        match self {
            Bank::Owned(m) => std::mem::size_of_val(m.as_slice()),
            Bank::Mapped { .. } => 0,
        }
    }
}

/// Borrowed, read-only view of an engine's cached signature bank, uniform
/// over heap-owned and mmap-borrowed storage. Replaces the old `&Matrix`
/// accessor so callers never assume the bank lives on the heap.
#[derive(Clone, Copy, Debug)]
pub struct BankView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> BankView<'a> {
    /// Number of classes (bank rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Attribute dimension (bank columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The full bank as one row-major slice.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &'a [f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy the viewed rows into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec())
    }
}

/// Which classes a calibration penalty applies to.
#[derive(Clone, Debug)]
enum Penalized {
    /// The first `n` bank rows — the seen-class prefix of a GZSL union bank.
    /// This is the persistable form (`.zsm` calibration block).
    Prefix(usize),
    /// Arbitrary class subset — used internally by cross-validation, where
    /// each fold penalizes its pseudo-seen classes. Never persisted.
    Mask(Arc<Vec<bool>>),
}

/// Calibrated stacking: subtract `gamma` from every penalized class's score
/// at scoring time. With a union bank ordered seen-then-unseen, penalizing
/// the seen prefix counteracts the seen-class swamping that collapses GZSL
/// unseen accuracy at large class counts.
#[derive(Clone, Debug)]
struct Calibration {
    gamma: f64,
    penalized: Penalized,
}

/// Cached, parallel batch scorer: the hot path of the serving stack.
///
/// Construction validates the signature bank (non-empty, non-zero-width, all
/// finite) and — for [`Similarity::Cosine`] — L2-normalizes it **once**, so
/// per-call scoring does no bank clone, no renormalization, and no transpose:
/// the cached bank rows are already the packed transposed-B layout the
/// contiguous `X·Sᵀ` kernel wants. Batches are projected and scored through
/// the row-banded multi-threaded matmul paths in [`crate::linalg`].
///
/// Results are bit-identical for every thread count and chunk size, so the
/// engine can be tuned freely without perturbing golden numerics.
#[derive(Clone, Debug)]
pub struct ScoringEngine {
    /// Any trained model family; a bare [`crate::model::ProjectionModel`]
    /// converts in as ESZSL, so pre-trainer call sites keep compiling.
    model: TrainedModel,
    /// `num_classes x attr_dim`, one row per candidate class; pre-normalized
    /// when the similarity is cosine. Heap-owned or mmap-borrowed.
    bank: Bank,
    /// Row-band layout of the bank; a single band reproduces the legacy
    /// monolithic scoring path verbatim.
    shards: BankShards,
    /// Optional seen-class score penalty (calibrated stacking); `None` means
    /// scoring is exactly the uncalibrated pipeline, bit-for-bit.
    calibration: Option<Calibration>,
    similarity: Similarity,
    threads: usize,
    precision: ScoringPrecision,
    /// Eagerly-cast single-precision mirror of the model and bank, present
    /// exactly when `precision == F32` so scoring never casts parameters
    /// per call.
    f32_parts: Option<F32Parts>,
}

/// Single-precision mirror of an engine's parameters: the trained model's
/// matrices and the (already f64-normalized) signature bank, cast to `f32`
/// once at [`ScoringEngine::with_precision`] time.
#[derive(Clone, Debug)]
struct F32Parts {
    model: F32Model,
    /// `num_classes x attr_dim` bank, cast from the cached f64 rows — the
    /// cosine normalization already happened in f64, so the cast preserves
    /// the bank semantics exactly up to rounding.
    bank: Vec<f32>,
}

#[derive(Clone, Debug)]
enum F32Model {
    /// Linear families (ESZSL, SAE): `w` is `d x a` row-major.
    Projection { w: Vec<f32>, d: usize, a: usize },
    /// Kernel family: dual weights `alpha : k x a` over `anchors : k x d`.
    Kernel {
        alpha: Vec<f32>,
        anchors: Vec<f32>,
        k: usize,
        d: usize,
        a: usize,
        kernel: KernelKind,
    },
}

fn cast_f32(m: &Matrix) -> Vec<f32> {
    cast_f32_slice(m.as_slice())
}

fn cast_f32_slice(data: &[f64]) -> Vec<f32> {
    data.iter().map(|&v| v as f32).collect()
}

fn build_f32_parts(model: &TrainedModel, bank: &[f64]) -> F32Parts {
    let model32 = match model {
        TrainedModel::Eszsl(p) | TrainedModel::Sae(p) => F32Model::Projection {
            w: cast_f32(p.weights()),
            d: p.weights().rows(),
            a: p.weights().cols(),
        },
        TrainedModel::Kernel(km) => F32Model::Kernel {
            alpha: cast_f32(km.alpha()),
            anchors: cast_f32(km.anchors()),
            k: km.anchors().rows(),
            d: km.anchors().cols(),
            a: km.alpha().cols(),
            kernel: km.kernel(),
        },
    };
    F32Parts {
        model: model32,
        bank: cast_f32_slice(bank),
    }
}

impl ScoringEngine {
    /// Build an engine over `signatures` (`num_classes x attr_dim`) using one
    /// worker thread per available core.
    ///
    /// Panics if the bank is empty, zero-width, contains a non-finite value,
    /// or its width does not match the model's attribute dimension — bad data
    /// fails here, at construction, not at scoring time. Code handling
    /// *untrusted* inputs (a serving daemon booting from an artifact it did
    /// not write) must use [`ScoringEngine::try_new`] instead, where the same
    /// conditions are typed [`ZslError::Config`] values.
    pub fn new(model: impl Into<TrainedModel>, signatures: Matrix, similarity: Similarity) -> Self {
        Self::with_threads(model, signatures, similarity, default_threads())
    }

    /// [`ScoringEngine::new`] with an explicit worker-thread count
    /// (`0` is treated as `1`).
    ///
    /// Like [`ScoringEngine::new`], this is the *convenience* constructor for
    /// trusted, in-process data and deliberately panics on invalid parts;
    /// every serve/load-reachable path (artifact loaders, the evaluation and
    /// cross-validation drivers, `Pipeline::train`) goes through
    /// [`ScoringEngine::try_with_threads`] instead.
    pub fn with_threads(
        model: impl Into<TrainedModel>,
        signatures: Matrix,
        similarity: Similarity,
        threads: usize,
    ) -> Self {
        match Self::try_with_threads(model, signatures, similarity, threads) {
            Ok(engine) => engine,
            Err(ZslError::Config(msg)) => panic!("{msg}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ScoringEngine::new`]: every construction-time validation
    /// failure (empty / zero-width / non-finite bank, attribute-dimension
    /// mismatch) is a typed [`ZslError::Config`] instead of a panic.
    ///
    /// This is the constructor for serving paths fed by untrusted input —
    /// a daemon's boot/reload must degrade to an error response, never
    /// abort the process.
    pub fn try_new(
        model: impl Into<TrainedModel>,
        signatures: Matrix,
        similarity: Similarity,
    ) -> Result<Self, ZslError> {
        Self::try_with_threads(model, signatures, similarity, default_threads())
    }

    /// [`ScoringEngine::try_new`] with an explicit worker-thread count
    /// (`0` is treated as `1`).
    pub fn try_with_threads(
        model: impl Into<TrainedModel>,
        mut signatures: Matrix,
        similarity: Similarity,
        threads: usize,
    ) -> Result<Self, ZslError> {
        let model = model.into();
        check_engine_parts(
            &model,
            signatures.rows(),
            signatures.cols(),
            signatures.as_slice(),
        )
        .map_err(ZslError::Config)?;
        if similarity == Similarity::Cosine {
            signatures.l2_normalize_rows();
        }
        let shards = BankShards::uniform(signatures.rows(), 1);
        Ok(ScoringEngine {
            model,
            bank: Bank::Owned(signatures),
            shards,
            calibration: None,
            similarity,
            threads: threads.max(1),
            precision: ScoringPrecision::F64,
            f32_parts: None,
        })
    }

    /// Reassemble an engine from an *already prepared* cached bank — the
    /// `.zsm` artifact loader's constructor ([`ScoringEngine::load`]).
    ///
    /// The bank is taken exactly as given, with **no** re-normalization: a
    /// cosine engine's bank was normalized once when the engine was first
    /// built, and normalizing it again would divide by norms of ≈1.0 (not
    /// exactly 1.0) and perturb the cached bits. Skipping that step is what
    /// makes a save/load round trip reproduce predictions bit-for-bit.
    /// Validation (non-empty, finite, width match) still runs, and — because
    /// this constructor sits on the daemon's load/reload path, where input is
    /// untrusted by definition — failures are typed errors, never panics.
    /// The caller (the `.zsm` loader) additionally checks that a cosine
    /// bank's rows really are unit-norm, since nothing downstream will ever
    /// re-normalize them.
    pub(crate) fn from_cached_parts(
        model: TrainedModel,
        signatures: Matrix,
        similarity: Similarity,
        threads: usize,
    ) -> Result<Self, String> {
        check_engine_parts(
            &model,
            signatures.rows(),
            signatures.cols(),
            signatures.as_slice(),
        )?;
        let shards = BankShards::uniform(signatures.rows(), 1);
        Ok(ScoringEngine {
            model,
            bank: Bank::Owned(signatures),
            shards,
            calibration: None,
            similarity,
            threads: threads.max(1),
            precision: ScoringPrecision::F64,
            f32_parts: None,
        })
    }

    /// [`ScoringEngine::from_cached_parts`] with the bank *borrowed* from a
    /// mapped `.zsm` artifact instead of heap-copied — the zero-copy boot
    /// path. Same validation and no-renormalization contract; the caller (the
    /// artifact loader) guarantees the `offset..offset + rows*cols*8` region
    /// is in-bounds, 8-byte aligned, and little-endian `f64` data.
    pub(crate) fn from_mapped_parts(
        model: TrainedModel,
        map: Arc<MappedFile>,
        offset: usize,
        rows: usize,
        cols: usize,
        similarity: Similarity,
        threads: usize,
    ) -> Result<Self, String> {
        let bank = Bank::Mapped {
            map,
            offset,
            rows,
            cols,
        };
        check_engine_parts(&model, rows, cols, bank.as_slice())?;
        Ok(ScoringEngine {
            model,
            shards: BankShards::uniform(rows, 1),
            bank,
            calibration: None,
            similarity,
            threads: threads.max(1),
            precision: ScoringPrecision::F64,
            f32_parts: None,
        })
    }

    /// Switch the engine's scoring precision, (re)building or dropping the
    /// cached `f32` mirror as needed. Consuming-builder style so artifact
    /// loaders and pipelines can chain it after construction:
    /// `engine.with_precision(ScoringPrecision::F32)`.
    pub fn with_precision(mut self, precision: ScoringPrecision) -> Self {
        self.precision = precision;
        self.f32_parts = match precision {
            ScoringPrecision::F64 => None,
            ScoringPrecision::F32 => Some(build_f32_parts(&self.model, self.bank.as_slice())),
        };
        self
    }

    /// Split the cached bank into (at most) `shards` row bands scored
    /// independently and merged per row — see [`BankShards`]. Results are
    /// bit-identical at every shard count; what changes is peak memory:
    /// `predict`/`predict_topk` hold one `chunk_rows x band_classes` score
    /// block at a time instead of `chunk_rows x num_classes`.
    pub fn with_bank_shards(mut self, shards: usize) -> Self {
        self.set_bank_shards(shards);
        self
    }

    /// In-place form of [`ScoringEngine::with_bank_shards`] for serving
    /// stacks that reconfigure a booted engine.
    pub fn set_bank_shards(&mut self, shards: usize) {
        self.shards = BankShards::uniform(self.bank.rows(), shards);
    }

    /// The bank's current shard layout.
    pub fn bank_shards(&self) -> &BankShards {
        &self.shards
    }

    /// Heap bytes resident for the signature bank (the `f64` rows plus the
    /// `f32` mirror when reduced-precision scoring is on). `0` + mirror for
    /// an mmap-borrowed bank — the gauge a serving box watches to confirm
    /// zero-copy boot took effect.
    pub fn bank_resident_bytes(&self) -> usize {
        let mirror = self
            .f32_parts
            .as_ref()
            .map_or(0, |p| p.bank.len() * std::mem::size_of::<f32>());
        self.bank.resident_bytes() + mirror
    }

    /// Whether the bank is borrowed from a memory-mapped artifact.
    pub fn is_bank_mapped(&self) -> bool {
        matches!(self.bank, Bank::Mapped { .. })
    }

    /// Enable calibrated stacking: subtract `gamma_cal` from the scores of
    /// the first `seen_classes` bank rows (the seen prefix of a GZSL union
    /// bank) at scoring time. `gamma_cal = 0` clears calibration and restores
    /// the uncalibrated pipeline bit-for-bit. Rejects non-finite or negative
    /// `gamma_cal` and a prefix longer than the bank.
    pub fn with_calibration(
        mut self,
        gamma_cal: f64,
        seen_classes: usize,
    ) -> Result<Self, ZslError> {
        if !gamma_cal.is_finite() || gamma_cal < 0.0 {
            return Err(ZslError::Config(format!(
                "calibration penalty gamma_cal must be finite and >= 0, got {gamma_cal}"
            )));
        }
        if seen_classes > self.num_classes() {
            return Err(ZslError::Config(format!(
                "calibration seen-class prefix {seen_classes} exceeds the bank's {} classes",
                self.num_classes()
            )));
        }
        self.calibration = (gamma_cal > 0.0).then_some(Calibration {
            gamma: gamma_cal,
            penalized: Penalized::Prefix(seen_classes),
        });
        Ok(self)
    }

    /// Cross-validation-internal calibration over an arbitrary class mask
    /// (`true` = penalized). Never persisted; `gamma_cal = 0` clears.
    pub(crate) fn with_calibration_mask(mut self, gamma_cal: f64, mask: Arc<Vec<bool>>) -> Self {
        debug_assert_eq!(mask.len(), self.num_classes());
        self.calibration = (gamma_cal > 0.0).then_some(Calibration {
            gamma: gamma_cal,
            penalized: Penalized::Mask(mask),
        });
        self
    }

    /// The persistable seen-prefix calibration `(gamma_cal, seen_classes)`,
    /// if any. CV-internal mask calibrations (never persisted) return `None`.
    pub fn seen_calibration(&self) -> Option<(f64, usize)> {
        match &self.calibration {
            Some(Calibration {
                gamma,
                penalized: Penalized::Prefix(seen),
            }) => Some((*gamma, *seen)),
            _ => None,
        }
    }

    /// The active calibration penalty, `0.0` when uncalibrated.
    pub fn gamma_cal(&self) -> f64 {
        self.calibration.as_ref().map_or(0.0, |c| c.gamma)
    }

    /// Whether the engine carries a CV-internal mask calibration, which the
    /// artifact writer must refuse to persist.
    pub(crate) fn has_mask_calibration(&self) -> bool {
        matches!(
            self.calibration,
            Some(Calibration {
                penalized: Penalized::Mask(_),
                ..
            })
        )
    }

    /// Subtract the calibration penalty from a `rows x (hi - lo)` score block
    /// covering global classes `lo..hi`. No-op when uncalibrated, so the
    /// `gamma_cal = 0` pipeline performs zero extra float operations.
    fn apply_calibration(&self, block: &mut [f64], lo: usize, hi: usize) {
        let Some(cal) = &self.calibration else {
            return;
        };
        let width = hi - lo;
        match &cal.penalized {
            Penalized::Prefix(seen) => {
                let end = (*seen).min(hi);
                if end > lo {
                    for row in block.chunks_mut(width) {
                        for v in &mut row[..end - lo] {
                            *v -= cal.gamma;
                        }
                    }
                }
            }
            Penalized::Mask(mask) => {
                for row in block.chunks_mut(width) {
                    for (j, v) in row.iter_mut().enumerate() {
                        if mask[lo + j] {
                            *v -= cal.gamma;
                        }
                    }
                }
            }
        }
    }

    /// The precision scores are computed in.
    pub fn precision(&self) -> ScoringPrecision {
        self.precision
    }

    /// Resize the engine's worker-thread budget in place (`0` is treated as
    /// `1`). Serving stacks call this once at boot so every connection thread
    /// shares one deliberately-sized engine instead of each assuming the full
    /// machine.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of candidate classes.
    pub fn num_classes(&self) -> usize {
        self.bank.rows()
    }

    /// The underlying trained model (any family).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Input feature width the engine scores — the trained model's.
    pub fn feature_dim(&self) -> usize {
        self.model.feature_dim()
    }

    /// The cached signature bank (L2-normalized when the similarity is
    /// cosine), as a storage-agnostic view: the rows may live on the heap or
    /// be borrowed from a memory-mapped artifact.
    pub fn signatures(&self) -> BankView<'_> {
        BankView {
            data: self.bank.as_slice(),
            rows: self.bank.rows(),
            cols: self.bank.cols(),
        }
    }

    /// The configured similarity.
    pub fn similarity(&self) -> Similarity {
        self.similarity
    }

    /// Worker threads used by the scoring matmuls.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Full score matrix: `n_samples x num_classes`, including any active
    /// calibration penalty. Callers who ask for the full matrix get it
    /// monolithically regardless of the shard layout (sharding changes peak
    /// memory in the streaming reducers, never the bits).
    pub fn scores(&self, x: &Matrix) -> Matrix {
        let mut scores = if let Some(parts) = &self.f32_parts {
            self.scores_f32(parts, x)
        } else {
            let mut projected = self.model.project_parallel(x, self.threads);
            if self.similarity == Similarity::Cosine {
                projected.l2_normalize_rows();
            }
            let (n, a_dim) = (projected.rows(), projected.cols());
            let z = self.bank.rows();
            Matrix::from_vec(
                n,
                z,
                gemm_bt_parallel(
                    projected.as_slice(),
                    n,
                    a_dim,
                    self.bank.as_slice(),
                    z,
                    self.threads,
                ),
            )
        };
        let z = self.num_classes();
        self.apply_calibration(scores.as_mut_slice(), 0, z);
        scores
    }

    /// The single-precision projection front half: cast the batch once, run
    /// project → normalize through the generic `f32` kernels. Shared by the
    /// monolithic [`ScoringEngine::scores`] path and the banded streaming
    /// reducers, so both score the identical normalized `f32` slab.
    fn project_f32(&self, parts: &F32Parts, x: &Matrix) -> Vec<f32> {
        use crate::linalg::{gemm_parallel, l2_normalize_rows_slab, rbf_gram_parallel};
        let n = x.rows();
        let d_in = self.model.feature_dim();
        assert_eq!(
            x.cols(),
            d_in,
            "scores shape mismatch: {}x{} features vs projection dim {}",
            n,
            x.cols(),
            d_in
        );
        let x32: Vec<f32> = x.as_slice().iter().map(|&v| v as f32).collect();
        let mut proj: Vec<f32> = match &parts.model {
            F32Model::Projection { w, d, a } => gemm_parallel(&x32, n, *d, w, *a, self.threads),
            F32Model::Kernel {
                alpha,
                anchors,
                k,
                d,
                a,
                kernel,
            } => {
                let phi = match kernel {
                    KernelKind::Linear => gemm_bt_parallel(&x32, n, *d, anchors, *k, self.threads),
                    KernelKind::Rbf { width } => {
                        rbf_gram_parallel(&x32, n, *d, anchors, *k, *width as f32, self.threads)
                    }
                };
                gemm_parallel(&phi, n, *k, alpha, *a, self.threads)
            }
        };
        if self.similarity == Similarity::Cosine {
            l2_normalize_rows_slab(&mut proj, self.bank.cols());
        }
        proj
    }

    /// The single-precision scoring path: project via [`Self::project_f32`],
    /// score against the cached `f32` bank mirror, and widen the scores back
    /// to `f64` (lossless), so every downstream consumer (`predict`,
    /// `predict_topk`, chunking) is shared verbatim with the `f64` path.
    fn scores_f32(&self, parts: &F32Parts, x: &Matrix) -> Matrix {
        let n = x.rows();
        let proj = self.project_f32(parts, x);
        let a_dim = self.bank.cols();
        let z = self.bank.rows();
        let scores32 = gemm_bt_parallel(&proj, n, a_dim, &parts.bank, z, self.threads);
        Matrix::from_vec(n, z, scores32.into_iter().map(f64::from).collect())
    }

    /// Stream scores in row chunks of at most `chunk_rows` (`0` is treated as
    /// `1`): `consume(row_offset, chunk)` receives each
    /// `chunk_rows x num_classes` score block in order, so arbitrarily large
    /// sample matrices are scored without materializing the full
    /// `n x num_classes` result.
    pub fn scores_chunked<F>(&self, x: &Matrix, chunk_rows: usize, mut consume: F)
    where
        F: FnMut(usize, Matrix),
    {
        let n = x.rows();
        let chunk_rows = chunk_rows.max(1);
        if chunk_rows >= n {
            // One chunk covers everything: score the input directly instead
            // of copying it into a slab.
            if n > 0 {
                consume(0, self.scores(x));
            }
            return;
        }
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            let slab = x.row_block(start..end);
            consume(start, self.scores(&slab));
            start = end;
        }
    }

    /// Stream `x` in row chunks and, per chunk, score one bank band at a
    /// time: project the chunk once, then for each shard band run the same
    /// `X·Sᵀ` kernel over that band's rows, apply calibration, and hand the
    /// `rows x band_classes` block to `band`. `init` builds per-chunk merge
    /// state, `done` consumes it after the last band. Peak score memory is
    /// one band-wide block — never `rows x num_classes`.
    ///
    /// Because band boundaries are multiples of the kernel's 64-column tile
    /// (see [`BankShards`]), every score element carries the *same bits* as
    /// the monolithic pass, so any order-respecting merge is bit-identical to
    /// reducing the full row.
    fn fold_banded_chunks<S, I, F, D>(
        &self,
        x: &Matrix,
        chunk_rows: usize,
        init: I,
        mut band: F,
        mut done: D,
    ) where
        I: Fn(usize) -> S,
        F: FnMut(&mut S, Range<usize>, &[f64]),
        D: FnMut(S),
    {
        let n = x.rows();
        let chunk_rows = chunk_rows.max(1);
        let a_dim = self.bank.cols();
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            let rows = end - start;
            let slab;
            let chunk: &Matrix = if rows == n {
                x
            } else {
                slab = x.row_block(start..end);
                &slab
            };
            let mut state = init(rows);
            match &self.f32_parts {
                None => {
                    let mut projected = self.model.project_parallel(chunk, self.threads);
                    if self.similarity == Similarity::Cosine {
                        projected.l2_normalize_rows();
                    }
                    let bank = self.bank.as_slice();
                    for b in 0..self.shards.count() {
                        let r = self.shards.band(b);
                        let mut block = gemm_bt_parallel(
                            projected.as_slice(),
                            rows,
                            a_dim,
                            &bank[r.start * a_dim..r.end * a_dim],
                            r.len(),
                            self.threads,
                        );
                        self.apply_calibration(&mut block, r.start, r.end);
                        band(&mut state, r.clone(), &block);
                    }
                }
                Some(parts) => {
                    let proj = self.project_f32(parts, chunk);
                    for b in 0..self.shards.count() {
                        let r = self.shards.band(b);
                        let block32 = gemm_bt_parallel(
                            &proj,
                            rows,
                            a_dim,
                            &parts.bank[r.start * a_dim..r.end * a_dim],
                            r.len(),
                            self.threads,
                        );
                        let mut block: Vec<f64> = block32.into_iter().map(f64::from).collect();
                        self.apply_calibration(&mut block, r.start, r.end);
                        band(&mut state, r.clone(), &block);
                    }
                }
            }
            done(state);
            start = end;
        }
    }

    /// Whether predictions should stream band-by-band instead of taking the
    /// legacy whole-row path. A single band *is* the legacy layout, so the
    /// monolithic code path survives verbatim for existing engines.
    fn banded(&self) -> bool {
        self.shards.count() > 1
    }

    /// Argmax prediction per sample, computed chunk-by-chunk.
    ///
    /// Selection uses [`f64::total_cmp`], a total order, so results are
    /// deterministic even for non-finite scores (the old `>`-based loop lost
    /// every NaN comparison and always fell back to class 0). Positive NaN
    /// ranks above every finite score and surfaces in the output; note that
    /// negative NaN ranks below everything, and a NaN *feature* poisons its
    /// entire score row — callers that must detect corrupt inputs should
    /// check [`ScoringEngine::scores`] for non-finite values rather than rely
    /// on predictions alone.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        if self.banded() {
            return self.predict_banded(x);
        }
        let z = self.num_classes();
        let mut out = Vec::with_capacity(x.rows());
        self.scores_chunked(x, DEFAULT_CHUNK_ROWS, |_, scores| {
            out.extend(scores.as_slice().chunks(z).map(argmax));
        });
        out
    }

    /// Sharded argmax: fold each band's per-row argmax into a running best
    /// with a strictly-greater `total_cmp` test. Bands ascend and the in-band
    /// argmax is first-wins, so the global first-wins tie-break of the
    /// monolithic [`argmax`] is preserved exactly.
    fn predict_banded(&self, x: &Matrix) -> Vec<usize> {
        let mut out = Vec::with_capacity(x.rows());
        self.fold_banded_chunks(
            x,
            DEFAULT_CHUNK_ROWS,
            |rows| vec![(0usize, 0.0f64); rows],
            |best: &mut Vec<(usize, f64)>, r, block| {
                let width = r.len();
                for (row_best, row) in best.iter_mut().zip(block.chunks(width)) {
                    let local = argmax(row);
                    let cand = (r.start + local, row[local]);
                    if r.start == 0 || cand.1.total_cmp(&row_best.1) == Ordering::Greater {
                        *row_best = cand;
                    }
                }
            },
            |best| out.extend(best.into_iter().map(|(class, _)| class)),
        );
        out
    }

    /// Guard for the `Result`-returning serving paths: a feature chunk whose
    /// width disagrees with the projection must surface as a typed error
    /// (e.g. a `.zsm` model served against a bundle from a different feature
    /// space), not as the `matmul` shape assert the in-memory `predict`
    /// reserves for programming errors.
    pub(crate) fn check_feature_width(&self, cols: usize) -> Result<(), ZslError> {
        let d = self.model.feature_dim();
        if cols != d {
            return Err(ZslError::Config(format!(
                "source features have {cols} columns but the engine's projection expects {d}; \
                 the model was trained on a different feature space"
            )));
        }
        Ok(())
    }

    /// The ONE generic batch-prediction entry point: argmax predictions over
    /// one split of any [`FeatureSource`], chunk by chunk.
    ///
    /// Projection, normalization, and scoring are all row-local, so the
    /// predictions are **bit-identical** to calling
    /// [`ScoringEngine::predict`] on the concatenated rows — for every source
    /// kind and chunk size. Only the `Vec<usize>` of predictions grows with
    /// the stream; peak feature memory stays one chunk (zero extra copies for
    /// in-memory sources, which lend their matrix as one borrowed chunk).
    ///
    /// A source whose feature width disagrees with the model (e.g. a `.zsm`
    /// engine from a different feature space) is a typed
    /// [`ZslError::Config`], never a panic.
    pub fn predict_source<S: FeatureSource + ?Sized>(
        &self,
        source: &S,
        split: SplitKind,
    ) -> Result<Vec<usize>, ZslError> {
        let mut out = Vec::new();
        for chunk in source.stream(split)? {
            let (x, _) = chunk?;
            self.check_feature_width(x.cols())?;
            out.extend(self.predict(&x));
        }
        Ok(out)
    }

    /// Best-`k` ranked predictions per sample (`k` clamped to the class
    /// count), computed chunk-by-chunk.
    pub fn predict_topk(&self, x: &Matrix, k: usize) -> Vec<TopK> {
        let z = self.num_classes();
        let k = k.min(z);
        if self.banded() {
            return self.predict_topk_banded(x, k);
        }
        let mut out = Vec::with_capacity(x.rows());
        self.scores_chunked(x, DEFAULT_CHUNK_ROWS, |_, scores| {
            out.extend(scores.as_slice().chunks(z).map(|row| topk_row(row, k)));
        });
        out
    }

    /// Sharded top-`k`: each row streams its band scores through a bounded
    /// worst-first k-heap ordered by the same total order as [`topk_row`]
    /// (descending score, ties by ascending global class id), so the merged
    /// result is identical to sorting the full row — without ever holding
    /// more than one band of scores plus `k` candidates per row.
    fn predict_topk_banded(&self, x: &Matrix, k: usize) -> Vec<TopK> {
        let mut out = Vec::with_capacity(x.rows());
        self.fold_banded_chunks(
            x,
            DEFAULT_CHUNK_ROWS,
            |rows| vec![BinaryHeap::<Reverse<Cand>>::with_capacity(k + 1); rows],
            |heaps: &mut Vec<BinaryHeap<Reverse<Cand>>>, r, block| {
                if k == 0 {
                    return;
                }
                let width = r.len();
                for (heap, row) in heaps.iter_mut().zip(block.chunks(width)) {
                    for (j, &score) in row.iter().enumerate() {
                        let cand = Cand {
                            score,
                            class: r.start + j,
                        };
                        if heap.len() < k {
                            heap.push(Reverse(cand));
                        } else if cand > heap.peek().expect("k > 0").0 {
                            heap.pop();
                            heap.push(Reverse(cand));
                        }
                    }
                }
            },
            |heaps| {
                out.extend(heaps.into_iter().map(|heap| {
                    let mut ranked: Vec<Cand> =
                        heap.into_iter().map(|Reverse(cand)| cand).collect();
                    ranked.sort_unstable_by(|a, b| b.cmp(a));
                    TopK {
                        classes: ranked.iter().map(|c| c.class).collect(),
                        scores: ranked.iter().map(|c| c.score).collect(),
                    }
                }));
            },
        );
        out
    }
}

/// One streaming top-k candidate. The ordering is "better = greater": higher
/// score first, ties broken by *lower* class id — the exact total order
/// [`topk_row`]'s comparator induces, so heap merges and full sorts agree on
/// every tie, including ties that straddle shard boundaries.
#[derive(Clone, Copy, Debug)]
struct Cand {
    score: f64,
    class: usize,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.class.cmp(&self.class))
    }
}

/// Scores projected features against a fixed bank of class signatures.
///
/// Thin wrapper over [`ScoringEngine`], kept as the stable high-level API;
/// construction performs the same validation and bank caching.
#[derive(Clone, Debug)]
pub struct Classifier {
    engine: ScoringEngine,
}

impl Classifier {
    /// Build a classifier over `signatures` (`num_classes x attr_dim`).
    /// Panics under the same conditions as [`ScoringEngine::new`].
    pub fn new(model: impl Into<TrainedModel>, signatures: Matrix, similarity: Similarity) -> Self {
        Classifier {
            engine: ScoringEngine::new(model, signatures, similarity),
        }
    }

    /// Fallible [`Classifier::new`]: construction failures are typed
    /// [`ZslError::Config`] values, mirroring [`ScoringEngine::try_new`].
    pub fn try_new(
        model: impl Into<TrainedModel>,
        signatures: Matrix,
        similarity: Similarity,
    ) -> Result<Self, ZslError> {
        Ok(Classifier {
            engine: ScoringEngine::try_new(model, signatures, similarity)?,
        })
    }

    /// Number of candidate classes.
    pub fn num_classes(&self) -> usize {
        self.engine.num_classes()
    }

    /// The underlying trained model (any family).
    pub fn model(&self) -> &TrainedModel {
        self.engine.model()
    }

    /// The scoring engine backing this classifier.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// Consume the wrapper, keeping the engine.
    pub fn into_engine(self) -> ScoringEngine {
        self.engine
    }

    /// Full score matrix: `n_samples x num_classes`.
    pub fn scores(&self, x: &Matrix) -> Matrix {
        self.engine.scores(x)
    }

    /// Argmax prediction per sample. See [`ScoringEngine::predict`] for the
    /// NaN-score semantics.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.engine.predict(x)
    }

    /// Best-`k` ranked predictions per sample (`k` clamped to the class count).
    pub fn predict_topk(&self, x: &Matrix, k: usize) -> Vec<TopK> {
        self.engine.predict_topk(x, k)
    }
}

/// The ONE construction-time validation behind every engine constructor:
/// empty, zero-width, or non-finite signature banks and attribute-dimension
/// mismatches are reported as an error message. The panicking constructors
/// ([`ScoringEngine::new`], [`Classifier::new`]) turn the message into a
/// panic; the fallible ones ([`ScoringEngine::try_new`], the `.zsm` loader)
/// turn it into a typed error.
fn check_engine_parts(
    model: &TrainedModel,
    rows: usize,
    cols: usize,
    data: &[f64],
) -> Result<(), String> {
    if rows == 0 {
        return Err("classifier needs at least one class signature".into());
    }
    if cols == 0 {
        return Err(
            "classifier signature bank is zero-width (attr_dim = 0); every class needs at least \
             one attribute"
                .into(),
        );
    }
    debug_assert_eq!(data.len(), rows * cols);
    for (r, row) in data.chunks(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!(
                    "signature bank contains non-finite value {v} at row {r}, col {c}; clean the \
                     bank before constructing a classifier"
                ));
            }
        }
    }
    if model.attr_dim() != cols {
        return Err(format!(
            "model attribute dim {} != signature dim {}",
            model.attr_dim(),
            cols
        ));
    }
    if !model.is_finite() {
        return Err(format!(
            "{} model contains non-finite parameters; refuse to score with it",
            model.family()
        ));
    }
    Ok(())
}

/// Index of the row maximum under [`f64::total_cmp`], first index winning
/// ties. `total_cmp` gives NaN a defined (maximal, for positive NaN) rank, so
/// a NaN score is *selected* — and therefore visible downstream — rather than
/// losing every `>` comparison and silently defaulting to class 0.
fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in row.iter().enumerate().skip(1) {
        if v.total_cmp(&row[best]) == Ordering::Greater {
            best = i;
        }
    }
    best
}

/// Top-`k` of one score row, descending, ties broken by ascending class
/// index. Partitions the `k` best to the front in `O(z)` with
/// `select_nth_unstable_by`, then sorts only that slice — instead of sorting
/// all `z` scores and truncating. The index tie-break makes the comparator a
/// total order, so the output is identical to a full sort.
fn topk_row(row: &[f64], k: usize) -> TopK {
    let z = row.len();
    let mut order: Vec<usize> = (0..z).collect();
    let by_score_desc = |a: &usize, b: &usize| row[*b].total_cmp(&row[*a]).then(a.cmp(b));
    if k < z {
        order.select_nth_unstable_by(k, by_score_desc);
        order.truncate(k);
    }
    order.sort_unstable_by(by_score_desc);
    let scores = order.iter().map(|&c| row[c]).collect();
    TopK {
        classes: order,
        scores,
    }
}

/// Fraction of samples where `predicted[i] == truth[i]`.
/// Panics if lengths differ; returns 0 for empty input.
pub fn overall_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / truth.len() as f64
}

/// Incremental per-class accuracy counter — the one implementation behind
/// [`per_class_accuracy`] / [`mean_per_class_accuracy`] *and* the streamed
/// evaluators in [`crate::eval`].
///
/// Hits and totals are integers, so observation order (and chunking) cannot
/// perturb anything; the only float operations are the final `hits / counts`
/// divisions and the mean over defined classes. Batch and streamed metrics
/// sharing this type is what makes their bit-identity structural rather than
/// a documentation promise.
#[derive(Clone, Debug)]
pub struct ClassAccuracyCounter {
    hits: Vec<usize>,
    counts: Vec<usize>,
}

impl ClassAccuracyCounter {
    /// Counter over `num_classes` classes, all zero.
    pub fn new(num_classes: usize) -> Self {
        ClassAccuracyCounter {
            hits: vec![0; num_classes],
            counts: vec![0; num_classes],
        }
    }

    /// Fold one batch of aligned predictions and ground-truth labels.
    /// Panics on length mismatch or an out-of-range truth label, matching
    /// [`per_class_accuracy`].
    pub fn observe(&mut self, predicted: &[usize], truth: &[usize]) {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        for (&p, &t) in predicted.iter().zip(truth) {
            assert!(t < self.counts.len(), "truth label {t} out of range");
            self.counts[t] += 1;
            if p == t {
                self.hits[t] += 1;
            }
        }
    }

    /// Per-class accuracies; classes with no observed samples yield `None`.
    pub fn per_class(&self) -> Vec<Option<f64>> {
        self.hits
            .iter()
            .zip(&self.counts)
            .map(|(&h, &c)| (c > 0).then(|| h as f64 / c as f64))
            .collect()
    }

    /// Mean of the defined per-class accuracies, 0 when none are defined.
    pub fn mean(&self) -> f64 {
        mean_defined(&self.per_class())
    }
}

/// Mean of the defined entries, 0 when none are defined — the one reduction
/// behind [`ClassAccuracyCounter::mean`], [`mean_per_class_accuracy`], and
/// the [`crate::eval::GzslReport`] accuracies, so every report derives its
/// headline numbers from identical float operations.
pub(crate) fn mean_defined(per_class: &[Option<f64>]) -> f64 {
    let defined: Vec<f64> = per_class.iter().copied().flatten().collect();
    if defined.is_empty() {
        return 0.0;
    }
    defined.iter().sum::<f64>() / defined.len() as f64
}

/// Per-class accuracy over `num_classes` classes. Classes with no ground-truth
/// samples yield `None`. One-shot wrapper over [`ClassAccuracyCounter`].
pub fn per_class_accuracy(
    predicted: &[usize],
    truth: &[usize],
    num_classes: usize,
) -> Vec<Option<f64>> {
    let mut counter = ClassAccuracyCounter::new(num_classes);
    counter.observe(predicted, truth);
    counter.per_class()
}

/// Mean of the defined per-class accuracies — the standard ZSL metric, which
/// is robust to class imbalance. Returns 0 when no class has samples.
pub fn mean_per_class_accuracy(predicted: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    let mut counter = ClassAccuracyCounter::new(num_classes);
    counter.observe(predicted, truth);
    counter.mean()
}

/// Harmonic mean `2·s·u / (s + u)` of seen and unseen accuracy — the headline
/// generalized-ZSL metric. Returns 0 when both inputs are (near) zero.
pub fn harmonic_mean(seen_acc: f64, unseen_acc: f64) -> f64 {
    let denom = seen_acc + unseen_acc;
    if denom <= NORM_EPSILON {
        return 0.0;
    }
    2.0 * seen_acc * unseen_acc / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use crate::model::ProjectionModel;

    /// Identity projection over 2-dim "attributes" with two orthogonal classes.
    fn toy_classifier(similarity: Similarity) -> Classifier {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let signatures = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        Classifier::new(model, signatures, similarity)
    }

    #[test]
    fn cosine_is_scale_invariant_dot_is_not() {
        let x = Matrix::from_rows(&[vec![10.0, 1.0], vec![0.1, 0.2]]);
        let cos = toy_classifier(Similarity::Cosine);
        assert_eq!(cos.predict(&x), vec![0, 1]);
        // Scaling a sample must not change its cosine prediction.
        let x_scaled = Matrix::from_rows(&[vec![1000.0, 100.0], vec![0.1, 0.2]]);
        assert_eq!(cos.predict(&x_scaled), vec![0, 1]);

        let dot = toy_classifier(Similarity::Dot);
        let dot_scores = dot.scores(&x);
        assert!((dot_scores.get(0, 0) - 10.0).abs() < 1e-12);
        let cos_scores = cos.scores(&x);
        assert!(cos_scores.get(0, 0) <= 1.0 + 1e-12);
    }

    #[test]
    fn topk_ranks_best_first_and_clamps_k() {
        let clf = toy_classifier(Similarity::Dot);
        let x = Matrix::from_rows(&[vec![0.2, 0.9]]);
        let ranked = clf.predict_topk(&x, 10);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].classes, vec![1, 0]);
        assert!(ranked[0].scores[0] >= ranked[0].scores[1]);
        let top1 = clf.predict_topk(&x, 1);
        assert_eq!(top1[0].classes, vec![1]);
    }

    #[test]
    fn accuracy_metrics_on_known_inputs() {
        let predicted = [0, 1, 1, 2, 2, 2];
        let truth = [0, 1, 0, 2, 2, 1];
        assert!((overall_accuracy(&predicted, &truth) - 4.0 / 6.0).abs() < 1e-12);

        let per_class = per_class_accuracy(&predicted, &truth, 4);
        assert_eq!(per_class[0], Some(0.5));
        assert_eq!(per_class[1], Some(0.5));
        assert_eq!(per_class[2], Some(1.0));
        assert_eq!(per_class[3], None);

        let mpca = mean_per_class_accuracy(&predicted, &truth, 4);
        assert!((mpca - (0.5 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one class signature")]
    fn classifier_rejects_empty_signature_bank() {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        Classifier::new(model, Matrix::zeros(0, 2), Similarity::Cosine);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn classifier_rejects_zero_width_signature_bank() {
        let model = ProjectionModel::from_weights(Matrix::zeros(2, 0));
        Classifier::new(model, Matrix::zeros(3, 0), Similarity::Cosine);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn classifier_rejects_nan_in_signature_bank() {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let bank = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, f64::NAN]]);
        Classifier::new(model, bank, Similarity::Cosine);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn classifier_rejects_infinity_in_signature_bank() {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let bank = Matrix::from_rows(&[vec![1.0, f64::INFINITY]]);
        Classifier::new(model, bank, Similarity::Dot);
    }

    #[test]
    fn argmax_surfaces_nan_instead_of_defaulting_to_class_zero() {
        // Regression: the old `v > row[best]` loop lost every comparison
        // against NaN, so a NaN score anywhere right of class 0 silently
        // predicted class 0.
        assert_eq!(argmax(&[0.5, f64::NAN, 0.9]), 1);
        assert_eq!(argmax(&[1.0, f64::NAN]), 1);
        // Finite rows keep ordinary argmax semantics, first index wins ties.
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }

    #[test]
    fn nan_feature_scores_are_visible_and_predictions_deterministic() {
        // A NaN feature poisons its whole score row (every dot picks the NaN
        // up, even through zero signature entries). The scores expose the
        // corruption to callers, and predict/predict_topk stay deterministic
        // (total_cmp is a total order) instead of depending on incomparable
        // `>` results.
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let bank = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let clf = Classifier::new(model, bank, Similarity::Dot);
        let x = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![0.0, 1.0]]);
        let scores = clf.scores(&x);
        assert!(
            scores.row(0).iter().all(|v| v.is_nan()),
            "corruption hidden"
        );
        assert!(scores.row(1).iter().all(|v| v.is_finite()));
        // The clean sample is unaffected; the poisoned one resolves to the
        // lowest NaN-scored index under the documented total_cmp order.
        let predictions = clf.predict(&x);
        assert_eq!(predictions[1], 1);
        assert_eq!(predictions[0], 0);
        let ranked = clf.predict_topk(&x, 2);
        assert_eq!(ranked[0].classes, vec![0, 1]);
        assert!(ranked[0].scores.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn topk_select_nth_path_matches_full_sort_reference() {
        let mut rng = crate::data::Rng::new(2027);
        for z in [1usize, 2, 7, 64, 201] {
            let row: Vec<f64> = (0..z).map(|_| rng.normal()).collect();
            for k in [0usize, 1, 3, z / 2, z.saturating_sub(1), z, z + 5] {
                let k = k.min(z);
                // Reference: full sort then truncate (the old implementation).
                let mut order: Vec<usize> = (0..z).collect();
                order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
                order.truncate(k);
                let expected_scores: Vec<f64> = order.iter().map(|&c| row[c]).collect();

                let got = topk_row(&row, k);
                assert_eq!(got.classes, order, "z={z} k={k}");
                assert_eq!(got.scores, expected_scores, "z={z} k={k}");
            }
        }
    }

    #[test]
    fn topk_handles_ties_and_nans_like_full_sort() {
        let row = [1.0, 1.0, f64::NAN, 0.5, 1.0];
        let mut order: Vec<usize> = (0..row.len()).collect();
        order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        for k in 0..=row.len() {
            let got = topk_row(&row, k);
            assert_eq!(got.classes, order[..k], "k={k}");
        }
    }

    #[test]
    fn predict_on_zero_samples_returns_empty() {
        let clf = toy_classifier(Similarity::Cosine);
        let x = Matrix::zeros(0, 2);
        assert!(clf.predict(&x).is_empty());
        assert!(clf.predict_topk(&x, 1).is_empty());
        let scores = clf.scores(&x);
        assert_eq!((scores.rows(), scores.cols()), (0, 2));
    }

    #[test]
    fn single_class_bank_always_predicts_class_zero() {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let bank = Matrix::from_rows(&[vec![0.3, 0.7]]);
        let clf = Classifier::new(model, bank, Similarity::Cosine);
        let x = Matrix::from_rows(&[vec![5.0, -1.0], vec![-2.0, 0.4]]);
        assert_eq!(clf.predict(&x), vec![0, 0]);
        let ranked = clf.predict_topk(&x, 4);
        assert_eq!(ranked[0].classes, vec![0]);
        assert_eq!(ranked[1].classes, vec![0]);
    }

    #[test]
    fn engine_caches_normalized_bank_and_streams_chunks() {
        let model = ProjectionModel::from_weights(Matrix::identity(3));
        let bank = Matrix::from_rows(&[vec![3.0, 0.0, 0.0], vec![0.0, 0.0, 5.0]]);
        let engine = ScoringEngine::new(model, bank, Similarity::Cosine);
        // Bank was normalized once at construction.
        for r in 0..engine.num_classes() {
            let norm: f64 = engine
                .signatures()
                .row(r)
                .iter()
                .map(|v| v * v)
                .sum::<f64>();
            assert!((norm - 1.0).abs() < 1e-12);
        }

        let mut rng = crate::data::Rng::new(9);
        let x = Matrix::from_vec(10, 3, (0..30).map(|_| rng.normal()).collect());
        let full = engine.scores(&x);
        for chunk_rows in [0usize, 1, 3, 10, 64] {
            let mut seen_rows = 0;
            let mut stitched = Vec::new();
            engine.scores_chunked(&x, chunk_rows, |offset, chunk| {
                assert_eq!(offset, seen_rows);
                assert_eq!(chunk.cols(), 2);
                seen_rows += chunk.rows();
                stitched.extend_from_slice(chunk.as_slice());
            });
            assert_eq!(seen_rows, 10);
            assert_eq!(stitched, full.as_slice(), "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn predict_source_matches_predict_on_every_split() {
        let ds = crate::data::SyntheticConfig::new()
            .classes(6, 2)
            .seed(8)
            .build();
        let model = crate::model::EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
        for (split, x) in [
            (SplitKind::Trainval, &ds.train_x),
            (SplitKind::TestSeen, &ds.test_seen_x),
            (SplitKind::TestUnseen, &ds.test_unseen_x),
        ] {
            assert_eq!(
                engine.predict_source(&ds, split).expect("predict_source"),
                engine.predict(x),
                "{split:?}"
            );
        }
    }

    #[test]
    fn engine_results_identical_across_thread_counts() {
        let mut rng = crate::data::Rng::new(33);
        let w = Matrix::from_vec(4, 3, (0..12).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(5, 3, (0..15).map(|_| rng.normal()).collect());
        let x = Matrix::from_vec(40, 4, (0..160).map(|_| rng.normal()).collect());
        let baseline = ScoringEngine::with_threads(
            ProjectionModel::from_weights(w.clone()),
            bank.clone(),
            Similarity::Cosine,
            1,
        );
        for threads in [2usize, 4, 9] {
            let engine = ScoringEngine::with_threads(
                ProjectionModel::from_weights(w.clone()),
                bank.clone(),
                Similarity::Cosine,
                threads,
            );
            assert_eq!(
                engine.scores(&x).as_slice(),
                baseline.scores(&x).as_slice(),
                "threads={threads}"
            );
            assert_eq!(engine.predict(&x), baseline.predict(&x));
        }
    }

    #[test]
    fn f32_precision_tracks_f64_scores_and_is_thread_invariant() {
        let mut rng = crate::data::Rng::new(0xF32);
        let w = Matrix::from_vec(6, 4, (0..24).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(5, 4, (0..20).map(|_| rng.normal()).collect());
        let x = Matrix::from_vec(32, 6, (0..192).map(|_| rng.normal()).collect());
        let f64_engine = ScoringEngine::with_threads(
            ProjectionModel::from_weights(w.clone()),
            bank.clone(),
            Similarity::Cosine,
            1,
        );
        assert_eq!(f64_engine.precision(), ScoringPrecision::F64);
        let f32_engine = f64_engine.clone().with_precision(ScoringPrecision::F32);
        assert_eq!(f32_engine.precision(), ScoringPrecision::F32);
        let reference = f32_engine.scores(&x);
        // Single precision tracks double to f32 roundoff on these magnitudes.
        let drift = reference.max_abs_diff(&f64_engine.scores(&x));
        assert!(
            drift > 0.0 && drift < 1e-4,
            "f32 drift {drift} out of range"
        );
        // Bit-identical across thread counts within the f32 precision.
        for threads in [2usize, 4, 9] {
            let mut engine = f32_engine.clone();
            engine.set_threads(threads);
            assert_eq!(
                engine.scores(&x).as_slice(),
                reference.as_slice(),
                "threads={threads}"
            );
        }
        // Round-tripping back to f64 restores the exact double-precision path.
        let restored = f32_engine.clone().with_precision(ScoringPrecision::F64);
        assert_eq!(
            restored.scores(&x).as_slice(),
            f64_engine.scores(&x).as_slice()
        );
    }

    #[test]
    fn scoring_precision_parses_and_displays_round_trip() {
        for p in [ScoringPrecision::F64, ScoringPrecision::F32] {
            assert_eq!(p.to_string().parse::<ScoringPrecision>(), Ok(p));
        }
        assert_eq!("F32".parse::<ScoringPrecision>(), Ok(ScoringPrecision::F32));
        assert!("f16".parse::<ScoringPrecision>().is_err());
    }

    #[test]
    fn similarity_parses_and_displays_round_trip() {
        for sim in [Similarity::Cosine, Similarity::Dot] {
            assert_eq!(sim.to_string().parse::<Similarity>(), Ok(sim));
        }
        assert_eq!("COSINE".parse::<Similarity>(), Ok(Similarity::Cosine));
        assert!("euclidean".parse::<Similarity>().is_err());
    }

    #[test]
    fn harmonic_mean_known_values() {
        assert!((harmonic_mean(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(0.8, 0.4) - 2.0 * 0.8 * 0.4 / 1.2).abs() < 1e-12);
        assert_eq!(harmonic_mean(0.0, 0.9), 0.0);
        assert_eq!(harmonic_mean(0.0, 0.0), 0.0);
    }
}
