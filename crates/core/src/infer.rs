//! Batch inference and evaluation for trained ZSL models.
//!
//! A [`Classifier`] pairs a [`ProjectionModel`] with a bank of class
//! signatures: features are projected into attribute space and scored against
//! every signature with the configured [`Similarity`]. Evaluation helpers
//! cover the standard ZSL protocol (mean per-class accuracy) and the
//! generalized protocol (harmonic mean of seen and unseen accuracy).

use crate::linalg::{Matrix, NORM_EPSILON};
use crate::model::ProjectionModel;

/// Scoring function between a projected sample and a class signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Similarity {
    /// Cosine similarity — scale invariant, the usual ZSL choice.
    #[default]
    Cosine,
    /// Raw dot product — cheaper, appropriate when signatures are already
    /// normalized.
    Dot,
}

/// A ranked prediction: class indices ordered best-first with their scores.
#[derive(Clone, Debug, PartialEq)]
pub struct TopK {
    /// Class indices, best first.
    pub classes: Vec<usize>,
    /// Similarity scores aligned with `classes`.
    pub scores: Vec<f64>,
}

/// Scores projected features against a fixed bank of class signatures.
#[derive(Clone, Debug)]
pub struct Classifier {
    model: ProjectionModel,
    /// `num_classes x attr_dim`, one row per candidate class.
    signatures: Matrix,
    similarity: Similarity,
}

impl Classifier {
    /// Build a classifier over `signatures` (`num_classes x attr_dim`).
    /// Panics if the signature bank is empty or its width does not match the
    /// model's attribute dimension.
    pub fn new(model: ProjectionModel, signatures: Matrix, similarity: Similarity) -> Self {
        assert!(
            signatures.rows() > 0,
            "classifier needs at least one class signature"
        );
        assert_eq!(
            model.weights().cols(),
            signatures.cols(),
            "model attribute dim {} != signature dim {}",
            model.weights().cols(),
            signatures.cols()
        );
        Classifier {
            model,
            signatures,
            similarity,
        }
    }

    /// Number of candidate classes.
    pub fn num_classes(&self) -> usize {
        self.signatures.rows()
    }

    /// The underlying projection model.
    pub fn model(&self) -> &ProjectionModel {
        &self.model
    }

    /// Full score matrix: `n_samples x num_classes`.
    pub fn scores(&self, x: &Matrix) -> Matrix {
        let mut projected = self.model.project(x);
        let mut signatures = self.signatures.clone();
        if self.similarity == Similarity::Cosine {
            projected.l2_normalize_rows();
            signatures.l2_normalize_rows();
        }
        projected.matmul(&signatures.transpose())
    }

    /// Argmax prediction per sample.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.scores(x)
            .as_slice()
            .chunks(self.num_classes())
            .map(argmax)
            .collect()
    }

    /// Best-`k` ranked predictions per sample (`k` clamped to the class count).
    pub fn predict_topk(&self, x: &Matrix, k: usize) -> Vec<TopK> {
        let z = self.num_classes();
        let k = k.min(z);
        self.scores(x)
            .as_slice()
            .chunks(z)
            .map(|row| {
                let mut order: Vec<usize> = (0..z).collect();
                order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
                order.truncate(k);
                let scores = order.iter().map(|&c| row[c]).collect();
                TopK {
                    classes: order,
                    scores,
                }
            })
            .collect()
    }
}

fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Fraction of samples where `predicted[i] == truth[i]`.
/// Panics if lengths differ; returns 0 for empty input.
pub fn overall_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / truth.len() as f64
}

/// Per-class accuracy over `num_classes` classes. Classes with no ground-truth
/// samples yield `None`.
pub fn per_class_accuracy(
    predicted: &[usize],
    truth: &[usize],
    num_classes: usize,
) -> Vec<Option<f64>> {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut hits = vec![0usize; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        assert!(t < num_classes, "truth label {t} out of range");
        counts[t] += 1;
        if p == t {
            hits[t] += 1;
        }
    }
    hits.iter()
        .zip(&counts)
        .map(|(&h, &c)| (c > 0).then(|| h as f64 / c as f64))
        .collect()
}

/// Mean of the defined per-class accuracies — the standard ZSL metric, which
/// is robust to class imbalance. Returns 0 when no class has samples.
pub fn mean_per_class_accuracy(predicted: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    let per_class = per_class_accuracy(predicted, truth, num_classes);
    let defined: Vec<f64> = per_class.into_iter().flatten().collect();
    if defined.is_empty() {
        return 0.0;
    }
    defined.iter().sum::<f64>() / defined.len() as f64
}

/// Harmonic mean `2·s·u / (s + u)` of seen and unseen accuracy — the headline
/// generalized-ZSL metric. Returns 0 when both inputs are (near) zero.
pub fn harmonic_mean(seen_acc: f64, unseen_acc: f64) -> f64 {
    let denom = seen_acc + unseen_acc;
    if denom <= NORM_EPSILON {
        return 0.0;
    }
    2.0 * seen_acc * unseen_acc / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use crate::model::ProjectionModel;

    /// Identity projection over 2-dim "attributes" with two orthogonal classes.
    fn toy_classifier(similarity: Similarity) -> Classifier {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        let signatures = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        Classifier::new(model, signatures, similarity)
    }

    #[test]
    fn cosine_is_scale_invariant_dot_is_not() {
        let x = Matrix::from_rows(&[vec![10.0, 1.0], vec![0.1, 0.2]]);
        let cos = toy_classifier(Similarity::Cosine);
        assert_eq!(cos.predict(&x), vec![0, 1]);
        // Scaling a sample must not change its cosine prediction.
        let x_scaled = Matrix::from_rows(&[vec![1000.0, 100.0], vec![0.1, 0.2]]);
        assert_eq!(cos.predict(&x_scaled), vec![0, 1]);

        let dot = toy_classifier(Similarity::Dot);
        let dot_scores = dot.scores(&x);
        assert!((dot_scores.get(0, 0) - 10.0).abs() < 1e-12);
        let cos_scores = cos.scores(&x);
        assert!(cos_scores.get(0, 0) <= 1.0 + 1e-12);
    }

    #[test]
    fn topk_ranks_best_first_and_clamps_k() {
        let clf = toy_classifier(Similarity::Dot);
        let x = Matrix::from_rows(&[vec![0.2, 0.9]]);
        let ranked = clf.predict_topk(&x, 10);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].classes, vec![1, 0]);
        assert!(ranked[0].scores[0] >= ranked[0].scores[1]);
        let top1 = clf.predict_topk(&x, 1);
        assert_eq!(top1[0].classes, vec![1]);
    }

    #[test]
    fn accuracy_metrics_on_known_inputs() {
        let predicted = [0, 1, 1, 2, 2, 2];
        let truth = [0, 1, 0, 2, 2, 1];
        assert!((overall_accuracy(&predicted, &truth) - 4.0 / 6.0).abs() < 1e-12);

        let per_class = per_class_accuracy(&predicted, &truth, 4);
        assert_eq!(per_class[0], Some(0.5));
        assert_eq!(per_class[1], Some(0.5));
        assert_eq!(per_class[2], Some(1.0));
        assert_eq!(per_class[3], None);

        let mpca = mean_per_class_accuracy(&predicted, &truth, 4);
        assert!((mpca - (0.5 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one class signature")]
    fn classifier_rejects_empty_signature_bank() {
        let model = ProjectionModel::from_weights(Matrix::identity(2));
        Classifier::new(model, Matrix::zeros(0, 2), Similarity::Cosine);
    }

    #[test]
    fn harmonic_mean_known_values() {
        assert!((harmonic_mean(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(0.8, 0.4) - 2.0 * 0.8 * 0.4 / 1.2).abs() < 1e-12);
        assert_eq!(harmonic_mean(0.0, 0.9), 0.0);
        assert_eq!(harmonic_mean(0.0, 0.0), 0.0);
    }
}
