//! Dense, row-major linear algebra for the ZSL pipeline.
//!
//! Everything downstream (the closed-form trainer in [`crate::model`], the
//! batch scorer in [`crate::infer`]) is expressed over this one [`Matrix`]
//! type, so the hot paths that later PRs will optimize (blocked matmul,
//! Cholesky solves) live here and nowhere else.

use std::fmt;

/// Guard used when dividing by row norms: rows with an L2 norm at or below
/// this value are left untouched by [`Matrix::l2_normalize_rows`].
pub const NORM_EPSILON: f64 = 1e-12;

/// Cache-blocking tile edge for [`Matrix::matmul`]. 64 doubles = 512 bytes per
/// row segment, so an A-tile, B-tile, and C-tile together stay well inside L1/L2.
const BLOCK: usize = 64;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix handed to [`Matrix::cholesky`] was not symmetric
    /// positive-definite (a non-positive pivot was encountered).
    NotPositiveDefinite { pivot_index: usize },
    /// Operand shapes do not line up for the requested operation.
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot_index } => write!(
                f,
                "matrix is not symmetric positive-definite (pivot {pivot_index} <= 0)"
            ),
            LinalgError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// Row-major layout matches the "one row per sample / per class signature"
/// convention used throughout the crate: `X` is `n_samples x feature_dim`,
/// signatures `S` are `n_classes x attr_dim`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// An all-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Blocked (cache-tiled) matrix product `self * other`.
    ///
    /// Uses an `i-k-j` inner ordering over `BLOCK`-sized tiles so that the
    /// innermost loop streams contiguously over a row of `other` and a row of
    /// the output — the access pattern that keeps this kernel bandwidth-bound
    /// instead of latency-bound. Verified against [`Matrix::matmul_naive`] in
    /// the test suite.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k_dim, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for ii in (0..n).step_by(BLOCK) {
            let i_end = (ii + BLOCK).min(n);
            for kk in (0..k_dim).step_by(BLOCK) {
                let k_end = (kk + BLOCK).min(k_dim);
                for jj in (0..m).step_by(BLOCK) {
                    let j_end = (jj + BLOCK).min(m);
                    for i in ii..i_end {
                        for k in kk..k_end {
                            let a = self.data[i * k_dim + k];
                            let b_row = &other.data[k * m + jj..k * m + j_end];
                            let c_row = &mut out.data[i * m + jj..i * m + j_end];
                            for (c, &b) in c_row.iter_mut().zip(b_row) {
                                *c += a * b;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Textbook triple-loop product. Kept as the oracle the blocked kernel is
    /// tested against; do not use on hot paths.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scale every row to unit L2 norm, in place.
    ///
    /// Rows whose norm is at or below [`NORM_EPSILON`] are left unchanged so
    /// that zero rows (e.g. an absent attribute signature) never produce NaNs.
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > NORM_EPSILON {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// Add `gamma` to every diagonal element, in place (ridge regularization).
    /// Panics if the matrix is not square.
    pub fn add_scaled_identity(&mut self, gamma: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_scaled_identity needs a square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += gamma;
        }
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    /// Panics if shapes differ. Handy for approximate test assertions.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix. Only the lower triangle of `self` is read.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.rows),
                got: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                for k in 0..j {
                    sum -= l.data[i * n + k] * l.data[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot_index: i });
                    }
                    l.data[i * n + j] = sum.sqrt();
                } else {
                    l.data[i * n + j] = sum / l.data[j * n + j];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`, reusable across
/// many right-hand sides (the ESZSL trainer solves against whole matrices).
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` for a single right-hand side via forward then backward
    /// substitution.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let l_row = &self.l.data[i * n..i * n + i];
            for (l, yk) in l_row.iter().zip(&y) {
                sum -= l * yk;
            }
            y[i] = sum / self.l.data[i * n + i];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.data[k * n + i] * xk;
            }
            x[i] = sum / self.l.data[i * n + i];
        }
        x
    }

    /// Solve `A X = B` column by column, returning `X` with `B`'s shape.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.l.rows;
        if b.rows != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols),
                got: (b.rows, b.cols),
            });
        }
        let mut out = Matrix::zeros(n, b.cols);
        let mut col = vec![0.0; n];
        for j in 0..b.cols {
            for (i, c) in col.iter_mut().enumerate() {
                *c = b.data[i * b.cols + j];
            }
            let x = self.solve_vec(&col);
            for (i, &xi) in x.iter().enumerate() {
                out.data[i * b.cols + j] = xi;
            }
        }
        Ok(out)
    }
}

/// Solve the SPD system `A X = B` (factor once, solve all columns).
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    a.cholesky()?.solve_matrix(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.normal()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_boundaries() {
        let mut rng = Rng::new(42);
        // Sizes straddle the 64-wide tile on every axis.
        for &(n, k, m) in &[(1, 1, 1), (3, 5, 2), (63, 64, 65), (70, 129, 33)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "blocked vs naive diverged at {n}x{k}x{m}"
            );
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::new(7);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn transpose_is_involution_and_swaps_shape() {
        let mut rng = Rng::new(3);
        let a = random_matrix(&mut rng, 4, 9);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (9, 4));
        assert_eq!(t.get(2, 3), a.get(3, 2));
        assert!(t.transpose().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn normalize_rows_handles_1x1_single_row_and_zero_row() {
        // 1x1
        let mut m = Matrix::from_vec(1, 1, vec![-5.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) + 1.0).abs() < 1e-15);

        // single row
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-15);
        assert!((m.get(0, 1) - 0.8).abs() < 1e-15);

        // zero row stays zero (epsilon guard), nonzero row still normalized
        let mut m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        m.l2_normalize_rows();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        let norm: f64 = m.row(1).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_solve_round_trip() {
        let mut rng = Rng::new(99);
        let g = random_matrix(&mut rng, 12, 12);
        // G Gᵀ + I is SPD.
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(1.0);
        let b: Vec<f64> = (0..12).map(|_| rng.normal()).collect();
        let chol = a.cholesky().expect("SPD");
        let x = chol.solve_vec(&b);
        // A x ≈ b
        let ax = a.matmul(&Matrix::from_vec(12, 1, x));
        let b_mat = Matrix::from_vec(12, 1, b);
        assert!(ax.max_abs_diff(&b_mat) < 1e-8);
    }

    #[test]
    fn solve_spd_matrix_rhs_round_trip() {
        let mut rng = Rng::new(5);
        let g = random_matrix(&mut rng, 8, 8);
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(0.5);
        let b = random_matrix(&mut rng, 8, 3);
        let x = solve_spd(&a, &b).expect("SPD");
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn cholesky_rejects_indefinite_and_nonsquare() {
        let indefinite = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            indefinite.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.cholesky(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn add_scaled_identity_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 1, 2.0);
        m.add_scaled_identity(0.25);
        assert_eq!(m.get(0, 0), 0.25);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 2), 0.25);
    }
}
