//! Dense, row-major linear algebra for the ZSL pipeline.
//!
//! Everything downstream (the closed-form trainer in [`crate::model`], the
//! batch scorer in [`crate::infer`]) is expressed over this one [`Matrix`]
//! type, so the hot paths that later PRs will optimize (blocked matmul,
//! Cholesky solves) live here and nowhere else.

use std::fmt;

/// Guard used when dividing by row norms: rows with an L2 norm at or below
/// this value are left untouched by [`Matrix::l2_normalize_rows`].
pub const NORM_EPSILON: f64 = 1e-12;

/// Cache-blocking tile edge for [`Matrix::matmul`]. 64 doubles = 512 bytes per
/// row segment, so an A-tile, B-tile, and C-tile together stay well inside L1/L2.
const BLOCK: usize = 64;

/// Below this many multiply-adds the parallel entry points run the serial
/// kernel instead: spawning scoped threads costs tens of microseconds, which
/// only amortizes once there is real work to split.
const PARALLEL_WORK_CUTOFF: usize = 1 << 17;

/// Number of worker threads the hardware supports, used as the default by the
/// parallel matmul paths and [`crate::infer::ScoringEngine`]. Falls back to 1
/// when the platform cannot report its parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Blocked `i-k-j` kernel over raw row-major slabs: `out += a * b` where `a`
/// is `n x k_dim`, `b` is `k_dim x m`, and `out` is `n x m` (must be zeroed by
/// the caller). Shared by the serial and row-banded parallel matmul paths so
/// both produce bit-identical results.
fn gemm_into(a: &[f64], n: usize, k_dim: usize, b: &[f64], m: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), n * k_dim);
    debug_assert_eq!(b.len(), k_dim * m);
    debug_assert_eq!(out.len(), n * m);
    for ii in (0..n).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(n);
        for kk in (0..k_dim).step_by(BLOCK) {
            let k_end = (kk + BLOCK).min(k_dim);
            for jj in (0..m).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(m);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let a_ik = a[i * k_dim + k];
                        let b_row = &b[k * m + jj..k * m + j_end];
                        let c_row = &mut out[i * m + jj..i * m + j_end];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += a_ik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `A · Bᵀ` kernel over raw slabs where `bt` is already the packed row-major
/// transpose (`z x k_dim`): every inner product streams two contiguous rows,
/// the access pattern the scoring path (`X·Sᵀ` against a signature bank)
/// needs. Blocked over `bt` rows so a tile of signatures stays cache-hot
/// across consecutive samples, and register-blocked four signatures at a time
/// so each sample-row element is loaded once per four outputs.
fn gemm_bt_into(a: &[f64], n: usize, k_dim: usize, bt: &[f64], z: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), n * k_dim);
    debug_assert_eq!(bt.len(), z * k_dim);
    debug_assert_eq!(out.len(), n * z);
    for jj in (0..z).step_by(BLOCK) {
        let j_end = (jj + BLOCK).min(z);
        for i in 0..n {
            let a_row = &a[i * k_dim..(i + 1) * k_dim];
            let out_row = &mut out[i * z + jj..i * z + j_end];
            let mut j = jj;
            while j + 4 <= j_end {
                let quad = dot4(
                    a_row,
                    &bt[j * k_dim..(j + 1) * k_dim],
                    &bt[(j + 1) * k_dim..(j + 2) * k_dim],
                    &bt[(j + 2) * k_dim..(j + 3) * k_dim],
                    &bt[(j + 3) * k_dim..(j + 4) * k_dim],
                );
                out_row[j - jj..j - jj + 4].copy_from_slice(&quad);
                j += 4;
            }
            for (o, jr) in out_row[j - jj..].iter_mut().zip(j..j_end) {
                *o = dot(a_row, &bt[jr * k_dim..(jr + 1) * k_dim]);
            }
        }
    }
}

/// Four simultaneous dot products of `a` against `b0..b3`. Each output keeps
/// a single sequential accumulator (so per-output numerics match the naive
/// order), while the four independent chains give the CPU instruction-level
/// parallelism and reuse every `a` element four times per load.
fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    let mut s = [0.0f64; 4];
    for ((((&av, &v0), &v1), &v2), &v3) in a.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s[0] += av * v0;
        s[1] += av * v1;
        s[2] += av * v2;
        s[3] += av * v3;
    }
    s
}

/// Four-accumulator unrolled dot product. The independent accumulators break
/// the serial FP dependency chain so the compiler can keep several FMAs in
/// flight; the remainder is summed separately and added once at the end.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main_len = a.len() / 4 * 4;
    let (a_main, a_tail) = a.split_at(main_len);
    let (b_main, b_tail) = b.split_at(main_len);
    let mut acc = [0.0f64; 4];
    for (av, bv) in a_main.chunks_exact(4).zip(b_main.chunks_exact(4)) {
        acc[0] += av[0] * bv[0];
        acc[1] += av[1] * bv[1];
        acc[2] += av[2] * bv[2];
        acc[3] += av[3] * bv[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Split `a` (`rows x a_cols`) and `out` (`rows x out_cols`) into matching
/// contiguous row bands — one per thread, sized within one row of each other —
/// and run `kernel` on each band in its own scoped thread. The disjoint
/// `split_at_mut` slices make the parallelism safe without any locking.
fn par_row_bands<F>(
    rows: usize,
    threads: usize,
    a: &[f64],
    a_cols: usize,
    out: &mut [f64],
    out_cols: usize,
    kernel: F,
) where
    F: Fn(&[f64], usize, &mut [f64]) + Sync,
{
    let base = rows / threads;
    let extra = rows % threads;
    std::thread::scope(|scope| {
        let kernel = &kernel;
        let mut a_rest = a;
        let mut out_rest = out;
        for t in 0..threads {
            let band = base + usize::from(t < extra);
            if band == 0 {
                continue;
            }
            let (a_band, a_tail) = a_rest.split_at(band * a_cols);
            a_rest = a_tail;
            let (out_band, out_tail) = std::mem::take(&mut out_rest).split_at_mut(band * out_cols);
            out_rest = out_tail;
            scope.spawn(move || kernel(a_band, band, out_band));
        }
    });
}

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix handed to [`Matrix::cholesky`] was not symmetric
    /// positive-definite (a non-positive pivot was encountered).
    NotPositiveDefinite { pivot_index: usize },
    /// Operand shapes do not line up for the requested operation.
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// The spectral Sylvester solve hit an eigenvalue pair whose sum is
    /// numerically zero, so `AX + XB = C` has no unique solution.
    SingularSylvester { detail: String },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot_index } => write!(
                f,
                "matrix is not symmetric positive-definite (pivot {pivot_index} <= 0)"
            ),
            LinalgError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::SingularSylvester { detail } => {
                write!(f, "singular Sylvester system: {detail}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// Row-major layout matches the "one row per sample / per class signature"
/// convention used throughout the crate: `X` is `n_samples x feature_dim`,
/// signatures `S` are `n_classes x attr_dim`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// An all-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Blocked (cache-tiled) matrix product `self * other`.
    ///
    /// Uses an `i-k-j` inner ordering over `BLOCK`-sized tiles so that the
    /// innermost loop streams contiguously over a row of `other` and a row of
    /// the output — the access pattern that keeps this kernel bandwidth-bound
    /// instead of latency-bound. Verified against [`Matrix::matmul_naive`] in
    /// the test suite.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k_dim, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        gemm_into(&self.data, n, k_dim, &other.data, m, &mut out.data);
        out
    }

    /// Multi-threaded [`Matrix::matmul`]: rows of `self` are split into
    /// contiguous bands, one scoped thread per band, each running the same
    /// blocked kernel into its disjoint slice of the output.
    ///
    /// Because banding never changes the per-row accumulation order, the
    /// result is **bit-identical** to the serial product for every thread
    /// count. Small products (or `threads <= 1`) fall back to the serial
    /// kernel, so this is safe to call unconditionally.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let threads = threads.clamp(1, self.rows.max(1));
        if threads == 1 || self.rows * self.cols * other.cols < PARALLEL_WORK_CUTOFF {
            return self.matmul(other);
        }
        let (k_dim, m) = (self.cols, other.cols);
        let mut out = Matrix::zeros(self.rows, m);
        par_row_bands(
            self.rows,
            threads,
            &self.data,
            k_dim,
            &mut out.data,
            m,
            |a_band, rows, out_band| gemm_into(a_band, rows, k_dim, &other.data, m, out_band),
        );
        out
    }

    /// `self · otherᵀ` without materializing the transpose: `other` is read
    /// as a packed `z x k` row-major bank, so every inner product streams two
    /// contiguous rows. This is the natural layout for the scoring shape
    /// `X · Sᵀ`, where `other` holds one class signature per row.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm_bt_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
        out
    }

    /// Multi-threaded [`Matrix::matmul_bt`], row-banded like
    /// [`Matrix::matmul_parallel`] and likewise bit-identical to the serial
    /// path for every thread count.
    pub fn matmul_bt_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let threads = threads.clamp(1, self.rows.max(1));
        if threads == 1 || self.rows * self.cols * other.rows < PARALLEL_WORK_CUTOFF {
            return self.matmul_bt(other);
        }
        let (k_dim, z) = (self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, z);
        par_row_bands(
            self.rows,
            threads,
            &self.data,
            k_dim,
            &mut out.data,
            z,
            |a_band, rows, out_band| gemm_bt_into(a_band, rows, k_dim, &other.data, z, out_band),
        );
        out
    }

    /// Accumulate `self += aᵀ · b` where `a` is `n x rows(self)` and `b` is
    /// `n x cols(self)` — the Gram-fold primitive behind out-of-core
    /// training.
    ///
    /// Runs the same blocked kernel as [`Matrix::matmul`], which adds into
    /// each output element in strictly ascending order over `a`'s rows.
    /// Folding a tall matrix as consecutive row slabs therefore performs the
    /// *identical* floating-point addition sequence as
    /// `a.transpose().matmul(&b)` in one shot: streamed Gram matrices are
    /// bit-identical to the in-memory product for every chunk size (the
    /// differential suite in `tests/streaming_equiv.rs` pins this).
    pub fn add_transposed_product(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.rows, b.rows,
            "add_transposed_product shape mismatch: ({}x{})ᵀ * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        assert_eq!(
            (self.rows, self.cols),
            (a.cols, b.cols),
            "add_transposed_product output must be {}x{}, got {}x{}",
            a.cols,
            b.cols,
            self.rows,
            self.cols
        );
        if a.rows == 0 {
            return;
        }
        let at = a.transpose();
        gemm_into(&at.data, a.cols, a.rows, &b.data, b.cols, &mut self.data);
    }

    /// Copy of the contiguous row slab `range.start..range.end` — the
    /// building block for chunked streaming over huge sample matrices.
    pub fn row_block(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {}..{} out of bounds for {} rows",
            range.start,
            range.end,
            self.rows
        );
        Matrix {
            rows: range.end - range.start,
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Copy of arbitrary (possibly repeated, unordered) rows into a new
    /// matrix — the gather primitive behind split materialization and k-fold
    /// subset extraction. Panics on an out-of-range index; callers validate
    /// indices against their own error types first.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "row index {src} out of bounds for {} rows",
                self.rows
            );
            out.data[dst * self.cols..(dst + 1) * self.cols]
                .copy_from_slice(&self.data[src * self.cols..(src + 1) * self.cols]);
        }
        out
    }

    /// Textbook triple-loop product. Kept as the oracle the blocked kernel is
    /// tested against; do not use on hot paths.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scale every row to unit L2 norm, in place.
    ///
    /// Rows whose norm is at or below [`NORM_EPSILON`] are left unchanged so
    /// that zero rows (e.g. an absent attribute signature) never produce NaNs.
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > NORM_EPSILON {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// Add `gamma` to every diagonal element, in place (ridge regularization).
    /// Panics if the matrix is not square.
    pub fn add_scaled_identity(&mut self, gamma: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_scaled_identity needs a square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += gamma;
        }
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    /// Panics if shapes differ. Handy for approximate test assertions.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix. Only the lower triangle of `self` is read.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.rows),
                got: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                for k in 0..j {
                    sum -= l.data[i * n + k] * l.data[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot_index: i });
                    }
                    l.data[i * n + j] = sum.sqrt();
                } else {
                    l.data[i * n + j] = sum / l.data[j * n + j];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`, reusable across
/// many right-hand sides (the ESZSL trainer solves against whole matrices).
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` for a single right-hand side via forward then backward
    /// substitution.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        let mut x = vec![0.0; n];
        self.solve_into(b, &mut y, &mut x);
        x
    }

    /// Forward (`L y = b`) then backward (`Lᵀ x = y`) substitution into
    /// caller-provided buffers, so batched solves reuse scratch instead of
    /// allocating per right-hand side.
    fn solve_into(&self, b: &[f64], y: &mut [f64], x: &mut [f64]) {
        let n = self.l.rows;
        for i in 0..n {
            let mut sum = b[i];
            let l_row = &self.l.data[i * n..i * n + i];
            for (l, yk) in l_row.iter().zip(y.iter()) {
                sum -= l * yk;
            }
            y[i] = sum / self.l.data[i * n + i];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.data[k * n + i] * xk;
            }
            x[i] = sum / self.l.data[i * n + i];
        }
    }

    /// Solve `A X = B` for all right-hand sides, returning `X` with `B`'s
    /// shape.
    ///
    /// `B` is transposed once up front so every right-hand side is a
    /// contiguous row (the old path gathered each column with stride
    /// `b.cols`, a cache miss per element), solved row-wise with shared
    /// scratch, and the result transposed back. The per-column arithmetic is
    /// unchanged, so results are bit-identical to the strided path.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.l.rows;
        if b.rows != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols),
                got: (b.rows, b.cols),
            });
        }
        let bt = b.transpose();
        let mut xt = Matrix::zeros(b.cols, n);
        let mut y = vec![0.0; n];
        for j in 0..b.cols {
            self.solve_into(bt.row(j), &mut y, xt.row_mut(j));
        }
        Ok(xt.transpose())
    }
}

/// Solve the SPD system `A X = B` (factor once, solve all columns).
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    a.cholesky()?.solve_matrix(b)
}

/// Upper bound on cyclic Jacobi sweeps. Jacobi converges quadratically, so
/// well-conditioned symmetric matrices reach machine precision in well under
/// ten sweeps; the cap only guards pathological inputs.
const MAX_JACOBI_SWEEPS: usize = 64;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, from
/// [`Matrix::symmetric_eigen`].
///
/// Column `j` of [`SymmetricEigen::vectors`] is the (unit-norm) eigenvector
/// for `values[j]`. Eigenvalues are reported in the order the Jacobi sweep
/// leaves them — callers that need sorting sort themselves. The computation
/// is fully deterministic: identical input bits give identical output bits,
/// which is what lets the SAE trainer inherit the streamed-equals-in-memory
/// bit-identity guarantee from its (chunk-order-invariant) accumulated
/// inputs.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: Matrix,
}

impl SymmetricEigen {
    /// The eigenvalues, in sweep order (unsorted).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The orthogonal eigenvector matrix `V` (one eigenvector per column).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }
}

impl Matrix {
    /// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
    ///
    /// Only symmetry is assumed (the input is read as-is; strictly the
    /// average of both triangles is what the rotations see). Returns a
    /// [`LinalgError::ShapeMismatch`] for non-square input. Sweeps stop once
    /// the off-diagonal Frobenius norm falls below `1e-15 · ‖A‖_F`.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.rows),
                got: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        if n <= 1 {
            return Ok(SymmetricEigen {
                values: a.data.clone(),
                vectors: v,
            });
        }
        let tol = (self.frobenius_norm() * 1e-15).max(f64::MIN_POSITIVE);
        for _ in 0..MAX_JACOBI_SWEEPS {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += a.data[p * n + q] * a.data[p * n + q];
                }
            }
            if off.sqrt() <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = a.data[p * n + q];
                    if apq == 0.0 {
                        continue;
                    }
                    let theta = (a.data[q * n + q] - a.data[p * n + p]) / (2.0 * apq);
                    let t = if theta == 0.0 {
                        1.0
                    } else {
                        theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt())
                    };
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // A ← Jᵀ A J with the rotation in the (p, q) plane.
                    for k in 0..n {
                        let akp = a.data[k * n + p];
                        let akq = a.data[k * n + q];
                        a.data[k * n + p] = c * akp - s * akq;
                        a.data[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a.data[p * n + k];
                        let aqk = a.data[q * n + k];
                        a.data[p * n + k] = c * apk - s * aqk;
                        a.data[q * n + k] = s * apk + c * aqk;
                    }
                    // The rotation zeroes this pair analytically; pin it so
                    // round-off never leaks back into later sweeps.
                    a.data[p * n + q] = 0.0;
                    a.data[q * n + p] = 0.0;
                    for k in 0..n {
                        let vkp = v.data[k * n + p];
                        let vkq = v.data[k * n + q];
                        v.data[k * n + p] = c * vkp - s * vkq;
                        v.data[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let values = (0..n).map(|i| a.data[i * n + i]).collect();
        Ok(SymmetricEigen { values, vectors: v })
    }
}

/// Solve the Sylvester equation `A X + X B = C` for symmetric `A` (`p x p`)
/// and `B` (`q x q`) with `C` of shape `p x q` — the closed form behind the
/// SAE trainer (Bartels–Stewart specialized to the symmetric case via two
/// eigendecompositions).
///
/// With `A = U diag(α) Uᵀ` and `B = V diag(β) Vᵀ`, the transformed system is
/// diagonal: `X̃ij = C̃ij / (αi + βj)` where `C̃ = Uᵀ C V`, and
/// `X = U X̃ Vᵀ`. An eigenvalue pair with `αi + βj` numerically zero (below
/// `1e-12` relative to the spectrum) is a [`LinalgError::SingularSylvester`]
/// — for the SAE system both operands are positive semi-definite with at
/// least one positive definite, so this never fires on valid training input.
pub fn solve_sylvester(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, LinalgError> {
    if c.rows() != a.rows() || c.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), b.rows()),
            got: (c.rows(), c.cols()),
        });
    }
    let ea = a.symmetric_eigen()?;
    let eb = b.symmetric_eigen()?;
    let ct = ea.vectors().transpose().matmul(c).matmul(eb.vectors());
    let scale = ea
        .values()
        .iter()
        .chain(eb.values())
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1.0);
    let (p, q) = (c.rows(), c.cols());
    let mut xt = Matrix::zeros(p, q);
    for i in 0..p {
        for j in 0..q {
            let denom = ea.values()[i] + eb.values()[j];
            if denom.abs() <= scale * 1e-12 {
                return Err(LinalgError::SingularSylvester {
                    detail: format!(
                        "eigenvalue pair ({}, {}) sums to {denom:e}, below the conditioning floor",
                        ea.values()[i],
                        eb.values()[j]
                    ),
                });
            }
            xt.data[i * q + j] = ct.data[i * q + j] / denom;
        }
    }
    Ok(ea.vectors().matmul(&xt).matmul(&eb.vectors().transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.normal()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_boundaries() {
        let mut rng = Rng::new(42);
        // Sizes straddle the 64-wide tile on every axis.
        for &(n, k, m) in &[(1, 1, 1), (3, 5, 2), (63, 64, 65), (70, 129, 33)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "blocked vs naive diverged at {n}x{k}x{m}"
            );
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_across_thread_counts() {
        let mut rng = Rng::new(17);
        // Shapes straddle the 64-wide tile and include sizes above and below
        // the parallel work cutoff; thread counts exceed both row count and
        // hardware parallelism to exercise the clamps.
        for &(n, k, m) in &[
            (1, 1, 1),
            (5, 3, 2),
            (63, 64, 65),
            (70, 129, 33),
            (256, 96, 48),
        ] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            let serial = a.matmul(&b);
            for threads in [1, 2, 3, 7, 16] {
                let parallel = a.matmul_parallel(&b, threads);
                assert_eq!(
                    parallel.as_slice(),
                    serial.as_slice(),
                    "parallel matmul diverged at {n}x{k}x{m} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose_product() {
        let mut rng = Rng::new(23);
        for &(n, k, z) in &[(1, 1, 1), (4, 7, 3), (63, 65, 64), (70, 129, 33)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, z, k);
            let via_transpose = a.matmul(&b.transpose());
            let packed = a.matmul_bt(&b);
            assert!(
                packed.max_abs_diff(&via_transpose) < 1e-9,
                "matmul_bt diverged at {n}x{k} * ({z}x{k})ᵀ"
            );
            for threads in [1, 2, 5, 16] {
                let parallel = a.matmul_bt_parallel(&b, threads);
                assert_eq!(
                    parallel.as_slice(),
                    packed.as_slice(),
                    "parallel matmul_bt diverged at {n}x{k} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn add_transposed_product_over_row_slabs_is_bit_identical_to_one_shot() {
        let mut rng = Rng::new(61);
        for &(n, d, m) in &[(1usize, 1usize, 1usize), (9, 4, 3), (70, 65, 17)] {
            let a = random_matrix(&mut rng, n, d);
            let b = random_matrix(&mut rng, n, m);
            let one_shot = a.transpose().matmul(&b);
            for chunk in [1usize, 3, n, n + 5] {
                let mut acc = Matrix::zeros(d, m);
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    acc.add_transposed_product(&a.row_block(start..end), &b.row_block(start..end));
                    start = end;
                }
                assert_eq!(
                    acc.as_slice(),
                    one_shot.as_slice(),
                    "fold diverged at n={n} d={d} m={m} chunk={chunk}"
                );
            }
            // Folding an empty slab is a no-op.
            let mut acc = one_shot.clone();
            acc.add_transposed_product(&a.row_block(0..0), &b.row_block(0..0));
            assert_eq!(acc.as_slice(), one_shot.as_slice());
        }
    }

    #[test]
    fn row_block_copies_the_requested_slab() {
        let mut rng = Rng::new(31);
        let a = random_matrix(&mut rng, 9, 4);
        let block = a.row_block(2..6);
        assert_eq!((block.rows(), block.cols()), (4, 4));
        for r in 0..4 {
            assert_eq!(block.row(r), a.row(r + 2));
        }
        let empty = a.row_block(3..3);
        assert_eq!((empty.rows(), empty.cols()), (0, 4));
    }

    #[test]
    fn gather_rows_copies_in_index_order_with_repeats() {
        let mut rng = Rng::new(77);
        let a = random_matrix(&mut rng, 6, 3);
        let picked = a.gather_rows(&[4, 0, 4, 2]);
        assert_eq!((picked.rows(), picked.cols()), (4, 3));
        assert_eq!(picked.row(0), a.row(4));
        assert_eq!(picked.row(1), a.row(0));
        assert_eq!(picked.row(2), a.row(4));
        assert_eq!(picked.row(3), a.row(2));
        let empty = a.gather_rows(&[]);
        assert_eq!((empty.rows(), empty.cols()), (0, 3));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::new(7);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn transpose_is_involution_and_swaps_shape() {
        let mut rng = Rng::new(3);
        let a = random_matrix(&mut rng, 4, 9);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (9, 4));
        assert_eq!(t.get(2, 3), a.get(3, 2));
        assert!(t.transpose().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn normalize_rows_handles_1x1_single_row_and_zero_row() {
        // 1x1
        let mut m = Matrix::from_vec(1, 1, vec![-5.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) + 1.0).abs() < 1e-15);

        // single row
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-15);
        assert!((m.get(0, 1) - 0.8).abs() < 1e-15);

        // zero row stays zero (epsilon guard), nonzero row still normalized
        let mut m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        m.l2_normalize_rows();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        let norm: f64 = m.row(1).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_solve_round_trip() {
        let mut rng = Rng::new(99);
        let g = random_matrix(&mut rng, 12, 12);
        // G Gᵀ + I is SPD.
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(1.0);
        let b: Vec<f64> = (0..12).map(|_| rng.normal()).collect();
        let chol = a.cholesky().expect("SPD");
        let x = chol.solve_vec(&b);
        // A x ≈ b
        let ax = a.matmul(&Matrix::from_vec(12, 1, x));
        let b_mat = Matrix::from_vec(12, 1, b);
        assert!(ax.max_abs_diff(&b_mat) < 1e-8);
    }

    #[test]
    fn solve_spd_matrix_rhs_round_trip() {
        let mut rng = Rng::new(5);
        let g = random_matrix(&mut rng, 8, 8);
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(0.5);
        let b = random_matrix(&mut rng, 8, 3);
        let x = solve_spd(&a, &b).expect("SPD");
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn solve_matrix_matches_per_column_solve_vec() {
        let mut rng = Rng::new(71);
        let g = random_matrix(&mut rng, 10, 10);
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(0.3);
        let b = random_matrix(&mut rng, 10, 5);
        let chol = a.cholesky().expect("SPD");
        let x = chol.solve_matrix(&b).expect("shape");
        // The transposed row-wise path must agree bit-for-bit with solving
        // each column independently.
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b.get(i, j)).collect();
            let expected = chol.solve_vec(&col);
            for (i, &e) in expected.iter().enumerate() {
                assert_eq!(x.get(i, j), e, "solve_matrix diverged at ({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_and_nonsquare() {
        let indefinite = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            indefinite.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.cholesky(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn symmetric_eigen_reconstructs_and_is_orthogonal() {
        let mut rng = Rng::new(0xE16);
        for n in [1usize, 2, 5, 12, 23] {
            let g = random_matrix(&mut rng, n, n);
            // Symmetrize: A = (G + Gᵀ) / 2.
            let gt = g.transpose();
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, 0.5 * (g.get(r, c) + gt.get(r, c)));
                }
            }
            let eig = a.symmetric_eigen().expect("square");
            let v = eig.vectors();
            // Orthogonality: VᵀV ≈ I.
            let vtv = v.transpose().matmul(v);
            assert!(
                vtv.max_abs_diff(&Matrix::identity(n)) < 1e-10,
                "V not orthogonal at n={n}"
            );
            // Reconstruction: V diag(λ) Vᵀ ≈ A.
            let mut scaled = v.clone();
            for r in 0..n {
                for c in 0..n {
                    let x = scaled.get(r, c) * eig.values()[c];
                    scaled.set(r, c, x);
                }
            }
            let rebuilt = scaled.matmul(&v.transpose());
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-9,
                "reconstruction drifted at n={n}"
            );
        }
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.symmetric_eigen(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_sylvester_round_trip_and_error_paths() {
        let mut rng = Rng::new(0x5711);
        for &(p, q) in &[(1usize, 1usize), (3, 5), (8, 4), (12, 12)] {
            let ga = random_matrix(&mut rng, p, p);
            let mut a = ga.matmul(&ga.transpose());
            a.add_scaled_identity(0.5);
            let gb = random_matrix(&mut rng, q, q);
            let mut b = gb.matmul(&gb.transpose());
            b.add_scaled_identity(0.5);
            let c = random_matrix(&mut rng, p, q);
            let x = solve_sylvester(&a, &b, &c).expect("well-conditioned");
            let residual = a.matmul(&x);
            let xb = x.matmul(&b);
            let mut lhs = residual.clone();
            for (l, v) in lhs.data.iter_mut().zip(xb.as_slice()) {
                *l += v;
            }
            assert!(
                lhs.max_abs_diff(&c) < 1e-8,
                "Sylvester residual too large at {p}x{q}"
            );
        }
        // Shape mismatch: C must be p x q.
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        assert!(matches!(
            solve_sylvester(&a, &b, &Matrix::zeros(3, 2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // α + β = 0 is a typed singularity, not garbage.
        let neg = Matrix::from_vec(1, 1, vec![-1.0]);
        let pos = Matrix::from_vec(1, 1, vec![1.0]);
        assert!(matches!(
            solve_sylvester(&pos, &neg, &Matrix::from_vec(1, 1, vec![2.0])),
            Err(LinalgError::SingularSylvester { .. })
        ));
    }

    #[test]
    fn add_scaled_identity_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 1, 2.0);
        m.add_scaled_identity(0.25);
        assert_eq!(m.get(0, 0), 0.25);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 2), 0.25);
    }
}
