//! Dense, row-major linear algebra for the ZSL pipeline.
//!
//! Everything downstream (the closed-form trainer in [`crate::model`], the
//! batch scorer in [`crate::infer`]) is expressed over this one [`Matrix`]
//! type, so the hot paths that later PRs will optimize (blocked matmul,
//! Cholesky solves) live here and nowhere else.

use std::fmt;
use std::sync::{Condvar, Mutex, OnceLock};

/// Guard used when dividing by row norms: rows with an L2 norm at or below
/// this value are left untouched by [`Matrix::l2_normalize_rows`].
pub const NORM_EPSILON: f64 = 1e-12;

/// Cache-blocking tile edge for [`Matrix::matmul`]. 64 doubles = 512 bytes per
/// row segment, so an A-tile, B-tile, and C-tile together stay well inside L1/L2.
///
/// Exposed crate-wide because `gemm_bt_into`'s kernel cascade (8-wide, 4-wide,
/// scalar remainder) is phased on `BLOCK`-element column tiles: a signature
/// bank split at multiples of `BLOCK` rows scores each class through the
/// *same* kernel with the *same* accumulation order as the monolithic pass,
/// which is what makes [`crate::infer::BankShards`] bit-identical by
/// construction instead of by tolerance.
pub(crate) const BLOCK: usize = 64;

/// Below this many multiply-adds the parallel entry points run the serial
/// kernel instead: even with the persistent pool, waking workers and taking
/// the task lock only amortizes once there is real work to split.
const PARALLEL_WORK_CUTOFF: usize = 1 << 17;

/// Minimum sample rows before `gemm_bt_into` packs signature tiles into the
/// interleaved SIMD layout: packing re-reads each tile once, which only pays
/// off when several sample rows reuse the packed form.
const PACK_MIN_ROWS: usize = 4;

/// Number of worker threads the hardware supports, used as the default by the
/// parallel matmul paths and [`crate::infer::ScoringEngine`]. Falls back to 1
/// when the platform cannot report its parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Scalar element the shared microkernels are generic over: `f64` for
/// training and default scoring, `f32` for the opt-in reduced-precision
/// serving path. Every kernel in this module accumulates in strictly
/// sequential per-output order regardless of `T`, so each precision is
/// bit-identical across thread counts *within itself*.
pub(crate) trait Elem:
    Copy
    + Send
    + Sync
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::DivAssign
    + 'static
{
    const ZERO: Self;
    fn from_f64(v: f64) -> Self;
    fn sqrt(self) -> Self;
    fn exp(self) -> Self;
}

impl Elem for f64 {
    const ZERO: Self = 0.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
}

/// Blocked `i-k-j` kernel over raw row-major slabs: `out += a * b` where `a`
/// is `n x k_dim`, `b` is `k_dim x m`, and `out` is `n x m` (must be zeroed by
/// the caller). Shared by the serial and row-banded parallel matmul paths so
/// both produce bit-identical results.
fn gemm_into<T: Elem>(a: &[T], n: usize, k_dim: usize, b: &[T], m: usize, out: &mut [T]) {
    debug_assert_eq!(a.len(), n * k_dim);
    debug_assert_eq!(b.len(), k_dim * m);
    debug_assert_eq!(out.len(), n * m);
    for ii in (0..n).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(n);
        for kk in (0..k_dim).step_by(BLOCK) {
            let k_end = (kk + BLOCK).min(k_dim);
            for jj in (0..m).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(m);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let a_ik = a[i * k_dim + k];
                        let b_row = &b[k * m + jj..k * m + j_end];
                        let c_row = &mut out[i * m + jj..i * m + j_end];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += a_ik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `A · Bᵀ` kernel over raw slabs where `bt` is already the packed row-major
/// transpose (`z x k_dim`): every inner product streams two contiguous rows,
/// the access pattern the scoring path (`X·Sᵀ` against a signature bank)
/// needs. Blocked over `bt` rows so a tile of signatures stays cache-hot
/// across consecutive samples, and register-blocked eight signatures at a
/// time (a 4-wide then scalar cascade covers the remainder). When the batch
/// is large enough to amortize it, each eight-row group is repacked into an
/// interleaved tile so the 8-wide microkernel's inner loop is one contiguous
/// vector multiply-add; the packed and unpacked kernels accumulate in the
/// same sequential per-output order, so the choice never changes a bit.
fn gemm_bt_into<T: Elem>(a: &[T], n: usize, k_dim: usize, bt: &[T], z: usize, out: &mut [T]) {
    debug_assert_eq!(a.len(), n * k_dim);
    debug_assert_eq!(bt.len(), z * k_dim);
    debug_assert_eq!(out.len(), n * z);
    let pack = n >= PACK_MIN_ROWS;
    let mut tile: Vec<T> = Vec::new();
    for jj in (0..z).step_by(BLOCK) {
        let j_end = (jj + BLOCK).min(z);
        let groups = (j_end - jj) / 8;
        if pack && groups > 0 {
            pack_bt_tile(bt, k_dim, jj, groups, &mut tile);
        }
        for i in 0..n {
            let a_row = &a[i * k_dim..(i + 1) * k_dim];
            let out_row = &mut out[i * z + jj..i * z + j_end];
            let mut j = jj;
            for g in 0..groups {
                let eight = if pack {
                    dot8_packed(a_row, &tile[g * 8 * k_dim..(g + 1) * 8 * k_dim])
                } else {
                    dot8(a_row, &bt[j * k_dim..(j + 8) * k_dim])
                };
                out_row[j - jj..j - jj + 8].copy_from_slice(&eight);
                j += 8;
            }
            while j + 4 <= j_end {
                let quad = dot4(
                    a_row,
                    &bt[j * k_dim..(j + 1) * k_dim],
                    &bt[(j + 1) * k_dim..(j + 2) * k_dim],
                    &bt[(j + 2) * k_dim..(j + 3) * k_dim],
                    &bt[(j + 3) * k_dim..(j + 4) * k_dim],
                );
                out_row[j - jj..j - jj + 4].copy_from_slice(&quad);
                j += 4;
            }
            for (o, jr) in out_row[j - jj..].iter_mut().zip(j..j_end) {
                *o = dot(a_row, &bt[jr * k_dim..(jr + 1) * k_dim]);
            }
        }
    }
}

/// Interleave `groups` runs of eight consecutive `bt` rows starting at row
/// `first` into `tile`: element `i` of row `first + 8g + r` lands at
/// `tile[g * 8 * k_dim + i * 8 + r]`. The transposed layout turns the 8-wide
/// dot kernel's inner loop into contiguous vector loads.
fn pack_bt_tile<T: Elem>(bt: &[T], k_dim: usize, first: usize, groups: usize, tile: &mut Vec<T>) {
    tile.clear();
    tile.resize(groups * 8 * k_dim, T::ZERO);
    for g in 0..groups {
        let dst = &mut tile[g * 8 * k_dim..(g + 1) * 8 * k_dim];
        for r in 0..8 {
            let row = first + 8 * g + r;
            let src = &bt[row * k_dim..(row + 1) * k_dim];
            for (i, &v) in src.iter().enumerate() {
                dst[i * 8 + r] = v;
            }
        }
    }
}

/// Eight dot products of `a` against an interleaved packed tile
/// (`tile[i * 8 + r]` holds element `i` of output `r`). Each output keeps one
/// sequential accumulator — bit-identical to [`dot8`] and the naive order —
/// and the contiguous 8-lane layout lets the autovectorizer emit one vector
/// multiply-add per element of `a`.
#[inline]
fn dot8_packed<T: Elem>(a: &[T], tile: &[T]) -> [T; 8] {
    debug_assert_eq!(tile.len(), a.len() * 8);
    let mut s = [T::ZERO; 8];
    for (lane, &av) in tile.chunks_exact(8).zip(a) {
        for (acc, &tv) in s.iter_mut().zip(lane) {
            *acc += av * tv;
        }
    }
    s
}

/// Eight simultaneous dot products of `a` against the eight consecutive
/// packed rows of `bt8` (an `8 x k` row-major slab). One sequential
/// accumulator per output, eight independent chains for instruction-level
/// parallelism; every `a` element is loaded once per eight outputs.
#[inline]
fn dot8<T: Elem>(a: &[T], bt8: &[T]) -> [T; 8] {
    let k = a.len();
    debug_assert_eq!(bt8.len(), 8 * k);
    let rows: [&[T]; 8] = std::array::from_fn(|r| &bt8[r * k..(r + 1) * k]);
    let mut s = [T::ZERO; 8];
    for (i, &av) in a.iter().enumerate() {
        for (acc, row) in s.iter_mut().zip(&rows) {
            *acc += av * row[i];
        }
    }
    s
}

/// Four simultaneous dot products of `a` against `b0..b3`. Each output keeps
/// a single sequential accumulator (so per-output numerics match the naive
/// order), while the four independent chains give the CPU instruction-level
/// parallelism and reuse every `a` element four times per load.
fn dot4<T: Elem>(a: &[T], b0: &[T], b1: &[T], b2: &[T], b3: &[T]) -> [T; 4] {
    let mut s = [T::ZERO; 4];
    for ((((&av, &v0), &v1), &v2), &v3) in a.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s[0] += av * v0;
        s[1] += av * v1;
        s[2] += av * v2;
        s[3] += av * v3;
    }
    s
}

/// Four-accumulator unrolled dot product. The independent accumulators break
/// the serial FP dependency chain so the compiler can keep several FMAs in
/// flight; the remainder is summed separately and added once at the end.
fn dot<T: Elem>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let main_len = a.len() / 4 * 4;
    let (a_main, a_tail) = a.split_at(main_len);
    let (b_main, b_tail) = b.split_at(main_len);
    let mut acc = [T::ZERO; 4];
    for (av, bv) in a_main.chunks_exact(4).zip(b_main.chunks_exact(4)) {
        acc[0] += av[0] * bv[0];
        acc[1] += av[1] * bv[1];
        acc[2] += av[2] * bv[2];
        acc[3] += av[3] * bv[3];
    }
    let mut tail = T::ZERO;
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One in-flight band batch: a type-erased band executor plus claim and
/// completion counters. `func` is only dereferenced between a claim and the
/// matching completion increment, both of which happen strictly before
/// [`Pool::run`] returns — that ordering is what makes the lifetime erasure
/// in `run` sound.
struct PoolBatch {
    func: &'static (dyn Fn(usize) + Sync),
    next: usize,
    total: usize,
    completed: usize,
    panicked: bool,
}

/// The lazily-initialized process-wide worker pool behind every parallel
/// linalg entry point. Workers are spawned once and live for the process
/// lifetime, so serving-sized batches stop paying the tens of microseconds of
/// `std::thread::scope` spawn-and-join that the old per-call path cost.
struct Pool {
    state: Mutex<Option<PoolBatch>>,
    /// Wakes idle workers when a new batch lands.
    work_cv: Condvar,
    /// Wakes the submitting thread when the last band completes.
    done_cv: Condvar,
    /// Spawned worker threads; the submitting thread always participates, so
    /// the pool schedules across `workers + 1` threads.
    workers: usize,
}

impl Pool {
    /// Execute `f(0)..f(total - 1)` cooperatively across the pool workers and
    /// the calling thread, returning once every index has completed. A caller
    /// that arrives while another batch is in flight runs its own indices
    /// serially on its own thread — same band set, same kernels, so results
    /// are bit-identical — which keeps concurrent submitters (e.g. serve
    /// connection threads) from oversubscribing the machine.
    fn run(&self, total: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.workers == 0 || total <= 1 {
            for idx in 0..total {
                f(idx);
            }
            return;
        }
        // Erase the borrow's lifetime so workers can hold it across the lock;
        // `run` does not return until `completed == total`, so the erased
        // reference never outlives the frame that owns the closure.
        let func: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        {
            let mut state = self.state.lock().unwrap();
            if state.is_some() {
                drop(state);
                for idx in 0..total {
                    f(idx);
                }
                return;
            }
            *state = Some(PoolBatch {
                func,
                next: 0,
                total,
                completed: 0,
                panicked: false,
            });
        }
        self.work_cv.notify_all();
        loop {
            let mut state = self.state.lock().unwrap();
            let batch = state.as_mut().expect("pool batch vanished mid-run");
            if batch.next < batch.total {
                let idx = batch.next;
                batch.next += 1;
                drop(state);
                f(idx);
                let mut state = self.state.lock().unwrap();
                let batch = state.as_mut().expect("pool batch vanished mid-run");
                batch.completed += 1;
            } else {
                while state.as_ref().is_some_and(|b| b.completed < b.total) {
                    state = self.done_cv.wait(state).unwrap();
                }
                let panicked = state.as_ref().is_some_and(|b| b.panicked);
                *state = None;
                drop(state);
                assert!(
                    !panicked,
                    "a linalg pool worker panicked while executing a band"
                );
                return;
            }
        }
    }

    /// Body of each persistent worker thread: claim the next unclaimed band
    /// of the current batch, execute it outside the lock, record completion.
    /// A panicking band is caught so the submitter is released (and re-raises)
    /// instead of waiting forever on a completion that will never come.
    fn worker_loop(&self) {
        loop {
            let (func, idx) = {
                let mut state = self.state.lock().unwrap();
                loop {
                    if let Some(batch) = state.as_mut() {
                        if batch.next < batch.total {
                            let idx = batch.next;
                            batch.next += 1;
                            break (batch.func, idx);
                        }
                    }
                    state = self.work_cv.wait(state).unwrap();
                }
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(idx)));
            let mut state = self.state.lock().unwrap();
            if let Some(batch) = state.as_mut() {
                if outcome.is_err() {
                    batch.panicked = true;
                }
                batch.completed += 1;
                if batch.completed == batch.total {
                    self.done_cv.notify_all();
                }
            }
        }
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, spawning `default_threads() - 1` workers on first
/// use (the submitting thread is always the extra participant). Worker
/// threads block on the same `OnceLock` until initialization finishes, so the
/// self-referential spawn is safe; a failed spawn just leaves the pool with
/// fewer workers.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let target = default_threads().saturating_sub(1);
        let mut spawned = 0;
        for _ in 0..target {
            let ok = std::thread::Builder::new()
                .name("zsl-linalg".into())
                .spawn(|| pool().worker_loop())
                .is_ok();
            spawned += usize::from(ok);
        }
        Pool {
            state: Mutex::new(None),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers: spawned,
        }
    })
}

/// Number of threads the shared linalg worker pool schedules work across —
/// the persistent workers plus the submitting thread. Forces pool
/// initialization on first call; serving stacks surface this in diagnostics
/// so operators can see the actual parallelism budget.
pub fn pool_threads() -> usize {
    pool().workers + 1
}

/// Pointer wrapper that lets disjoint output bands cross the pool boundary.
/// Soundness: [`par_row_bands`] hands each band index a non-overlapping
/// half-open row range, so the reconstructed `&mut` slices never alias.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Sync> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor instead of field syntax so closures capture the whole
    /// `Sync` wrapper rather than the bare (non-`Sync`) raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Split `a` (`rows x a_cols`) and `out` (`rows x out_cols`) into matching
/// contiguous row bands — one per thread, sized within one row of each other —
/// and run `kernel` on each band via the persistent pool. Band boundaries
/// depend only on `rows` and `threads` (never on which thread executes what),
/// and each row's accumulation order is internal to `kernel`, so results are
/// bit-identical for every thread count.
pub(crate) fn par_row_bands<T, F>(
    rows: usize,
    threads: usize,
    a: &[T],
    a_cols: usize,
    out: &mut [T],
    out_cols: usize,
    kernel: F,
) where
    T: Elem,
    F: Fn(&[T], usize, &mut [T]) + Sync,
{
    debug_assert_eq!(a.len(), rows * a_cols);
    debug_assert_eq!(out.len(), rows * out_cols);
    let threads = threads.clamp(1, rows.max(1));
    let base = rows / threads;
    let extra = rows % threads;
    let mut bands = Vec::with_capacity(threads);
    let mut start = 0usize;
    for t in 0..threads {
        let band = base + usize::from(t < extra);
        if band == 0 {
            continue;
        }
        bands.push((start, band));
        start += band;
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    let run_band = |b: usize| {
        let (first, band) = bands[b];
        let a_band = &a[first * a_cols..(first + band) * a_cols];
        // Disjoint by construction: band `b` exclusively owns output rows
        // `first..first + band`.
        let out_band = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.get().add(first * out_cols), band * out_cols)
        };
        kernel(a_band, band, out_band);
    };
    pool().run(bands.len(), &run_band);
}

/// Serial-or-banded `a (n x k_dim) · b (k_dim x m)` over raw slabs, generic
/// over the element type — the one parallel entry point shared by
/// [`Matrix::matmul_parallel`] and the reduced-precision scoring mirror in
/// [`crate::infer`]. Small products run the serial kernel unconditionally.
pub(crate) fn gemm_parallel<T: Elem>(
    a: &[T],
    n: usize,
    k_dim: usize,
    b: &[T],
    m: usize,
    threads: usize,
) -> Vec<T> {
    let mut out = vec![T::ZERO; n * m];
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n * k_dim * m < PARALLEL_WORK_CUTOFF {
        gemm_into(a, n, k_dim, b, m, &mut out);
    } else {
        par_row_bands(
            n,
            threads,
            a,
            k_dim,
            &mut out,
            m,
            |a_band, rows, out_band| gemm_into(a_band, rows, k_dim, b, m, out_band),
        );
    }
    out
}

/// Serial-or-banded `a (n x k_dim) · btᵀ` where `bt` is the packed `z x k_dim`
/// transpose — the generic twin of [`Matrix::matmul_bt_parallel`], also used
/// directly by the f32 scoring mirror.
pub(crate) fn gemm_bt_parallel<T: Elem>(
    a: &[T],
    n: usize,
    k_dim: usize,
    bt: &[T],
    z: usize,
    threads: usize,
) -> Vec<T> {
    let mut out = vec![T::ZERO; n * z];
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n * k_dim * z < PARALLEL_WORK_CUTOFF {
        gemm_bt_into(a, n, k_dim, bt, z, &mut out);
    } else {
        par_row_bands(
            n,
            threads,
            a,
            k_dim,
            &mut out,
            z,
            |a_band, rows, out_band| gemm_bt_into(a_band, rows, k_dim, bt, z, out_band),
        );
    }
    out
}

/// RBF Gram `exp(-width · ‖x_i − a_j‖²) : n x m`, row-banded over the pool.
/// Each output row is computed with a fixed summation order (ascending anchor
/// index, then ascending feature index) that banding never touches, so
/// parallel results are bit-identical to serial for every thread count — the
/// guarantee `kernel_map` documents.
pub(crate) fn rbf_gram_parallel<T: Elem>(
    x: &[T],
    n: usize,
    d: usize,
    anchors: &[T],
    m: usize,
    width: T,
    threads: usize,
) -> Vec<T> {
    debug_assert_eq!(x.len(), n * d);
    debug_assert_eq!(anchors.len(), m * d);
    let mut out = vec![T::ZERO; n * m];
    let threads = threads.clamp(1, n.max(1));
    let rbf_rows = |x_band: &[T], rows: usize, out_band: &mut [T]| {
        for i in 0..rows {
            let xi = &x_band[i * d..(i + 1) * d];
            let out_row = &mut out_band[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate() {
                let aj = &anchors[j * d..(j + 1) * d];
                let mut s = T::ZERO;
                for (&xv, &av) in xi.iter().zip(aj) {
                    let diff = xv - av;
                    s += diff * diff;
                }
                *o = (-(width * s)).exp();
            }
        }
    };
    if threads == 1 || n * d.max(1) * m < PARALLEL_WORK_CUTOFF {
        rbf_rows(x, n, &mut out);
    } else {
        par_row_bands(n, threads, x, d, &mut out, m, rbf_rows);
    }
    out
}

/// Scale every `cols`-wide row of `data` to unit L2 norm in place, skipping
/// rows whose norm is at or below [`NORM_EPSILON`] (in `T`'s precision) —
/// the generic slab form behind [`Matrix::l2_normalize_rows`] and the f32
/// cosine scoring path. The sum-then-sqrt-then-divide sequence matches the
/// `Matrix` method exactly, so delegation changes no bits.
pub(crate) fn l2_normalize_rows_slab<T: Elem>(data: &mut [T], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_mut(cols) {
        let mut sq = T::ZERO;
        for &v in row.iter() {
            sq += v * v;
        }
        let norm = sq.sqrt();
        if norm > T::from_f64(NORM_EPSILON) {
            for v in row {
                *v /= norm;
            }
        }
    }
}

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix handed to [`Matrix::cholesky`] was not symmetric
    /// positive-definite (a non-positive pivot was encountered).
    NotPositiveDefinite { pivot_index: usize },
    /// Operand shapes do not line up for the requested operation.
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// The spectral Sylvester solve hit an eigenvalue pair whose sum is
    /// numerically zero, so `AX + XB = C` has no unique solution.
    SingularSylvester { detail: String },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot_index } => write!(
                f,
                "matrix is not symmetric positive-definite (pivot {pivot_index} <= 0)"
            ),
            LinalgError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::SingularSylvester { detail } => {
                write!(f, "singular Sylvester system: {detail}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// Row-major layout matches the "one row per sample / per class signature"
/// convention used throughout the crate: `X` is `n_samples x feature_dim`,
/// signatures `S` are `n_classes x attr_dim`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// An all-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`. Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Blocked (cache-tiled) matrix product `self * other`.
    ///
    /// Uses an `i-k-j` inner ordering over `BLOCK`-sized tiles so that the
    /// innermost loop streams contiguously over a row of `other` and a row of
    /// the output — the access pattern that keeps this kernel bandwidth-bound
    /// instead of latency-bound. Verified against [`Matrix::matmul_naive`] in
    /// the test suite.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k_dim, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        gemm_into(&self.data, n, k_dim, &other.data, m, &mut out.data);
        out
    }

    /// Multi-threaded [`Matrix::matmul`]: rows of `self` are split into
    /// contiguous bands executed cooperatively by the persistent worker pool
    /// and the calling thread, each running the same blocked kernel into its
    /// disjoint slice of the output.
    ///
    /// Because banding never changes the per-row accumulation order, the
    /// result is **bit-identical** to the serial product for every thread
    /// count. Small products (or `threads <= 1`) fall back to the serial
    /// kernel, so this is safe to call unconditionally.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        Matrix {
            rows: self.rows,
            cols: other.cols,
            data: gemm_parallel(
                &self.data,
                self.rows,
                self.cols,
                &other.data,
                other.cols,
                threads,
            ),
        }
    }

    /// `self · otherᵀ` without materializing the transpose: `other` is read
    /// as a packed `z x k` row-major bank, so every inner product streams two
    /// contiguous rows. This is the natural layout for the scoring shape
    /// `X · Sᵀ`, where `other` holds one class signature per row.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm_bt_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
        out
    }

    /// Multi-threaded [`Matrix::matmul_bt`], row-banded like
    /// [`Matrix::matmul_parallel`] and likewise bit-identical to the serial
    /// path for every thread count.
    pub fn matmul_bt_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        Matrix {
            rows: self.rows,
            cols: other.rows,
            data: gemm_bt_parallel(
                &self.data,
                self.rows,
                self.cols,
                &other.data,
                other.rows,
                threads,
            ),
        }
    }

    /// Accumulate `self += aᵀ · b` where `a` is `n x rows(self)` and `b` is
    /// `n x cols(self)` — the Gram-fold primitive behind out-of-core
    /// training.
    ///
    /// Runs the same blocked kernel as [`Matrix::matmul`], which adds into
    /// each output element in strictly ascending order over `a`'s rows.
    /// Folding a tall matrix as consecutive row slabs therefore performs the
    /// *identical* floating-point addition sequence as
    /// `a.transpose().matmul(&b)` in one shot: streamed Gram matrices are
    /// bit-identical to the in-memory product for every chunk size (the
    /// differential suite in `tests/streaming_equiv.rs` pins this).
    pub fn add_transposed_product(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.rows, b.rows,
            "add_transposed_product shape mismatch: ({}x{})ᵀ * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        assert_eq!(
            (self.rows, self.cols),
            (a.cols, b.cols),
            "add_transposed_product output must be {}x{}, got {}x{}",
            a.cols,
            b.cols,
            self.rows,
            self.cols
        );
        if a.rows == 0 {
            return;
        }
        let at = a.transpose();
        gemm_into(&at.data, a.cols, a.rows, &b.data, b.cols, &mut self.data);
    }

    /// Copy of the contiguous row slab `range.start..range.end` — the
    /// building block for chunked streaming over huge sample matrices.
    pub fn row_block(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {}..{} out of bounds for {} rows",
            range.start,
            range.end,
            self.rows
        );
        Matrix {
            rows: range.end - range.start,
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Copy of arbitrary (possibly repeated, unordered) rows into a new
    /// matrix — the gather primitive behind split materialization and k-fold
    /// subset extraction. Panics on an out-of-range index; callers validate
    /// indices against their own error types first.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "row index {src} out of bounds for {} rows",
                self.rows
            );
            out.data[dst * self.cols..(dst + 1) * self.cols]
                .copy_from_slice(&self.data[src * self.cols..(src + 1) * self.cols]);
        }
        out
    }

    /// Textbook triple-loop product. Kept as the oracle the blocked kernel is
    /// tested against; do not use on hot paths.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scale every row to unit L2 norm, in place.
    ///
    /// Rows whose norm is at or below [`NORM_EPSILON`] are left unchanged so
    /// that zero rows (e.g. an absent attribute signature) never produce NaNs.
    pub fn l2_normalize_rows(&mut self) {
        l2_normalize_rows_slab(&mut self.data, self.cols);
    }

    /// Add `gamma` to every diagonal element, in place (ridge regularization).
    /// Panics if the matrix is not square.
    pub fn add_scaled_identity(&mut self, gamma: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_scaled_identity needs a square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += gamma;
        }
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    /// Panics if shapes differ. Handy for approximate test assertions.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix. Only the lower triangle of `self` is read.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.rows),
                got: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                for k in 0..j {
                    sum -= l.data[i * n + k] * l.data[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot_index: i });
                    }
                    l.data[i * n + j] = sum.sqrt();
                } else {
                    l.data[i * n + j] = sum / l.data[j * n + j];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`, reusable across
/// many right-hand sides (the ESZSL trainer solves against whole matrices).
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` for a single right-hand side via forward then backward
    /// substitution.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        let mut x = vec![0.0; n];
        self.solve_into(b, &mut y, &mut x);
        x
    }

    /// Forward (`L y = b`) then backward (`Lᵀ x = y`) substitution into
    /// caller-provided buffers, so batched solves reuse scratch instead of
    /// allocating per right-hand side.
    fn solve_into(&self, b: &[f64], y: &mut [f64], x: &mut [f64]) {
        let n = self.l.rows;
        for i in 0..n {
            let mut sum = b[i];
            let l_row = &self.l.data[i * n..i * n + i];
            for (l, yk) in l_row.iter().zip(y.iter()) {
                sum -= l * yk;
            }
            y[i] = sum / self.l.data[i * n + i];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.data[k * n + i] * xk;
            }
            x[i] = sum / self.l.data[i * n + i];
        }
    }

    /// Solve `A X = B` for all right-hand sides, returning `X` with `B`'s
    /// shape.
    ///
    /// `B` is transposed once up front so every right-hand side is a
    /// contiguous row (the old path gathered each column with stride
    /// `b.cols`, a cache miss per element), solved row-wise with shared
    /// scratch, and the result transposed back. The per-column arithmetic is
    /// unchanged, so results are bit-identical to the strided path.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.l.rows;
        if b.rows != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols),
                got: (b.rows, b.cols),
            });
        }
        let bt = b.transpose();
        let mut xt = Matrix::zeros(b.cols, n);
        let mut y = vec![0.0; n];
        for j in 0..b.cols {
            self.solve_into(bt.row(j), &mut y, xt.row_mut(j));
        }
        Ok(xt.transpose())
    }
}

/// Solve the SPD system `A X = B` (factor once, solve all columns).
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    a.cholesky()?.solve_matrix(b)
}

/// Upper bound on cyclic Jacobi sweeps. Jacobi converges quadratically, so
/// well-conditioned symmetric matrices reach machine precision in well under
/// ten sweeps; the cap only guards pathological inputs.
const MAX_JACOBI_SWEEPS: usize = 64;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, from
/// [`Matrix::symmetric_eigen`].
///
/// Column `j` of [`SymmetricEigen::vectors`] is the (unit-norm) eigenvector
/// for `values[j]`. Eigenvalues are reported in the order the Jacobi sweep
/// leaves them — callers that need sorting sort themselves. The computation
/// is fully deterministic: identical input bits give identical output bits,
/// which is what lets the SAE trainer inherit the streamed-equals-in-memory
/// bit-identity guarantee from its (chunk-order-invariant) accumulated
/// inputs.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: Matrix,
}

impl SymmetricEigen {
    /// The eigenvalues, in sweep order (unsorted).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The orthogonal eigenvector matrix `V` (one eigenvector per column).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }
}

impl Matrix {
    /// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
    ///
    /// Only symmetry is assumed (the input is read as-is; strictly the
    /// average of both triangles is what the rotations see). Returns a
    /// [`LinalgError::ShapeMismatch`] for non-square input. Sweeps stop once
    /// the off-diagonal Frobenius norm falls below `1e-15 · ‖A‖_F`.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.rows),
                got: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        if n <= 1 {
            return Ok(SymmetricEigen {
                values: a.data.clone(),
                vectors: v,
            });
        }
        let tol = (self.frobenius_norm() * 1e-15).max(f64::MIN_POSITIVE);
        for _ in 0..MAX_JACOBI_SWEEPS {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += a.data[p * n + q] * a.data[p * n + q];
                }
            }
            if off.sqrt() <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = a.data[p * n + q];
                    if apq == 0.0 {
                        continue;
                    }
                    let theta = (a.data[q * n + q] - a.data[p * n + p]) / (2.0 * apq);
                    let t = if theta == 0.0 {
                        1.0
                    } else {
                        theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt())
                    };
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // A ← Jᵀ A J with the rotation in the (p, q) plane.
                    for k in 0..n {
                        let akp = a.data[k * n + p];
                        let akq = a.data[k * n + q];
                        a.data[k * n + p] = c * akp - s * akq;
                        a.data[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a.data[p * n + k];
                        let aqk = a.data[q * n + k];
                        a.data[p * n + k] = c * apk - s * aqk;
                        a.data[q * n + k] = s * apk + c * aqk;
                    }
                    // The rotation zeroes this pair analytically; pin it so
                    // round-off never leaks back into later sweeps.
                    a.data[p * n + q] = 0.0;
                    a.data[q * n + p] = 0.0;
                    for k in 0..n {
                        let vkp = v.data[k * n + p];
                        let vkq = v.data[k * n + q];
                        v.data[k * n + p] = c * vkp - s * vkq;
                        v.data[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let values = (0..n).map(|i| a.data[i * n + i]).collect();
        Ok(SymmetricEigen { values, vectors: v })
    }
}

/// Solve the Sylvester equation `A X + X B = C` for symmetric `A` (`p x p`)
/// and `B` (`q x q`) with `C` of shape `p x q` — the closed form behind the
/// SAE trainer (Bartels–Stewart specialized to the symmetric case via two
/// eigendecompositions).
///
/// With `A = U diag(α) Uᵀ` and `B = V diag(β) Vᵀ`, the transformed system is
/// diagonal: `X̃ij = C̃ij / (αi + βj)` where `C̃ = Uᵀ C V`, and
/// `X = U X̃ Vᵀ`. An eigenvalue pair with `αi + βj` numerically zero (below
/// `1e-12` relative to the spectrum) is a [`LinalgError::SingularSylvester`]
/// — for the SAE system both operands are positive semi-definite with at
/// least one positive definite, so this never fires on valid training input.
pub fn solve_sylvester(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, LinalgError> {
    if c.rows() != a.rows() || c.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), b.rows()),
            got: (c.rows(), c.cols()),
        });
    }
    let ea = a.symmetric_eigen()?;
    let eb = b.symmetric_eigen()?;
    let ct = ea.vectors().transpose().matmul(c).matmul(eb.vectors());
    let scale = ea
        .values()
        .iter()
        .chain(eb.values())
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1.0);
    let (p, q) = (c.rows(), c.cols());
    let mut xt = Matrix::zeros(p, q);
    for i in 0..p {
        for j in 0..q {
            let denom = ea.values()[i] + eb.values()[j];
            if denom.abs() <= scale * 1e-12 {
                return Err(LinalgError::SingularSylvester {
                    detail: format!(
                        "eigenvalue pair ({}, {}) sums to {denom:e}, below the conditioning floor",
                        ea.values()[i],
                        eb.values()[j]
                    ),
                });
            }
            xt.data[i * q + j] = ct.data[i * q + j] / denom;
        }
    }
    Ok(ea.vectors().matmul(&xt).matmul(&eb.vectors().transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.normal()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_boundaries() {
        let mut rng = Rng::new(42);
        // Sizes straddle the 64-wide tile on every axis.
        for &(n, k, m) in &[(1, 1, 1), (3, 5, 2), (63, 64, 65), (70, 129, 33)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "blocked vs naive diverged at {n}x{k}x{m}"
            );
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_across_thread_counts() {
        let mut rng = Rng::new(17);
        // Shapes straddle the 64-wide tile and include sizes above and below
        // the parallel work cutoff; thread counts exceed both row count and
        // hardware parallelism to exercise the clamps.
        for &(n, k, m) in &[
            (1, 1, 1),
            (5, 3, 2),
            (63, 64, 65),
            (70, 129, 33),
            (256, 96, 48),
        ] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            let serial = a.matmul(&b);
            for threads in [1, 2, 3, 7, 16] {
                let parallel = a.matmul_parallel(&b, threads);
                assert_eq!(
                    parallel.as_slice(),
                    serial.as_slice(),
                    "parallel matmul diverged at {n}x{k}x{m} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose_product() {
        let mut rng = Rng::new(23);
        for &(n, k, z) in &[(1, 1, 1), (4, 7, 3), (63, 65, 64), (70, 129, 33)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, z, k);
            let via_transpose = a.matmul(&b.transpose());
            let packed = a.matmul_bt(&b);
            assert!(
                packed.max_abs_diff(&via_transpose) < 1e-9,
                "matmul_bt diverged at {n}x{k} * ({z}x{k})ᵀ"
            );
            for threads in [1, 2, 5, 16] {
                let parallel = a.matmul_bt_parallel(&b, threads);
                assert_eq!(
                    parallel.as_slice(),
                    packed.as_slice(),
                    "parallel matmul_bt diverged at {n}x{k} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn add_transposed_product_over_row_slabs_is_bit_identical_to_one_shot() {
        let mut rng = Rng::new(61);
        for &(n, d, m) in &[(1usize, 1usize, 1usize), (9, 4, 3), (70, 65, 17)] {
            let a = random_matrix(&mut rng, n, d);
            let b = random_matrix(&mut rng, n, m);
            let one_shot = a.transpose().matmul(&b);
            for chunk in [1usize, 3, n, n + 5] {
                let mut acc = Matrix::zeros(d, m);
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    acc.add_transposed_product(&a.row_block(start..end), &b.row_block(start..end));
                    start = end;
                }
                assert_eq!(
                    acc.as_slice(),
                    one_shot.as_slice(),
                    "fold diverged at n={n} d={d} m={m} chunk={chunk}"
                );
            }
            // Folding an empty slab is a no-op.
            let mut acc = one_shot.clone();
            acc.add_transposed_product(&a.row_block(0..0), &b.row_block(0..0));
            assert_eq!(acc.as_slice(), one_shot.as_slice());
        }
    }

    #[test]
    fn row_block_copies_the_requested_slab() {
        let mut rng = Rng::new(31);
        let a = random_matrix(&mut rng, 9, 4);
        let block = a.row_block(2..6);
        assert_eq!((block.rows(), block.cols()), (4, 4));
        for r in 0..4 {
            assert_eq!(block.row(r), a.row(r + 2));
        }
        let empty = a.row_block(3..3);
        assert_eq!((empty.rows(), empty.cols()), (0, 4));
    }

    #[test]
    fn gather_rows_copies_in_index_order_with_repeats() {
        let mut rng = Rng::new(77);
        let a = random_matrix(&mut rng, 6, 3);
        let picked = a.gather_rows(&[4, 0, 4, 2]);
        assert_eq!((picked.rows(), picked.cols()), (4, 3));
        assert_eq!(picked.row(0), a.row(4));
        assert_eq!(picked.row(1), a.row(0));
        assert_eq!(picked.row(2), a.row(4));
        assert_eq!(picked.row(3), a.row(2));
        let empty = a.gather_rows(&[]);
        assert_eq!((empty.rows(), empty.cols()), (0, 3));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_schedules_at_least_the_submitting_thread() {
        assert!(pool_threads() >= 1);
        assert!(pool_threads() <= default_threads());
    }

    #[test]
    fn packed_and_unpacked_bt_kernels_are_bit_identical() {
        // `gemm_bt_into` chooses packed tiles for n >= PACK_MIN_ROWS and the
        // unpacked 8-wide kernel below it. Both must produce the same bits:
        // score row 0 of a large batch (packed) against the same single row
        // scored alone (unpacked).
        let mut rng = Rng::new(41);
        for &(k, z) in &[(5usize, 9usize), (64, 64), (129, 37), (7, 8)] {
            let bank = random_matrix(&mut rng, z, k);
            let row = random_matrix(&mut rng, 1, k);
            let mut batch = Matrix::zeros(PACK_MIN_ROWS + 3, k);
            batch.row_mut(0).copy_from_slice(row.row(0));
            for r in 1..batch.rows() {
                for c in 0..k {
                    batch.set(r, c, rng.normal());
                }
            }
            let packed = batch.matmul_bt(&bank);
            let unpacked = row.matmul_bt(&bank);
            assert_eq!(
                packed.row(0),
                unpacked.row(0),
                "packed vs unpacked diverged at k={k} z={z}"
            );
        }
    }

    #[test]
    fn concurrent_submitters_fall_back_serially_and_stay_bit_identical() {
        // Several threads driving the shared pool at once must each get the
        // serial answer bit-for-bit: whoever loses the race for the pool runs
        // its own bands inline, which is the same computation.
        let mut rng = Rng::new(53);
        let a = random_matrix(&mut rng, 256, 96);
        let b = random_matrix(&mut rng, 96, 48);
        let serial = a.matmul(&b);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let got = a.matmul_parallel(&b, 4);
                        assert_eq!(got.as_slice(), serial.as_slice());
                    }
                });
            }
        });
    }

    #[test]
    fn f32_kernels_mirror_f64_shapes_and_normalization() {
        // The generic slab entry points drive the f32 serving mirror; sanity
        // check them against a straightforward reference in f32.
        let a: Vec<f32> = (0..6).map(|v| v as f32 * 0.5 - 1.0).collect(); // 2x3
        let b: Vec<f32> = (0..12).map(|v| 0.25 * v as f32).collect(); // 3x4
        let out = gemm_parallel(&a, 2, 3, &b, 4, 1);
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..3 {
                    acc += a[i * 3 + k] * b[k * 4 + j];
                }
                assert_eq!(out[i * 4 + j], acc);
            }
        }
        let bt: Vec<f32> = (0..6).map(|v| 1.0 - v as f32 * 0.125).collect(); // 2x3
        let bt_out = gemm_bt_parallel(&a, 2, 3, &bt, 2, 1);
        assert_eq!(bt_out.len(), 4);
        let gram = rbf_gram_parallel(&a, 2, 3, &bt, 2, 0.5f32, 1);
        for &g in &gram {
            assert!(g > 0.0 && g <= 1.0);
        }
        let mut rows: Vec<f32> = vec![3.0, 4.0, 0.0, 0.0];
        l2_normalize_rows_slab(&mut rows, 2);
        assert_eq!(&rows, &[0.6, 0.8, 0.0, 0.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::new(7);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn transpose_is_involution_and_swaps_shape() {
        let mut rng = Rng::new(3);
        let a = random_matrix(&mut rng, 4, 9);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (9, 4));
        assert_eq!(t.get(2, 3), a.get(3, 2));
        assert!(t.transpose().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn normalize_rows_handles_1x1_single_row_and_zero_row() {
        // 1x1
        let mut m = Matrix::from_vec(1, 1, vec![-5.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) + 1.0).abs() < 1e-15);

        // single row
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-15);
        assert!((m.get(0, 1) - 0.8).abs() < 1e-15);

        // zero row stays zero (epsilon guard), nonzero row still normalized
        let mut m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        m.l2_normalize_rows();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        let norm: f64 = m.row(1).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_solve_round_trip() {
        let mut rng = Rng::new(99);
        let g = random_matrix(&mut rng, 12, 12);
        // G Gᵀ + I is SPD.
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(1.0);
        let b: Vec<f64> = (0..12).map(|_| rng.normal()).collect();
        let chol = a.cholesky().expect("SPD");
        let x = chol.solve_vec(&b);
        // A x ≈ b
        let ax = a.matmul(&Matrix::from_vec(12, 1, x));
        let b_mat = Matrix::from_vec(12, 1, b);
        assert!(ax.max_abs_diff(&b_mat) < 1e-8);
    }

    #[test]
    fn solve_spd_matrix_rhs_round_trip() {
        let mut rng = Rng::new(5);
        let g = random_matrix(&mut rng, 8, 8);
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(0.5);
        let b = random_matrix(&mut rng, 8, 3);
        let x = solve_spd(&a, &b).expect("SPD");
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn solve_matrix_matches_per_column_solve_vec() {
        let mut rng = Rng::new(71);
        let g = random_matrix(&mut rng, 10, 10);
        let mut a = g.matmul(&g.transpose());
        a.add_scaled_identity(0.3);
        let b = random_matrix(&mut rng, 10, 5);
        let chol = a.cholesky().expect("SPD");
        let x = chol.solve_matrix(&b).expect("shape");
        // The transposed row-wise path must agree bit-for-bit with solving
        // each column independently.
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b.get(i, j)).collect();
            let expected = chol.solve_vec(&col);
            for (i, &e) in expected.iter().enumerate() {
                assert_eq!(x.get(i, j), e, "solve_matrix diverged at ({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_and_nonsquare() {
        let indefinite = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            indefinite.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.cholesky(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn symmetric_eigen_reconstructs_and_is_orthogonal() {
        let mut rng = Rng::new(0xE16);
        for n in [1usize, 2, 5, 12, 23] {
            let g = random_matrix(&mut rng, n, n);
            // Symmetrize: A = (G + Gᵀ) / 2.
            let gt = g.transpose();
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, 0.5 * (g.get(r, c) + gt.get(r, c)));
                }
            }
            let eig = a.symmetric_eigen().expect("square");
            let v = eig.vectors();
            // Orthogonality: VᵀV ≈ I.
            let vtv = v.transpose().matmul(v);
            assert!(
                vtv.max_abs_diff(&Matrix::identity(n)) < 1e-10,
                "V not orthogonal at n={n}"
            );
            // Reconstruction: V diag(λ) Vᵀ ≈ A.
            let mut scaled = v.clone();
            for r in 0..n {
                for c in 0..n {
                    let x = scaled.get(r, c) * eig.values()[c];
                    scaled.set(r, c, x);
                }
            }
            let rebuilt = scaled.matmul(&v.transpose());
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-9,
                "reconstruction drifted at n={n}"
            );
        }
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.symmetric_eigen(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_sylvester_round_trip_and_error_paths() {
        let mut rng = Rng::new(0x5711);
        for &(p, q) in &[(1usize, 1usize), (3, 5), (8, 4), (12, 12)] {
            let ga = random_matrix(&mut rng, p, p);
            let mut a = ga.matmul(&ga.transpose());
            a.add_scaled_identity(0.5);
            let gb = random_matrix(&mut rng, q, q);
            let mut b = gb.matmul(&gb.transpose());
            b.add_scaled_identity(0.5);
            let c = random_matrix(&mut rng, p, q);
            let x = solve_sylvester(&a, &b, &c).expect("well-conditioned");
            let residual = a.matmul(&x);
            let xb = x.matmul(&b);
            let mut lhs = residual.clone();
            for (l, v) in lhs.data.iter_mut().zip(xb.as_slice()) {
                *l += v;
            }
            assert!(
                lhs.max_abs_diff(&c) < 1e-8,
                "Sylvester residual too large at {p}x{q}"
            );
        }
        // Shape mismatch: C must be p x q.
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        assert!(matches!(
            solve_sylvester(&a, &b, &Matrix::zeros(3, 2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // α + β = 0 is a typed singularity, not garbage.
        let neg = Matrix::from_vec(1, 1, vec![-1.0]);
        let pos = Matrix::from_vec(1, 1, vec![1.0]);
        assert!(matches!(
            solve_sylvester(&pos, &neg, &Matrix::from_vec(1, 1, vec![2.0])),
            Err(LinalgError::SingularSylvester { .. })
        ));
    }

    #[test]
    fn add_scaled_identity_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 1, 2.0);
        m.add_scaled_identity(0.25);
        assert_eq!(m.get(0, 0), 0.25);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 2), 0.25);
    }
}
