//! Read-only memory mapping for zero-copy `.zsm` boot, std-only.
//!
//! The serving motivation (ZSpeedL, PAPERS.md) is booting a large-class-count
//! engine with minimal resident memory: the signature bank dominates a `.zsm`
//! artifact, and copying it to the heap doubles boot memory exactly when the
//! class axis is largest. [`MappedFile`] maps the artifact read-only via raw
//! `mmap(2)` FFI (no external crates — the workspace is dependency-free), and
//! the loader in [`crate::artifact`] lets a [`crate::infer::ScoringEngine`]
//! borrow its bank rows straight out of the page cache.
//!
//! On non-Unix targets [`MappedFile::map`] simply returns `None`, and every
//! caller falls back to the heap loader — mapping is an opt-in optimization,
//! never a portability requirement. Byte order is the *caller's* problem: the
//! `.zsm` payload is little-endian `f64`s, so the artifact loader only
//! borrows mapped bytes on little-endian targets.

use std::fs::File;

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // Raw mmap(2)/munmap(2) bindings — the only FFI in the workspace. The
    // constant values below are shared by every Unix the toolchain targets
    // (Linux, macOS, the BSDs) for this read-only/private use.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A whole-file read-only private mapping. The mapping outlives the
    /// `File` handle it was created from (POSIX keeps pages valid after the
    /// descriptor closes), and the atomic-rename save discipline in
    /// [`crate::artifact`] means a mapped inode is replaced, never truncated
    /// in place — so the borrowed pages stay valid for the mapping's
    /// lifetime.
    pub(super) struct Map {
        ptr: *const u8,
        len: usize,
    }

    // A read-only mapping is plain immutable memory: sharing it across
    // threads is no different from sharing a `&[u8]`.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn open(file: &File, len: usize) -> Option<Map> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Map {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            // Safety: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, held until `Drop`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // Safety: `ptr`/`len` are the exact values returned by `mmap`.
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;

    /// Uninhabited on non-Unix targets: [`Map::map`] always declines, so no
    /// value of this type ever exists and `as_bytes` is statically
    /// unreachable. Keeping the type (rather than `cfg`-ing out every caller)
    /// lets the engine's bank enum compile identically on every platform.
    pub(super) enum Map {}

    impl Map {
        pub(super) fn open(_file: &File, _len: usize) -> Option<Map> {
            None
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            match *self {}
        }
    }
}

/// A read-only memory-mapped file, usable as `&[u8]` for its whole lifetime.
///
/// `map` returns `None` whenever mapping is unavailable (non-Unix target,
/// empty file, or the syscall failing) — callers treat `None` as "use the
/// heap path", never as an error.
pub(crate) struct MappedFile {
    inner: sys::Map,
}

impl MappedFile {
    /// Map `file` (of size `len` bytes) read-only. `None` means "fall back".
    pub(crate) fn map(file: &File, len: usize) -> Option<MappedFile> {
        sys::Map::open(file, len).map(|inner| MappedFile { inner })
    }

    /// The mapped bytes. The base pointer is page-aligned (guaranteed by
    /// `mmap`), which is what lets 64-byte-aligned `.zsm` bank payloads be
    /// reinterpreted as `f64` rows in place.
    pub(crate) fn as_bytes(&self) -> &[u8] {
        self.inner.as_bytes()
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.as_bytes().len())
            .finish()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_and_unmaps_on_drop() {
        let dir = std::env::temp_dir().join(format!("zsl_mmap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(&payload))
            .expect("write");
        let file = std::fs::File::open(&path).expect("open");
        let map = MappedFile::map(&file, payload.len()).expect("mmap");
        drop(file); // the mapping must outlive the descriptor
        assert_eq!(map.as_bytes(), &payload[..]);
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_files_decline_to_map() {
        let dir = std::env::temp_dir().join(format!("zsl_mmap_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).expect("create");
        let file = std::fs::File::open(&path).expect("open");
        assert!(MappedFile::map(&file, 0).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
