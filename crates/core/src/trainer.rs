//! The object-safe [`Trainer`] abstraction: every model family fits from any
//! [`FeatureSource`] into a [`TrainedModel`], which the scoring engine,
//! `.zsm` artifacts, and the serving daemon consume without knowing which
//! family produced it.
//!
//! This is the trainer-side counterpart of the PR 5 `FeatureSource`
//! unification: data sources multiplied scenarios for ONE model; the trait
//! here multiplies models across every scenario — cross-validation, GZSL
//! evaluation, `.zsm` persistence, and serving all dispatch through
//! [`Trainer`] / [`TrainedModel`] instead of hardcoding ESZSL.
//!
//! Three families ship:
//!
//! - **ESZSL** ([`crate::model::EszslTrainer`]) — the original closed form
//!   `W = (XᵀX + γI)⁻¹ XᵀYS (SᵀS + λI)⁻¹`.
//! - **SAE** ([`SaeTrainer`]) — the Semantic Autoencoder: tie the encoder and
//!   decoder (`W` and `Wᵀ`) and minimize
//!   `‖X − (YS)Wᵀ‖² + λ‖XW − YS‖²`, whose normal equations are the Sylvester
//!   system `(YS)ᵀ(YS)·W' + W'·λXᵀX = (1+λ)(YS)ᵀX` solved in closed form by
//!   [`crate::linalg::solve_sylvester`] (two symmetric eigendecompositions).
//! - **Kernelized ESZSL** ([`KernelEszslTrainer`]) — ESZSL over the kernel
//!   feature map `Φ(x) = k(x, anchors)` with a linear or RBF Gram
//!   ([`KernelKind`]); the dual weights and the anchor rows together form the
//!   model ([`KernelModel`]), so kernel scoring needs no training data.
//!
//! Every trainer folds its sufficient statistics through the same
//! [`GramAccumulator`] discipline (ascending-row, chunk-at-a-time), so the
//! streaming guarantees are inherited for free: streamed training is
//! **bit-identical** to in-memory at every chunk size, and peak resident
//! feature memory stays `O(chunk_rows x feature_dim)` (the kernel family
//! additionally holds its anchor set — that is the model itself, not a
//! buffering artifact; cap it with
//! [`KernelEszslConfig::max_anchors`]). `tests/trainer_equiv.rs` pins all of
//! this differentially.

use crate::error::ZslError;
use crate::linalg::{default_threads, solve_sylvester, Matrix};
use crate::model::{
    validate_regularizer, EszslProblem, EszslTrainer, GramAccumulator, ProjectionModel, TrainError,
};
use crate::source::{FeatureSource, SourceStream, SplitKind};
use std::borrow::Cow;

/// Model family tag: which trainer produced a [`TrainedModel`], and how a
/// `.zsm` v2 artifact encodes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelFamily {
    /// Closed-form ESZSL (linear projection).
    Eszsl,
    /// Semantic Autoencoder (linear projection via a Sylvester solve).
    Sae,
    /// Kernelized ESZSL (dual weights over stored anchors).
    KernelEszsl,
}

impl ModelFamily {
    /// Stable text tag, used in artifact metadata and the CLI `--model` flag.
    pub fn tag(self) -> &'static str {
        match self {
            ModelFamily::Eszsl => "eszsl",
            ModelFamily::Sae => "sae",
            ModelFamily::KernelEszsl => "kernel-eszsl",
        }
    }

    /// Byte code stored in the `.zsm` v2 header.
    pub fn code(self) -> u8 {
        match self {
            ModelFamily::Eszsl => 0,
            ModelFamily::Sae => 1,
            ModelFamily::KernelEszsl => 2,
        }
    }

    /// Inverse of [`ModelFamily::code`].
    pub fn from_code(code: u8) -> Option<ModelFamily> {
        match code {
            0 => Some(ModelFamily::Eszsl),
            1 => Some(ModelFamily::Sae),
            2 => Some(ModelFamily::KernelEszsl),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Gram option of the kernelized trainer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelKind {
    /// `k(x, y) = x · y` — the linear Gram.
    Linear,
    /// `k(x, y) = exp(−width · ‖x − y‖²)` — the RBF Gram.
    Rbf {
        /// Inverse-bandwidth factor; must be positive and finite.
        width: f64,
    },
}

impl KernelKind {
    /// Byte code stored in the `.zsm` v2 kernel payload.
    pub fn code(self) -> u8 {
        match self {
            KernelKind::Linear => 0,
            KernelKind::Rbf { .. } => 1,
        }
    }

    /// Inverse of [`KernelKind::code`]; `width` is only read for RBF.
    pub fn from_code(code: u8, width: f64) -> Option<KernelKind> {
        match code {
            0 => Some(KernelKind::Linear),
            1 => Some(KernelKind::Rbf { width }),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelKind::Linear => f.write_str("linear"),
            KernelKind::Rbf { width } => write!(f, "rbf({width})"),
        }
    }
}

/// The kernel feature map `Φ(X) = k(X, anchors) : n x m`.
///
/// Row `i` depends only on row `i` of `x` and the anchor set, so the map is
/// chunk-size-invariant by construction. Both cases honor `threads` through
/// the shared worker pool: the linear case routes through the packed `X·Aᵀ`
/// kernel, and the RBF case is row-banded with a fixed per-row summation
/// order (ascending anchor, then ascending feature), so every thread count
/// produces bit-identical Grams.
pub(crate) fn kernel_map(
    x: &Matrix,
    anchors: &Matrix,
    kernel: KernelKind,
    threads: usize,
) -> Matrix {
    match kernel {
        KernelKind::Linear => x.matmul_bt_parallel(anchors, threads),
        KernelKind::Rbf { width } => {
            let (n, m, d) = (x.rows(), anchors.rows(), x.cols());
            let data = crate::linalg::rbf_gram_parallel(
                x.as_slice(),
                n,
                d,
                anchors.as_slice(),
                m,
                width,
                threads,
            );
            Matrix::from_vec(n, m, data)
        }
    }
}

/// A trained kernelized model: dual weights `alpha : m x a` over a stored
/// anchor set `anchors : m x d`. Scoring projects a batch as
/// `k(X, anchors) · alpha` — no training data needed beyond the anchors,
/// which the `.zsm` v2 artifact persists as the family's extra payload.
#[derive(Clone, Debug)]
pub struct KernelModel {
    alpha: Matrix,
    anchors: Matrix,
    kernel: KernelKind,
}

impl KernelModel {
    /// Assemble from parts; the anchor and weight row counts must agree.
    pub fn from_parts(
        alpha: Matrix,
        anchors: Matrix,
        kernel: KernelKind,
    ) -> Result<KernelModel, TrainError> {
        if alpha.rows() != anchors.rows() {
            return Err(TrainError::Shape(format!(
                "kernel model has {} dual-weight rows but {} anchors",
                alpha.rows(),
                anchors.rows()
            )));
        }
        Ok(KernelModel {
            alpha,
            anchors,
            kernel,
        })
    }

    /// Dual weights `alpha : m x a`.
    pub fn alpha(&self) -> &Matrix {
        &self.alpha
    }

    /// The anchor rows `m x d` the kernel is evaluated against.
    pub fn anchors(&self) -> &Matrix {
        &self.anchors
    }

    /// The Gram option.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Project a batch into attribute space: `k(X, anchors) · alpha`.
    /// Bit-identical for every thread count.
    pub fn project_parallel(&self, x: &Matrix, threads: usize) -> Matrix {
        kernel_map(x, &self.anchors, self.kernel, threads).matmul_parallel(&self.alpha, threads)
    }
}

/// A trained model of any family — what [`Trainer::fit`] returns and what
/// [`crate::infer::ScoringEngine`] scores with.
#[derive(Clone, Debug)]
pub enum TrainedModel {
    /// ESZSL closed form: a linear feature→attribute projection.
    Eszsl(ProjectionModel),
    /// Semantic Autoencoder: also a linear projection (solved via Sylvester).
    Sae(ProjectionModel),
    /// Kernelized ESZSL: dual weights over stored anchors.
    Kernel(KernelModel),
}

/// A bare [`ProjectionModel`] keeps meaning what it always did: ESZSL.
impl From<ProjectionModel> for TrainedModel {
    fn from(model: ProjectionModel) -> Self {
        TrainedModel::Eszsl(model)
    }
}

impl From<KernelModel> for TrainedModel {
    fn from(model: KernelModel) -> Self {
        TrainedModel::Kernel(model)
    }
}

impl TrainedModel {
    /// Which family trained this model.
    pub fn family(&self) -> ModelFamily {
        match self {
            TrainedModel::Eszsl(_) => ModelFamily::Eszsl,
            TrainedModel::Sae(_) => ModelFamily::Sae,
            TrainedModel::Kernel(_) => ModelFamily::KernelEszsl,
        }
    }

    /// Input feature width the model scores.
    pub fn feature_dim(&self) -> usize {
        match self {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => m.weights().rows(),
            TrainedModel::Kernel(m) => m.anchors().cols(),
        }
    }

    /// Attribute-space width the model projects into.
    pub fn attr_dim(&self) -> usize {
        match self {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => m.weights().cols(),
            TrainedModel::Kernel(m) => m.alpha().cols(),
        }
    }

    /// The linear projection, for the two linear families.
    pub fn projection(&self) -> Option<&ProjectionModel> {
        match self {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => Some(m),
            TrainedModel::Kernel(_) => None,
        }
    }

    /// The kernel model, for the kernel family.
    pub fn kernel_model(&self) -> Option<&KernelModel> {
        match self {
            TrainedModel::Kernel(m) => Some(m),
            _ => None,
        }
    }

    /// Project a batch of features (`n x d`) into attribute space (`n x a`).
    pub fn project(&self, x: &Matrix) -> Matrix {
        self.project_parallel(x, 1)
    }

    /// Multi-threaded [`TrainedModel::project`], bit-identical to the serial
    /// path for every thread count (each family's kernel guarantees this).
    pub fn project_parallel(&self, x: &Matrix, threads: usize) -> Matrix {
        match self {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => m.project_parallel(x, threads),
            TrainedModel::Kernel(m) => m.project_parallel(x, threads),
        }
    }

    /// Every parameter matrix is finite. Used by the engine validation gate.
    pub(crate) fn is_finite(&self) -> bool {
        match self {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => {
                m.weights().as_slice().iter().all(|v| v.is_finite())
            }
            TrainedModel::Kernel(m) => {
                m.alpha().as_slice().iter().all(|v| v.is_finite())
                    && m.anchors().as_slice().iter().all(|v| v.is_finite())
            }
        }
    }
}

/// The object-safe trainer abstraction: fit from any [`FeatureSource`] into
/// a [`TrainedModel`].
///
/// Hyperparameters flow through the universal `(γ, λ)` pair so one
/// [`crate::eval::CrossValConfig`] grid drives every family; what the pair
/// *means* is per-model ([`Trainer::grid_points`] maps the configured grids
/// into this trainer's sweep — SAE, with its single `λ`, collapses the γ
/// axis). Generic call sites hold a `&dyn Trainer` (or a `Box<dyn Trainer>`
/// from [`Trainer::with_point`]), so new families — sparse attribute
/// propagation, ParsNets-style constrained linear models — plug in without
/// touching the CV/GZSL/artifact/serving layers.
pub trait Trainer: std::fmt::Debug {
    /// Which family this trainer produces.
    fn family(&self) -> ModelFamily;

    /// Fit on the trainval split of `source` with the trainer's configured
    /// hyperparameters.
    fn fit(&self, source: &dyn FeatureSource) -> Result<TrainedModel, ZslError>;

    /// Fit one model per `(γ, λ)` point from the trainval rows at `subset`
    /// positions — the cross-validation fold primitive. Implementations pay
    /// their sufficient statistics once and solve per point.
    fn fit_grid(
        &self,
        source: &dyn FeatureSource,
        subset: &[usize],
        points: &[(f64, f64)],
    ) -> Result<Vec<TrainedModel>, ZslError>;

    /// This trainer's sweep over the configured `(γ, λ)` candidate grids, in
    /// report order. Families with fewer hyperparameters collapse axes here
    /// (and record the placeholder in the grid point).
    fn grid_points(&self, gammas: &[f64], lambdas: &[f64]) -> Vec<(f64, f64)>;

    /// A copy of this trainer with the `(γ, λ)` point applied — the final
    /// refit after cross-validation selects a winner.
    fn with_point(&self, gamma: f64, lambda: f64) -> Box<dyn Trainer>;

    /// `key=value; ...` provenance string for artifact metadata, starting
    /// with `trainer=<family tag>`.
    fn describe(&self) -> String;

    /// An owned copy behind the object-safe interface — what keeps a
    /// [`crate::pipeline::Pipeline`] holding a boxed trainer `Clone`.
    fn clone_box(&self) -> Box<dyn Trainer>;
}

impl Clone for Box<dyn Trainer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl Trainer for EszslTrainer {
    fn family(&self) -> ModelFamily {
        ModelFamily::Eszsl
    }

    fn fit(&self, source: &dyn FeatureSource) -> Result<TrainedModel, ZslError> {
        Ok(TrainedModel::Eszsl(EszslTrainer::fit(self, source)?))
    }

    fn fit_grid(
        &self,
        source: &dyn FeatureSource,
        subset: &[usize],
        points: &[(f64, f64)],
    ) -> Result<Vec<TrainedModel>, ZslError> {
        let config = self.config();
        let signatures = source.seen_signatures();
        let mut acc = GramAccumulator::with_normalization(
            &signatures,
            config.normalize_features,
            config.normalize_signatures,
        );
        for chunk in source.stream_trainval_subset(subset)? {
            let (x, labels) = chunk?;
            acc.fold(&x, &labels)?;
        }
        let problem = acc.finish().map_err(ZslError::from)?;
        points
            .iter()
            .map(|&(gamma, lambda)| Ok(TrainedModel::Eszsl(problem.solve(gamma, lambda)?)))
            .collect()
    }

    fn grid_points(&self, gammas: &[f64], lambdas: &[f64]) -> Vec<(f64, f64)> {
        cartesian(gammas, lambdas)
    }

    fn with_point(&self, gamma: f64, lambda: f64) -> Box<dyn Trainer> {
        Box::new(self.config().clone().gamma(gamma).lambda(lambda).build())
    }

    fn clone_box(&self) -> Box<dyn Trainer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        let c = self.config();
        format!(
            "trainer=eszsl; gamma={}; lambda={}; normalize_features={}; normalize_signatures={}",
            c.gamma, c.lambda, c.normalize_features, c.normalize_signatures
        )
    }
}

/// `γ x λ` in report order (γ outer, λ inner) — the sweep shape the original
/// ESZSL-only cross-validation used.
fn cartesian(gammas: &[f64], lambdas: &[f64]) -> Vec<(f64, f64)> {
    let mut points = Vec::with_capacity(gammas.len() * lambdas.len());
    for &gamma in gammas {
        for &lambda in lambdas {
            points.push((gamma, lambda));
        }
    }
    points
}

/// Borrow features, copying only when normalization rewrites them.
fn prep_features<'m>(x: &'m Matrix, normalize: bool) -> Cow<'m, Matrix> {
    if normalize {
        let mut x = x.clone();
        x.l2_normalize_rows();
        Cow::Owned(x)
    } else {
        Cow::Borrowed(x)
    }
}

/// Builder-style configuration for [`SaeTrainer`].
#[derive(Clone, Debug)]
pub struct SaeConfig {
    /// Reconstruction/projection trade-off λ in
    /// `‖X − (YS)Wᵀ‖² + λ‖XW − YS‖²`. Must be positive and finite.
    pub lambda: f64,
    /// L2-normalize feature rows before training.
    pub normalize_features: bool,
    /// L2-normalize signature rows before training.
    pub normalize_signatures: bool,
}

impl Default for SaeConfig {
    fn default() -> Self {
        SaeConfig {
            lambda: 1.0,
            normalize_features: false,
            normalize_signatures: false,
        }
    }
}

impl SaeConfig {
    /// Start from the defaults (λ = 1, no normalization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the trade-off λ.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Toggle L2 normalization of feature rows.
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.normalize_features = on;
        self
    }

    /// Toggle L2 normalization of signature rows.
    pub fn normalize_signatures(mut self, on: bool) -> Self {
        self.normalize_signatures = on;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> SaeTrainer {
        SaeTrainer { config: self }
    }
}

/// Semantic Autoencoder trainer: closed-form via the Sylvester system
/// `(YS)ᵀ(YS)·W' + W'·λXᵀX = (1+λ)(YS)ᵀX` (then `W = W'ᵀ : d x a`).
///
/// Both operands are built from the SAME streamed sufficient statistics the
/// ESZSL path accumulates — `XᵀX`, `XᵀYS`, and per-class counts (since
/// `(YS)ᵀ(YS) = Sᵀ diag(counts) S`) — so SAE training streams any source at
/// `O(chunk_rows x feature_dim)` peak feature memory and is bit-identical
/// across chunk sizes for free.
#[derive(Clone, Debug, Default)]
pub struct SaeTrainer {
    config: SaeConfig,
}

impl SaeTrainer {
    /// Trainer with an explicit configuration.
    pub fn new(config: SaeConfig) -> Self {
        SaeTrainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SaeConfig {
        &self.config
    }

    fn system(
        &self,
        source: &dyn FeatureSource,
        subset: Option<&[usize]>,
    ) -> Result<SaeSystem, ZslError> {
        let signatures = source.seen_signatures();
        let mut acc = GramAccumulator::with_normalization(
            &signatures,
            self.config.normalize_features,
            self.config.normalize_signatures,
        );
        for chunk in subset_stream(source, subset)? {
            let (x, labels) = chunk?;
            acc.fold(&x, &labels)?;
        }
        // `A = Sᵀ diag(counts) S` from the prepared signatures and per-class
        // counts — chunk-order-invariant because integer counting is.
        let prepared = acc.signatures().clone();
        let mut weighted = prepared.clone();
        for (r, &count) in acc.class_counts().to_vec().iter().enumerate() {
            for v in weighted.row_mut(r) {
                *v *= count;
            }
        }
        let a = prepared.transpose().matmul(&weighted);
        let problem = acc.finish().map_err(ZslError::from)?;
        Ok(SaeSystem {
            a,
            xtx: problem.xtx().clone(),
            stx: problem.xtys().transpose(),
        })
    }
}

/// Accumulated SAE sufficient statistics, reusable across λ grid points.
struct SaeSystem {
    /// `(YS)ᵀ(YS) : a x a`.
    a: Matrix,
    /// `XᵀX : d x d` (unscaled).
    xtx: Matrix,
    /// `(YS)ᵀX : a x d` (unscaled).
    stx: Matrix,
}

impl SaeSystem {
    fn solve(&self, lambda: f64) -> Result<TrainedModel, ZslError> {
        validate_regularizer("lambda", lambda)?;
        let b = scaled(&self.xtx, lambda);
        let c = scaled(&self.stx, 1.0 + lambda);
        let w =
            solve_sylvester(&self.a, &b, &c).map_err(|e| ZslError::Train(TrainError::Solver(e)))?;
        Ok(TrainedModel::Sae(ProjectionModel::from_weights(
            w.transpose(),
        )))
    }
}

fn scaled(m: &Matrix, factor: f64) -> Matrix {
    Matrix::from_vec(
        m.rows(),
        m.cols(),
        m.as_slice().iter().map(|v| v * factor).collect(),
    )
}

impl Trainer for SaeTrainer {
    fn family(&self) -> ModelFamily {
        ModelFamily::Sae
    }

    fn fit(&self, source: &dyn FeatureSource) -> Result<TrainedModel, ZslError> {
        self.system(source, None)?.solve(self.config.lambda)
    }

    fn fit_grid(
        &self,
        source: &dyn FeatureSource,
        subset: &[usize],
        points: &[(f64, f64)],
    ) -> Result<Vec<TrainedModel>, ZslError> {
        let system = self.system(source, Some(subset))?;
        points
            .iter()
            .map(|&(_, lambda)| system.solve(lambda))
            .collect()
    }

    /// SAE has one hyperparameter: sweep the λ grid and collapse the γ axis,
    /// recording `γ = 0` as the placeholder in every grid point.
    fn grid_points(&self, _gammas: &[f64], lambdas: &[f64]) -> Vec<(f64, f64)> {
        lambdas.iter().map(|&lambda| (0.0, lambda)).collect()
    }

    fn with_point(&self, _gamma: f64, lambda: f64) -> Box<dyn Trainer> {
        Box::new(self.config.clone().lambda(lambda).build())
    }

    fn clone_box(&self) -> Box<dyn Trainer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!(
            "trainer=sae; lambda={}; normalize_features={}; normalize_signatures={}",
            self.config.lambda, self.config.normalize_features, self.config.normalize_signatures
        )
    }
}

/// Builder-style configuration for [`KernelEszslTrainer`].
#[derive(Clone, Debug)]
pub struct KernelEszslConfig {
    /// Gram option.
    pub kernel: KernelKind,
    /// Kernel-space regularizer γ added to `ΦᵀΦ`.
    pub gamma: f64,
    /// Attribute-space regularizer λ added to `SᵀS`.
    pub lambda: f64,
    /// Cap on the stored anchor set: the FIRST `max_anchors` trainval rows in
    /// stream order (chunk-size-invariant by construction). `None` keeps
    /// every training row — the classic kernel formulation, whose model size
    /// is `O(n_train x feature_dim)` by nature.
    pub max_anchors: Option<usize>,
    /// L2-normalize feature rows (before the kernel map) during training.
    pub normalize_features: bool,
    /// L2-normalize signature rows before training.
    pub normalize_signatures: bool,
}

impl Default for KernelEszslConfig {
    fn default() -> Self {
        KernelEszslConfig {
            kernel: KernelKind::Linear,
            gamma: 1.0,
            lambda: 1.0,
            max_anchors: None,
            normalize_features: false,
            normalize_signatures: false,
        }
    }
}

impl KernelEszslConfig {
    /// Start from the defaults (linear Gram, γ = λ = 1, all anchors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the Gram option.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the kernel-space regularizer γ.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Set the attribute-space regularizer λ.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Cap the anchor set at the first `max_anchors` training rows.
    pub fn max_anchors(mut self, max_anchors: usize) -> Self {
        self.max_anchors = Some(max_anchors);
        self
    }

    /// Toggle L2 normalization of feature rows (pre-kernel).
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.normalize_features = on;
        self
    }

    /// Toggle L2 normalization of signature rows.
    pub fn normalize_signatures(mut self, on: bool) -> Self {
        self.normalize_signatures = on;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> KernelEszslTrainer {
        KernelEszslTrainer { config: self }
    }
}

/// Kernelized ESZSL: the exact ESZSL closed form applied to the kernel
/// feature map `Φ(x) = k(x, anchors)`, i.e.
/// `alpha = (ΦᵀΦ + γI)⁻¹ ΦᵀYS (SᵀS + λI)⁻¹ : m x a`.
///
/// Training makes two streaming passes over the source: one to collect the
/// anchor rows (a stream-order prefix, so chunk boundaries cannot change it),
/// one to fold the kernel-space Grams through the same [`GramAccumulator`]
/// every other trainer uses — streamed results stay bit-identical to
/// in-memory at every chunk size.
#[derive(Clone, Debug, Default)]
pub struct KernelEszslTrainer {
    config: KernelEszslConfig,
}

impl KernelEszslTrainer {
    /// Trainer with an explicit configuration.
    pub fn new(config: KernelEszslConfig) -> Self {
        KernelEszslTrainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &KernelEszslConfig {
        &self.config
    }

    fn validate(&self) -> Result<(), ZslError> {
        validate_regularizer("gamma", self.config.gamma)?;
        validate_regularizer("lambda", self.config.lambda)?;
        if let KernelKind::Rbf { width } = self.config.kernel {
            validate_regularizer("rbf width", width)?;
        }
        if self.config.max_anchors == Some(0) {
            return Err(ZslError::Train(TrainError::InvalidConfig(
                "max_anchors must be at least 1".into(),
            )));
        }
        Ok(())
    }

    /// Pass 1: the anchor set — the first `max_anchors` (or all) trainval
    /// rows in stream order, with feature normalization already applied.
    fn collect_anchors(
        &self,
        source: &dyn FeatureSource,
        subset: Option<&[usize]>,
    ) -> Result<Matrix, ZslError> {
        let cap = self.config.max_anchors.unwrap_or(usize::MAX);
        let mut data: Vec<f64> = Vec::new();
        let mut dim: Option<usize> = None;
        let mut taken = 0usize;
        for chunk in subset_stream(source, subset)? {
            let (x, _) = chunk?;
            if x.rows() == 0 {
                continue;
            }
            match dim {
                None => dim = Some(x.cols()),
                Some(d) if d != x.cols() => {
                    return Err(ZslError::Train(TrainError::Shape(format!(
                        "chunk has {} feature columns but earlier chunks had {d}",
                        x.cols()
                    ))));
                }
                _ => {}
            }
            let x = prep_features(&x, self.config.normalize_features);
            let take = x.rows().min(cap - taken);
            data.extend_from_slice(&x.as_slice()[..take * x.cols()]);
            taken += take;
            if taken >= cap {
                break;
            }
        }
        let Some(d) = dim else {
            return Err(ZslError::Train(TrainError::Shape(
                "empty training set".into(),
            )));
        };
        Ok(Matrix::from_vec(taken, d, data))
    }

    /// Pass 2: fold the kernel-space Grams `ΦᵀΦ` / `ΦᵀYS` (reusing the one
    /// shared accumulator), returning the solvable problem plus the anchors.
    fn kernel_problem(
        &self,
        source: &dyn FeatureSource,
        subset: Option<&[usize]>,
    ) -> Result<(EszslProblem, Matrix), ZslError> {
        self.validate()?;
        let anchors = self.collect_anchors(source, subset)?;
        let signatures = source.seen_signatures();
        // Feature normalization happens pre-kernel; the accumulator must not
        // renormalize the kernel rows.
        let mut acc = GramAccumulator::with_normalization(
            &signatures,
            false,
            self.config.normalize_signatures,
        );
        for chunk in subset_stream(source, subset)? {
            let (x, labels) = chunk?;
            if x.cols() != anchors.cols() {
                return Err(ZslError::Train(TrainError::Shape(format!(
                    "chunk has {} feature columns but the anchor set has {}",
                    x.cols(),
                    anchors.cols()
                ))));
            }
            let x = prep_features(&x, self.config.normalize_features);
            // Safe to parallelize: the map is bit-identical across thread
            // counts for both kernels, so streamed training stays exact.
            let phi = kernel_map(&x, &anchors, self.config.kernel, default_threads());
            acc.fold(&phi, &labels)?;
        }
        Ok((acc.finish().map_err(ZslError::from)?, anchors))
    }
}

impl Trainer for KernelEszslTrainer {
    fn family(&self) -> ModelFamily {
        ModelFamily::KernelEszsl
    }

    fn fit(&self, source: &dyn FeatureSource) -> Result<TrainedModel, ZslError> {
        let (problem, anchors) = self.kernel_problem(source, None)?;
        let alpha = problem.solve(self.config.gamma, self.config.lambda)?;
        Ok(TrainedModel::Kernel(KernelModel::from_parts(
            alpha.into_weights(),
            anchors,
            self.config.kernel,
        )?))
    }

    fn fit_grid(
        &self,
        source: &dyn FeatureSource,
        subset: &[usize],
        points: &[(f64, f64)],
    ) -> Result<Vec<TrainedModel>, ZslError> {
        let (problem, anchors) = self.kernel_problem(source, Some(subset))?;
        points
            .iter()
            .map(|&(gamma, lambda)| {
                let alpha = problem.solve(gamma, lambda)?;
                Ok(TrainedModel::Kernel(KernelModel::from_parts(
                    alpha.into_weights(),
                    anchors.clone(),
                    self.config.kernel,
                )?))
            })
            .collect()
    }

    fn grid_points(&self, gammas: &[f64], lambdas: &[f64]) -> Vec<(f64, f64)> {
        cartesian(gammas, lambdas)
    }

    fn with_point(&self, gamma: f64, lambda: f64) -> Box<dyn Trainer> {
        Box::new(self.config.clone().gamma(gamma).lambda(lambda).build())
    }

    fn clone_box(&self) -> Box<dyn Trainer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        let c = &self.config;
        let anchors = match c.max_anchors {
            Some(m) => format!("{m}"),
            None => "all".into(),
        };
        format!(
            "trainer=kernel-eszsl; kernel={}; gamma={}; lambda={}; max_anchors={anchors}; \
             normalize_features={}; normalize_signatures={}",
            c.kernel, c.gamma, c.lambda, c.normalize_features, c.normalize_signatures
        )
    }
}

/// The trainval stream, optionally restricted to `subset` positions — the one
/// helper behind every trainer's accumulation passes.
fn subset_stream<'s>(
    source: &'s dyn FeatureSource,
    subset: Option<&[usize]>,
) -> Result<SourceStream<'s>, ZslError> {
    match subset {
        Some(positions) => source.stream_trainval_subset(positions),
        None => source.stream(SplitKind::Trainval),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;
    use crate::model::EszslConfig;

    fn dataset() -> crate::data::Dataset {
        SyntheticConfig::new()
            .classes(8, 3)
            .dims(5, 7)
            .samples(6, 4)
            .noise(0.05)
            .seed(0x7A1)
            .build()
    }

    #[test]
    fn sae_solution_satisfies_its_sylvester_normal_equations() {
        let ds = dataset();
        let trainer = SaeConfig::new().lambda(0.7).build();
        let model = Trainer::fit(&trainer, &ds).expect("fit");
        assert_eq!(model.family(), ModelFamily::Sae);
        let w = model.projection().expect("linear").weights(); // d x a
        let wp = w.transpose(); // a x d — the Sylvester unknown

        // Rebuild A, B, C directly from the dataset and check A·W' + W'·B ≈ C.
        let mut ys = Matrix::zeros(ds.train_x.rows(), ds.seen_signatures.cols());
        for (i, &label) in ds.train_labels.iter().enumerate() {
            ys.row_mut(i).copy_from_slice(ds.seen_signatures.row(label));
        }
        let a = ys.transpose().matmul(&ys);
        let xtx = ds.train_x.transpose().matmul(&ds.train_x);
        let b = scaled(&xtx, 0.7);
        let c = scaled(&ys.transpose().matmul(&ds.train_x), 1.7);
        let mut lhs = a.matmul(&wp);
        let rhs = wp.matmul(&b);
        let (rows, cols) = (lhs.rows(), lhs.cols());
        for (l, r) in (0..rows * cols).map(|i| (i / cols, i % cols)) {
            let v = lhs.get(l, r) + rhs.get(l, r);
            lhs.set(l, r, v);
        }
        assert!(
            lhs.max_abs_diff(&c) < 1e-7,
            "SAE normal equations violated: {}",
            lhs.max_abs_diff(&c)
        );
    }

    #[test]
    fn kernel_linear_fit_produces_dual_weights_over_anchors() {
        let ds = dataset();
        let trainer = KernelEszslConfig::new().gamma(0.5).lambda(2.0).build();
        let model = Trainer::fit(&trainer, &ds).expect("fit");
        assert_eq!(model.family(), ModelFamily::KernelEszsl);
        let km = model.kernel_model().expect("kernel");
        assert_eq!(km.anchors().rows(), ds.train_x.rows());
        assert_eq!(km.anchors().cols(), ds.train_x.cols());
        assert_eq!(km.alpha().rows(), km.anchors().rows());
        assert_eq!(km.alpha().cols(), ds.seen_signatures.cols());
        assert_eq!(model.feature_dim(), ds.train_x.cols());
        assert_eq!(model.attr_dim(), ds.seen_signatures.cols());
        // Projection shapes line up and parallel == serial bit-for-bit.
        let serial = model.project(&ds.test_seen_x);
        assert_eq!(serial.rows(), ds.test_seen_x.rows());
        assert_eq!(serial.cols(), ds.seen_signatures.cols());
        for threads in [2, 5] {
            assert_eq!(
                model.project_parallel(&ds.test_seen_x, threads).as_slice(),
                serial.as_slice()
            );
        }
    }

    #[test]
    fn max_anchors_caps_the_anchor_set_to_a_stream_prefix() {
        let ds = dataset();
        let trainer = KernelEszslConfig::new().max_anchors(5).build();
        let model = Trainer::fit(&trainer, &ds).expect("fit");
        let km = model.kernel_model().expect("kernel");
        assert_eq!(km.anchors().rows(), 5);
        for r in 0..5 {
            assert_eq!(km.anchors().row(r), ds.train_x.row(r), "row {r}");
        }
    }

    #[test]
    fn rbf_kernel_map_is_symmetric_and_unit_on_the_diagonal() {
        let ds = dataset();
        let k = kernel_map(&ds.train_x, &ds.train_x, KernelKind::Rbf { width: 0.3 }, 1);
        for i in 0..k.rows() {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..k.cols() {
                assert_eq!(k.get(i, j).to_bits(), k.get(j, i).to_bits(), "({i},{j})");
                assert!(k.get(i, j) > 0.0 && k.get(i, j) <= 1.0);
            }
        }
    }

    #[test]
    fn rbf_kernel_map_honors_threads_bit_identically() {
        // Regression for the serial-RBF bug: the map must engage the banded
        // path (this shape is above the parallel work cutoff) and still match
        // the single-threaded Gram bit-for-bit at every thread count.
        let mut rng = crate::data::Rng::new(0xB1F);
        let n = 300;
        let (d, m) = (32, 16);
        let x = Matrix::from_vec(n, d, (0..n * d).map(|_| rng.normal()).collect());
        let anchors = Matrix::from_vec(m, d, (0..m * d).map(|_| rng.normal()).collect());
        let kernel = KernelKind::Rbf { width: 0.25 };
        let serial = kernel_map(&x, &anchors, kernel, 1);
        for threads in [2usize, 4, 9] {
            let parallel = kernel_map(&x, &anchors, kernel, threads);
            assert_eq!(
                parallel.as_slice(),
                serial.as_slice(),
                "RBF Gram diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn grid_points_shapes_are_per_family() {
        let gammas = [0.1, 1.0];
        let lambdas = [0.5, 5.0, 50.0];
        let eszsl = EszslConfig::new().build();
        assert_eq!(
            Trainer::grid_points(&eszsl, &gammas, &lambdas).len(),
            6,
            "ESZSL sweeps the full cartesian grid"
        );
        let sae = SaeConfig::new().build();
        assert_eq!(
            Trainer::grid_points(&sae, &gammas, &lambdas),
            vec![(0.0, 0.5), (0.0, 5.0), (0.0, 50.0)],
            "SAE collapses the gamma axis"
        );
    }

    #[test]
    fn with_point_and_describe_round_trip_hyperparameters() {
        let eszsl = EszslConfig::new().build().with_point(0.25, 4.0);
        assert!(eszsl
            .describe()
            .contains("trainer=eszsl; gamma=0.25; lambda=4"));
        let sae = SaeConfig::new().build().with_point(0.0, 2.5);
        assert!(sae.describe().contains("trainer=sae; lambda=2.5"));
        let kernel = KernelEszslConfig::new()
            .kernel(KernelKind::Rbf { width: 0.5 })
            .build()
            .with_point(3.0, 0.125);
        let described = kernel.describe();
        assert!(described.contains("trainer=kernel-eszsl"), "{described}");
        assert!(described.contains("kernel=rbf(0.5)"), "{described}");
        assert!(described.contains("gamma=3"), "{described}");
    }

    #[test]
    fn invalid_hyperparameters_are_typed_errors_for_every_family() {
        let ds = dataset();
        let sae = SaeConfig::new().lambda(0.0).build();
        assert!(matches!(
            Trainer::fit(&sae, &ds),
            Err(ZslError::Train(TrainError::InvalidConfig(_)))
        ));
        let kernel = KernelEszslConfig::new().gamma(-1.0).build();
        assert!(matches!(
            Trainer::fit(&kernel, &ds),
            Err(ZslError::Train(TrainError::InvalidConfig(_)))
        ));
        let bad_width = KernelEszslConfig::new()
            .kernel(KernelKind::Rbf { width: f64::NAN })
            .build();
        assert!(matches!(
            Trainer::fit(&bad_width, &ds),
            Err(ZslError::Train(TrainError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn family_codes_round_trip_and_reject_unknowns() {
        for family in [
            ModelFamily::Eszsl,
            ModelFamily::Sae,
            ModelFamily::KernelEszsl,
        ] {
            assert_eq!(ModelFamily::from_code(family.code()), Some(family));
        }
        assert_eq!(ModelFamily::from_code(99), None);
        assert_eq!(
            KernelKind::from_code(1, 0.25),
            Some(KernelKind::Rbf { width: 0.25 })
        );
        assert_eq!(KernelKind::from_code(7, 0.0), None);
    }
}
