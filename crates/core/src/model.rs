//! Closed-form training for linear zero-shot models.
//!
//! The central object is the ESZSL-style bilinear compatibility model: with
//! features `X : n x d` (row per sample), one-hot labels `Y : n x z`, and
//! seen-class signatures `S : z x a` (row per class), the trainer solves
//!
//! ```text
//! W = (Xᵀ X + γ I_d)⁻¹ · Xᵀ Y S · (Sᵀ S + λ I_a)⁻¹      (W : d x a)
//! ```
//!
//! which minimizes `‖X W Sᵀ − Y‖_F² + γ‖W Sᵀ‖-style` ridge objectives in one
//! pair of SPD solves — no iterative optimization. A plain ridge regression
//! onto per-sample attribute targets is provided as a fallback for workloads
//! where class-level signatures are noisy.
//!
//! The closed form only ever touches the data through `XᵀX` and `XᵀYS`, so
//! training does not need `X` in memory: [`GramAccumulator`] folds row chunks
//! into those products and is the **single** Gram implementation behind every
//! entry point — the in-memory [`EszslProblem::new`], the raw chunk-iterator
//! [`EszslProblem::from_stream`], and the generic
//! [`EszslProblem::from_source`] / [`EszslTrainer::fit`] over any
//! [`crate::source::FeatureSource`] — all **bit-identical** for every source
//! kind and chunk size.

use crate::error::ZslError;
use crate::linalg::{solve_spd, LinalgError, Matrix};
use crate::source::{FeatureSource, SplitKind};
use std::borrow::Cow;

/// Errors from model training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Feature matrix, label list, or signature matrix shapes disagree.
    Shape(String),
    /// A label referred to a class with no signature row.
    LabelOutOfRange { label: usize, num_classes: usize },
    /// A regularizer was zero, negative, or non-finite.
    InvalidConfig(String),
    /// The regularized Gram matrix could not be factored; increase the
    /// regularizer.
    Solver(LinalgError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Shape(msg) => write!(f, "shape error: {msg}"),
            TrainError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            TrainError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            TrainError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for TrainError {
    fn from(e: LinalgError) -> Self {
        TrainError::Solver(e)
    }
}

/// A trained linear feature→attribute projection `W : d x a`.
///
/// Both trainers produce this; the classifier in [`crate::infer`] consumes it.
#[derive(Clone, Debug)]
pub struct ProjectionModel {
    w: Matrix,
}

impl ProjectionModel {
    /// Wrap an externally computed projection.
    pub fn from_weights(w: Matrix) -> Self {
        ProjectionModel { w }
    }

    /// The projection matrix `W : feature_dim x attr_dim`.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Unwrap into the projection matrix, avoiding a copy.
    pub fn into_weights(self) -> Matrix {
        self.w
    }

    /// Project a batch of features (`n x d`) into attribute space (`n x a`).
    pub fn project(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.w)
    }

    /// Multi-threaded [`ProjectionModel::project`]: row-banded across
    /// `threads` workers, bit-identical to the serial path for every thread
    /// count. The batch scorer ([`crate::infer::ScoringEngine`]) projects
    /// through this so one weight matrix serves all worker threads without
    /// copies.
    pub fn project_parallel(&self, x: &Matrix, threads: usize) -> Matrix {
        x.matmul_parallel(&self.w, threads)
    }
}

/// Builder-style configuration for [`EszslTrainer`].
#[derive(Clone, Debug)]
pub struct EszslConfig {
    /// Feature-space regularizer γ added to `Xᵀ X`.
    pub gamma: f64,
    /// Attribute-space regularizer λ added to `Sᵀ S`.
    pub lambda: f64,
    /// L2-normalize feature rows before training.
    pub normalize_features: bool,
    /// L2-normalize signature rows before training.
    pub normalize_signatures: bool,
}

impl Default for EszslConfig {
    fn default() -> Self {
        EszslConfig {
            gamma: 1.0,
            lambda: 1.0,
            normalize_features: false,
            normalize_signatures: false,
        }
    }
}

impl EszslConfig {
    /// Start from the defaults (γ = λ = 1, no normalization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the feature-space regularizer γ. Must be positive to keep
    /// `Xᵀ X + γI` positive-definite; enforced at train time
    /// ([`TrainError::InvalidConfig`]).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Set the attribute-space regularizer λ. Must be positive to keep
    /// `Sᵀ S + λI` positive-definite; enforced at train time
    /// ([`TrainError::InvalidConfig`]).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Toggle L2 normalization of feature rows.
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.normalize_features = on;
        self
    }

    /// Toggle L2 normalization of signature rows.
    pub fn normalize_signatures(mut self, on: bool) -> Self {
        self.normalize_signatures = on;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> EszslTrainer {
        EszslTrainer { config: self }
    }
}

/// Streaming Gram accumulator: folds `(features, labels)` chunks into the
/// `XᵀX` and `XᵀYS` products the ESZSL closed form needs, so a model can be
/// trained from a dataset that never exists in memory at once.
///
/// Peak memory is `O(d² + d·a + chunk)` — independent of the number of
/// samples. Because [`crate::linalg::Matrix::add_transposed_product`] adds
/// into each Gram element in ascending sample order, folding consecutive row
/// chunks performs the *identical* floating-point operation sequence as
/// [`EszslProblem::with_normalization`] on the concatenated matrix: the
/// finished problem (and every model solved from it) is **bit-identical** to
/// the in-memory path for every chunk size. The differential suite in
/// `tests/streaming_equiv.rs` and a golden digest in
/// `tests/golden_loader.rs` pin this.
///
/// ```
/// use zsl_core::data::SyntheticConfig;
/// use zsl_core::model::{EszslProblem, GramAccumulator};
///
/// let ds = SyntheticConfig::new().seed(3).build();
/// let mut acc = GramAccumulator::new(&ds.seen_signatures);
/// // Feed the training set in arbitrary-size row chunks...
/// for start in (0..ds.train_x.rows()).step_by(7) {
///     let end = (start + 7).min(ds.train_x.rows());
///     acc.fold(&ds.train_x.row_block(start..end), &ds.train_labels[start..end])
///         .unwrap();
/// }
/// let streamed = acc.finish().unwrap();
/// let in_memory =
///     EszslProblem::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures).unwrap();
/// assert_eq!(streamed.xtx().as_slice(), in_memory.xtx().as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct GramAccumulator {
    /// Prepared (optionally L2-normalized) seen-class signature bank, held by
    /// the accumulator so every chunk gathers from the same rows.
    signatures: Matrix,
    normalize_features: bool,
    /// Lazily sized on the first non-empty chunk, so streams whose feature
    /// dimension is only discovered at read time (CSV) work too.
    xtx: Option<Matrix>,
    xtys: Option<Matrix>,
    /// Per-class row counts, folded alongside the Grams. Integer counting is
    /// order-independent, so these are chunk-size-invariant for free; the SAE
    /// trainer turns them into `(YS)ᵀ(YS) = Sᵀ diag(counts) S` without a
    /// second data pass.
    class_counts: Vec<f64>,
    rows: usize,
}

impl GramAccumulator {
    /// Accumulator over raw (unnormalized) inputs.
    pub fn new(signatures: &Matrix) -> Self {
        Self::with_normalization(signatures, false, false)
    }

    /// Accumulator with optional L2 row normalization of features (applied
    /// per chunk — row normalization is row-local, so this matches
    /// normalizing the whole matrix) and/or signatures (applied once, here).
    pub fn with_normalization(
        signatures: &Matrix,
        normalize_features: bool,
        normalize_signatures: bool,
    ) -> Self {
        let mut signatures = signatures.clone();
        if normalize_signatures {
            signatures.l2_normalize_rows();
        }
        let class_counts = vec![0.0; signatures.rows()];
        GramAccumulator {
            signatures,
            normalize_features,
            xtx: None,
            xtys: None,
            class_counts,
            rows: 0,
        }
    }

    /// Samples folded so far.
    pub fn rows_folded(&self) -> usize {
        self.rows
    }

    /// Feature dimension, once the first non-empty chunk fixed it.
    pub fn feature_dim(&self) -> Option<usize> {
        self.xtx.as_ref().map(Matrix::rows)
    }

    /// Attribute dimension of the signature bank.
    pub fn attr_dim(&self) -> usize {
        self.signatures.cols()
    }

    /// The prepared (possibly L2-normalized) signature bank every chunk
    /// gathers from.
    pub fn signatures(&self) -> &Matrix {
        &self.signatures
    }

    /// Per-class row counts folded so far (length = signature rows). `f64`
    /// because consumers use them as diagonal weights — e.g. the SAE trainer's
    /// `Sᵀ diag(counts) S` Gram.
    pub fn class_counts(&self) -> &[f64] {
        &self.class_counts
    }

    /// Fold one chunk of training rows and their labels (indices into the
    /// signature bank's rows) into the accumulators.
    ///
    /// Validation happens *before* any accumulation, so a rejected chunk
    /// never leaves a partially folded state behind.
    pub fn fold(&mut self, x: &Matrix, labels: &[usize]) -> Result<(), TrainError> {
        if x.rows() != labels.len() {
            return Err(TrainError::Shape(format!(
                "{} feature rows but {} labels",
                x.rows(),
                labels.len()
            )));
        }
        let z = self.signatures.rows();
        if let Some(&bad) = labels.iter().find(|&&l| l >= z) {
            return Err(TrainError::LabelOutOfRange {
                label: bad,
                num_classes: z,
            });
        }
        if let Some(xtx) = &self.xtx {
            if x.cols() != xtx.rows() {
                return Err(TrainError::Shape(format!(
                    "chunk has {} feature columns but earlier chunks had {}",
                    x.cols(),
                    xtx.rows()
                )));
            }
        }
        if x.rows() == 0 {
            return Ok(());
        }
        let (xtx, xtys) = match (&mut self.xtx, &mut self.xtys) {
            (Some(xtx), Some(xtys)) => (xtx, xtys),
            _ => {
                self.xtx = Some(Matrix::zeros(x.cols(), x.cols()));
                self.xtys = Some(Matrix::zeros(x.cols(), self.signatures.cols()));
                (
                    self.xtx.as_mut().expect("just set"),
                    self.xtys.as_mut().expect("just set"),
                )
            }
        };

        let x = if self.normalize_features {
            let mut x = x.clone();
            x.l2_normalize_rows();
            Cow::Owned(x)
        } else {
            Cow::Borrowed(x)
        };
        let ys = gather_signatures(labels, &self.signatures);
        xtx.add_transposed_product(&x, &x);
        xtys.add_transposed_product(&x, &ys);
        for &label in labels {
            self.class_counts[label] += 1.0;
        }
        self.rows += x.rows();
        Ok(())
    }

    /// Finish the fold: compute `SᵀS` and hand back a regular
    /// [`EszslProblem`], ready to [`EszslProblem::solve`] for any `(γ, λ)`.
    /// An accumulator that never saw a sample is an error, matching the
    /// in-memory trainer's empty-training-set rejection.
    pub fn finish(self) -> Result<EszslProblem, TrainError> {
        let (Some(xtx), Some(xtys)) = (self.xtx, self.xtys) else {
            return Err(TrainError::Shape("empty training set".into()));
        };
        let sts = self.signatures.transpose().matmul(&self.signatures);
        Ok(EszslProblem { xtx, xtys, sts })
    }
}

/// Closed-form ESZSL-style trainer. See the module docs for the formulation.
#[derive(Clone, Debug, Default)]
pub struct EszslTrainer {
    config: EszslConfig,
}

impl EszslTrainer {
    /// Trainer with an explicit configuration.
    pub fn new(config: EszslConfig) -> Self {
        EszslTrainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EszslConfig {
        &self.config
    }

    /// Train on features `x : n x d`, labels (indices into `signatures`
    /// rows), and seen-class signatures `signatures : z x a`.
    pub fn train(
        &self,
        x: &Matrix,
        labels: &[usize],
        signatures: &Matrix,
    ) -> Result<ProjectionModel, TrainError> {
        validate_regularizer("gamma", self.config.gamma)?;
        validate_regularizer("lambda", self.config.lambda)?;
        EszslProblem::with_normalization(
            x,
            labels,
            signatures,
            self.config.normalize_features,
            self.config.normalize_signatures,
        )?
        .solve(self.config.gamma, self.config.lambda)
    }

    /// The ONE generic training entry point: fit on the trainval split of any
    /// [`FeatureSource`] — a materialized [`crate::data::Dataset`], a disk
    /// [`crate::data::StreamingBundle`], or a bare
    /// [`crate::source::MemorySource`] — with this trainer's configuration.
    ///
    /// Every source flows through the same [`GramAccumulator`] fold, so the
    /// trained weights are **bit-identical** across sources and chunk sizes.
    pub fn fit<S: FeatureSource + ?Sized>(&self, source: &S) -> Result<ProjectionModel, ZslError> {
        validate_regularizer("gamma", self.config.gamma)?;
        validate_regularizer("lambda", self.config.lambda)?;
        let problem = EszslProblem::from_source_with_normalization(
            source,
            self.config.normalize_features,
            self.config.normalize_signatures,
        )?;
        Ok(problem.solve(self.config.gamma, self.config.lambda)?)
    }
}

/// Precomputed Gram matrices of one ESZSL training problem, independent of
/// the regularizers.
///
/// The closed form factors as `W = (XᵀX + γI)⁻¹ · XᵀYS · (SᵀS + λI)⁻¹`:
/// everything except the two `+ γI` / `+ λI` shifts depends only on the data.
/// Building the problem once and calling [`EszslProblem::solve`] per
/// `(γ, λ)` pair turns a hyperparameter grid search (e.g. the k-fold
/// cross-validation in [`crate::eval`]) from `O(grid · n·d²)` into
/// `O(n·d² + grid · d³)` — the expensive `XᵀX` / `XᵀYS` products are paid
/// once per fold, not once per grid point.
///
/// `solve` performs the identical floating-point operation sequence as
/// [`EszslTrainer::train`], so results are bit-identical to the one-shot
/// path (the golden tests pin this).
#[derive(Clone, Debug)]
pub struct EszslProblem {
    /// `Xᵀ X : d x d`, unshifted.
    xtx: Matrix,
    /// `Xᵀ Y S : d x a`.
    xtys: Matrix,
    /// `Sᵀ S : a x a`, unshifted.
    sts: Matrix,
}

impl EszslProblem {
    /// Precompute the Gram matrices from raw (unnormalized) inputs.
    pub fn new(x: &Matrix, labels: &[usize], signatures: &Matrix) -> Result<Self, TrainError> {
        Self::with_normalization(x, labels, signatures, false, false)
    }

    /// Precompute with optional L2 row normalization of features and/or
    /// signatures (matching the [`EszslConfig`] toggles).
    ///
    /// Since PR 5 this is a one-chunk fold through [`GramAccumulator`] — the
    /// single Gram implementation every source kind shares. The accumulator
    /// adds into each Gram element in the identical ascending-row order as
    /// the one-shot `XᵀX` gemm this used to run, so results are bit-for-bit
    /// unchanged (the golden suites pin this).
    pub fn with_normalization(
        x: &Matrix,
        labels: &[usize],
        signatures: &Matrix,
        normalize_features: bool,
        normalize_signatures: bool,
    ) -> Result<Self, TrainError> {
        let mut acc = GramAccumulator::with_normalization(
            signatures,
            normalize_features,
            normalize_signatures,
        );
        acc.fold(x, labels)?;
        acc.finish()
    }

    /// The ONE generic problem constructor: fold the trainval split of any
    /// [`FeatureSource`] into the Gram matrices, chunk by chunk. In-memory
    /// sources lend one borrowed chunk (no copy); streamed sources never
    /// materialize their features. Bit-identical across sources and chunk
    /// sizes.
    pub fn from_source<S: FeatureSource + ?Sized>(source: &S) -> Result<Self, ZslError> {
        Self::from_source_with_normalization(source, false, false)
    }

    /// [`EszslProblem::from_source`] with the [`EszslConfig`] normalization
    /// toggles.
    pub fn from_source_with_normalization<S: FeatureSource + ?Sized>(
        source: &S,
        normalize_features: bool,
        normalize_signatures: bool,
    ) -> Result<Self, ZslError> {
        let signatures = source.seen_signatures();
        let mut acc = GramAccumulator::with_normalization(
            &signatures,
            normalize_features,
            normalize_signatures,
        );
        for chunk in source.stream(SplitKind::Trainval)? {
            let (x, labels) = chunk?;
            acc.fold(&x, &labels)?;
        }
        Ok(acc.finish()?)
    }

    /// Build the problem by folding a stream of `(features, labels)` chunks
    /// through a [`GramAccumulator`] — the full feature matrix never exists
    /// in memory, and the result is bit-identical to [`EszslProblem::new`] on
    /// the concatenated rows for every chunk size.
    pub fn from_stream<I, E>(chunks: I, signatures: &Matrix) -> Result<Self, E>
    where
        I: IntoIterator<Item = Result<(Matrix, Vec<usize>), E>>,
        E: From<TrainError>,
    {
        Self::from_stream_with_normalization(chunks, signatures, false, false)
    }

    /// [`EszslProblem::from_stream`] with the [`EszslConfig`] normalization
    /// toggles (matching [`EszslProblem::with_normalization`]).
    pub fn from_stream_with_normalization<I, E>(
        chunks: I,
        signatures: &Matrix,
        normalize_features: bool,
        normalize_signatures: bool,
    ) -> Result<Self, E>
    where
        I: IntoIterator<Item = Result<(Matrix, Vec<usize>), E>>,
        E: From<TrainError>,
    {
        let mut acc = GramAccumulator::with_normalization(
            signatures,
            normalize_features,
            normalize_signatures,
        );
        for chunk in chunks {
            let (x, labels) = chunk?;
            acc.fold(&x, &labels)?;
        }
        Ok(acc.finish()?)
    }

    /// Feature dimension `d` of the problem.
    pub fn feature_dim(&self) -> usize {
        self.xtx.rows()
    }

    /// The accumulated `Xᵀ X : d x d` (unshifted).
    pub fn xtx(&self) -> &Matrix {
        &self.xtx
    }

    /// The accumulated `Xᵀ Y S : d x a`.
    pub fn xtys(&self) -> &Matrix {
        &self.xtys
    }

    /// The signature Gram `Sᵀ S : a x a` (unshifted).
    pub fn sts(&self) -> &Matrix {
        &self.sts
    }

    /// Attribute dimension `a` of the problem.
    pub fn attr_dim(&self) -> usize {
        self.sts.rows()
    }

    /// Solve the closed form for one `(γ, λ)` pair.
    pub fn solve(&self, gamma: f64, lambda: f64) -> Result<ProjectionModel, TrainError> {
        validate_regularizer("gamma", gamma)?;
        validate_regularizer("lambda", lambda)?;

        // Left SPD system: (Xᵀ X + γI) M = Xᵀ (Y S).
        let mut xtx = self.xtx.clone();
        xtx.add_scaled_identity(gamma);
        let m = solve_spd(&xtx, &self.xtys)?;

        // Right SPD system: W (Sᵀ S + λI) = M  ⇔  (Sᵀ S + λI) Wᵀ = Mᵀ.
        let mut sts = self.sts.clone();
        sts.add_scaled_identity(lambda);
        let wt = solve_spd(&sts, &m.transpose())?;

        Ok(ProjectionModel::from_weights(wt.transpose()))
    }
}

/// Builder-style configuration for [`RidgeTrainer`].
#[derive(Clone, Debug)]
pub struct RidgeConfig {
    /// Ridge regularizer added to `Xᵀ X`.
    pub gamma: f64,
    /// L2-normalize feature rows before training.
    pub normalize_features: bool,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        RidgeConfig {
            gamma: 1.0,
            normalize_features: false,
        }
    }
}

impl RidgeConfig {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the ridge regularizer. Must be positive; enforced at train time
    /// ([`TrainError::InvalidConfig`]).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Toggle L2 normalization of feature rows.
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.normalize_features = on;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> RidgeTrainer {
        RidgeTrainer { config: self }
    }
}

/// Ridge-regression fallback: regress each sample's feature vector directly
/// onto its class signature, `W = (Xᵀ X + γI)⁻¹ Xᵀ A` where row `i` of `A` is
/// the signature of sample `i`'s class.
///
/// Simpler than ESZSL (no attribute-space regularizer) and useful when
/// class-level structure is weak; produces the same [`ProjectionModel`].
#[derive(Clone, Debug, Default)]
pub struct RidgeTrainer {
    config: RidgeConfig,
}

impl RidgeTrainer {
    /// Trainer with an explicit configuration.
    pub fn new(config: RidgeConfig) -> Self {
        RidgeTrainer { config }
    }

    /// Train on the same inputs as [`EszslTrainer::train`].
    pub fn train(
        &self,
        x: &Matrix,
        labels: &[usize],
        signatures: &Matrix,
    ) -> Result<ProjectionModel, TrainError> {
        validate_regularizer("gamma", self.config.gamma)?;
        let (x, s) = prepare_inputs(x, labels, signatures, self.config.normalize_features, false)?;

        // Per-sample attribute targets A : n x a.
        let targets = gather_signatures(labels, &s);

        let xt = x.transpose();
        let mut xtx = xt.matmul(&x);
        xtx.add_scaled_identity(self.config.gamma);
        let w = solve_spd(&xtx, &xt.matmul(&targets))?;
        Ok(ProjectionModel::from_weights(w))
    }
}

/// Regularizers must be strictly positive (and finite) to keep the shifted
/// Gram matrices positive-definite; zero or negative values would silently
/// train an un- or anti-regularized model.
pub(crate) fn validate_regularizer(name: &str, value: f64) -> Result<(), TrainError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(TrainError::InvalidConfig(format!(
            "{name} must be a positive finite number, got {value}"
        )));
    }
    Ok(())
}

/// `Y S` for one-hot `Y` as a row gather: row `i` of the result is the
/// signature of sample `i`'s class.
fn gather_signatures(labels: &[usize], signatures: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), signatures.cols());
    for (i, &label) in labels.iter().enumerate() {
        out.row_mut(i).copy_from_slice(signatures.row(label));
    }
    out
}

/// Validate shapes/labels and apply the requested normalizations. Inputs are
/// only copied when a normalization actually rewrites them.
fn prepare_inputs<'a>(
    x: &'a Matrix,
    labels: &[usize],
    signatures: &'a Matrix,
    normalize_features: bool,
    normalize_signatures: bool,
) -> Result<(Cow<'a, Matrix>, Cow<'a, Matrix>), TrainError> {
    if x.rows() != labels.len() {
        return Err(TrainError::Shape(format!(
            "{} feature rows but {} labels",
            x.rows(),
            labels.len()
        )));
    }
    if x.rows() == 0 {
        return Err(TrainError::Shape("empty training set".into()));
    }
    let z = signatures.rows();
    if let Some(&bad) = labels.iter().find(|&&l| l >= z) {
        return Err(TrainError::LabelOutOfRange {
            label: bad,
            num_classes: z,
        });
    }
    let x = if normalize_features {
        let mut x = x.clone();
        x.l2_normalize_rows();
        Cow::Owned(x)
    } else {
        Cow::Borrowed(x)
    };
    let s = if normalize_signatures {
        let mut s = signatures.clone();
        s.l2_normalize_rows();
        Cow::Owned(s)
    } else {
        Cow::Borrowed(signatures)
    };
    Ok((x, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;

    #[test]
    fn increasing_gamma_monotonically_shrinks_w() {
        let ds = SyntheticConfig::new().seed(11).build();
        let mut prev_norm = f64::INFINITY;
        for gamma in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let model = EszslConfig::new()
                .gamma(gamma)
                .lambda(0.1)
                .build()
                .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
                .expect("train");
            let norm = model.weights().frobenius_norm();
            assert!(
                norm < prev_norm,
                "‖W‖_F did not shrink: gamma={gamma} norm={norm} prev={prev_norm}"
            );
            prev_norm = norm;
        }
    }

    #[test]
    fn trainer_rejects_nonpositive_regularizers() {
        let ds = SyntheticConfig::new().classes(3, 1).build();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let result = EszslConfig::new().gamma(bad).build().train(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
            );
            assert!(
                matches!(result, Err(TrainError::InvalidConfig(_))),
                "gamma={bad} accepted"
            );
        }
        let result = EszslConfig::new().lambda(-0.5).build().train(
            &ds.train_x,
            &ds.train_labels,
            &ds.seen_signatures,
        );
        assert!(matches!(result, Err(TrainError::InvalidConfig(_))));
        let result = RidgeConfig::new().gamma(0.0).build().train(
            &ds.train_x,
            &ds.train_labels,
            &ds.seen_signatures,
        );
        assert!(matches!(result, Err(TrainError::InvalidConfig(_))));
    }

    #[test]
    fn trainer_rejects_bad_labels_and_shapes() {
        let ds = SyntheticConfig::new().classes(3, 1).build();
        let trainer = EszslConfig::new().build();

        let mut bad_labels = ds.train_labels.clone();
        bad_labels[0] = 99;
        assert!(matches!(
            trainer.train(&ds.train_x, &bad_labels, &ds.seen_signatures),
            Err(TrainError::LabelOutOfRange { label: 99, .. })
        ));

        let short_labels = &ds.train_labels[..5];
        assert!(matches!(
            trainer.train(&ds.train_x, short_labels, &ds.seen_signatures),
            Err(TrainError::Shape(_))
        ));
    }

    #[test]
    fn eszsl_weights_shape_matches_feature_by_attr() {
        let ds = SyntheticConfig::new().dims(7, 13).build();
        let model = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        assert_eq!(model.weights().rows(), 13);
        assert_eq!(model.weights().cols(), 7);
        let projected = model.project(&ds.test_unseen_x);
        assert_eq!(projected.rows(), ds.test_unseen_x.rows());
        assert_eq!(projected.cols(), 7);
    }

    #[test]
    fn ridge_fallback_trains_and_projects() {
        let ds = SyntheticConfig::new().seed(77).build();
        let model = RidgeConfig::new()
            .gamma(0.1)
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .expect("train");
        assert_eq!(model.weights().rows(), ds.train_x.cols());
        assert_eq!(model.weights().cols(), ds.seen_signatures.cols());
    }

    #[test]
    fn eszsl_problem_reuse_matches_one_shot_training_bit_for_bit() {
        let ds = SyntheticConfig::new().seed(21).build();
        let problem =
            EszslProblem::new(&ds.train_x, &ds.train_labels, &ds.seen_signatures).expect("gram");
        assert_eq!(problem.feature_dim(), ds.train_x.cols());
        assert_eq!(problem.attr_dim(), ds.seen_signatures.cols());
        for (gamma, lambda) in [(0.1, 0.1), (1.0, 10.0), (100.0, 0.01)] {
            let reused = problem.solve(gamma, lambda).expect("solve");
            let one_shot = EszslConfig::new()
                .gamma(gamma)
                .lambda(lambda)
                .build()
                .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
                .expect("train");
            assert_eq!(
                reused.weights().as_slice(),
                one_shot.weights().as_slice(),
                "gamma={gamma} lambda={lambda}"
            );
        }
        assert!(matches!(
            problem.solve(0.0, 1.0),
            Err(TrainError::InvalidConfig(_))
        ));
    }

    #[test]
    fn gram_accumulator_matches_in_memory_problem_bit_for_bit() {
        let ds = SyntheticConfig::new().seed(42).build();
        let n = ds.train_x.rows();
        for (nf, ns) in [(false, false), (true, false), (false, true), (true, true)] {
            let reference = EszslProblem::with_normalization(
                &ds.train_x,
                &ds.train_labels,
                &ds.seen_signatures,
                nf,
                ns,
            )
            .expect("in-memory problem");
            for chunk in [1usize, 5, n, n + 9] {
                let mut acc = GramAccumulator::with_normalization(&ds.seen_signatures, nf, ns);
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    acc.fold(
                        &ds.train_x.row_block(start..end),
                        &ds.train_labels[start..end],
                    )
                    .expect("fold");
                    start = end;
                }
                assert_eq!(acc.rows_folded(), n);
                assert_eq!(acc.feature_dim(), Some(ds.train_x.cols()));
                let streamed = acc.finish().expect("finish");
                let label = format!("chunk={chunk} nf={nf} ns={ns}");
                assert_eq!(
                    streamed.xtx().as_slice(),
                    reference.xtx().as_slice(),
                    "{label}"
                );
                assert_eq!(
                    streamed.xtys().as_slice(),
                    reference.xtys().as_slice(),
                    "{label}"
                );
                assert_eq!(
                    streamed.sts().as_slice(),
                    reference.sts().as_slice(),
                    "{label}"
                );
                // Solved weights are therefore bit-identical too.
                let w_stream = streamed.solve(0.5, 2.0).expect("solve");
                let w_mem = reference.solve(0.5, 2.0).expect("solve");
                assert_eq!(
                    w_stream.weights().as_slice(),
                    w_mem.weights().as_slice(),
                    "{label}"
                );
            }
        }
    }

    #[test]
    fn gram_accumulator_validates_chunks_and_rejects_empty_finish() {
        let ds = SyntheticConfig::new().classes(5, 1).build();
        let mut acc = GramAccumulator::new(&ds.seen_signatures);
        // Empty accumulator cannot finish — same semantics as training on an
        // empty matrix.
        assert!(matches!(
            GramAccumulator::new(&ds.seen_signatures).finish(),
            Err(TrainError::Shape(_))
        ));
        // Label/length mismatches are rejected *before* any folding.
        assert!(matches!(
            acc.fold(&ds.train_x, &ds.train_labels[..3]),
            Err(TrainError::Shape(_))
        ));
        let bad_labels = vec![99; ds.train_x.rows()];
        assert!(matches!(
            acc.fold(&ds.train_x, &bad_labels),
            Err(TrainError::LabelOutOfRange { label: 99, .. })
        ));
        assert_eq!(acc.rows_folded(), 0, "failed folds must not accumulate");
        // A width change mid-stream is a shape error.
        acc.fold(&ds.train_x, &ds.train_labels).expect("fold");
        let narrow = Matrix::zeros(2, ds.train_x.cols() + 1);
        assert!(matches!(
            acc.fold(&narrow, &[0, 0]),
            Err(TrainError::Shape(_))
        ));
        // Zero-row chunks are a validated no-op.
        acc.fold(&Matrix::zeros(0, ds.train_x.cols()), &[])
            .expect("empty fold");
        assert_eq!(acc.rows_folded(), ds.train_x.rows());
    }

    #[test]
    fn fit_on_a_dataset_source_matches_raw_train_bit_for_bit() {
        let ds = SyntheticConfig::new().seed(31).build();
        for (nf, ns) in [(false, false), (true, true)] {
            let trainer = EszslConfig::new()
                .gamma(0.7)
                .lambda(1.3)
                .normalize_features(nf)
                .normalize_signatures(ns)
                .build();
            let direct = trainer
                .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
                .expect("train");
            let fitted = trainer.fit(&ds).expect("fit");
            assert_eq!(
                fitted.weights().as_slice(),
                direct.weights().as_slice(),
                "nf={nf} ns={ns}"
            );
        }
        // Bad regularizers surface as the same typed error through fit.
        let bad = EszslConfig::new().gamma(-1.0).build();
        assert!(matches!(
            bad.fit(&ds),
            Err(ZslError::Train(TrainError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn normalization_toggles_change_the_solution() {
        let ds = SyntheticConfig::new().seed(5).build();
        let plain = EszslConfig::new()
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .unwrap();
        let normalized = EszslConfig::new()
            .normalize_features(true)
            .normalize_signatures(true)
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .unwrap();
        assert!(plain.weights().max_abs_diff(normalized.weights()) > 1e-6);
    }
}
