//! Persistable model artifacts: the versioned `.zsm` format behind
//! [`ScoringEngine::save`] / [`ScoringEngine::load`].
//!
//! A served deployment should boot from a small, cheap-to-load artifact —
//! not re-solve the closed form against the training set. A `.zsm` file
//! captures everything a [`ScoringEngine`] needs at serving time:
//!
//! | offset | size  | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `"ZSMF"` |
//! | 4      | 2     | version (= 2; version-1 files still load) |
//! | 6      | 2     | flags (bit 0: bank stored pre-normalized; bit 1: score in f32 — v2 only) |
//! | 8      | 1     | similarity (0 = cosine, 1 = dot) |
//! | 9      | 1     | model family (0 = eszsl, 1 = sae, 2 = kernel-eszsl; must be 0 in v1 files, where this byte was reserved) |
//! | 10     | 6     | reserved (= 0) |
//! | 16     | 8     | `feature_dim` d (u64) |
//! | 24     | 8     | `attr_dim` a (u64) |
//! | 32     | 8     | `class_count` z (u64) |
//! | 40     | 8     | provenance metadata byte length m (u64) |
//! | 48     | m     | provenance metadata, UTF-8 |
//! | 48+m   | …     | per-family model payload (below) |
//! | …      | 8·z·a | signature bank, row-major f64, exactly as cached |
//!
//! Per-family model payload:
//!
//! - **eszsl / sae** (linear families): the projection `W : d x a`,
//!   row-major f64 — byte-compatible with the whole v1 payload.
//! - **kernel-eszsl**: a 24-byte kernel block — kernel code (u8; 0 = linear,
//!   1 = rbf), 7 reserved zero bytes, RBF width (f64; 0 for linear), anchor
//!   count `k` (u64) — then dual weights `alpha : k x a` and anchors
//!   `k x d`, row-major f64. This is everything kernel scoring needs: the
//!   daemon boots from the artifact alone.
//!
//! All integers and floats are little-endian. The signature bank is written
//! **exactly as the engine caches it** — already L2-normalized for cosine
//! engines (flags bit 0) — and the loader rebuilds the engine without
//! re-normalizing, so a save/load round trip reproduces scores and
//! predictions **bit-for-bit** (re-normalizing an already-normalized bank
//! would divide by norms of ≈1.0 and perturb the cached bits).
//!
//! Writers always emit the current version; the reader accepts 1 and 2. A
//! v1 file parses exactly as it always did (its reserved family byte is
//! zero, so it loads as ESZSL); a v2 file whose version field is rewritten
//! to 1 fails the v1 reserved-byte check with a typed header error unless it
//! really is a plain ESZSL projection.
//!
//! Errors follow the `.zsb` loader's discipline: typed [`DataError`]s for
//! I/O failures, truncation, bad magic, version skew, unknown flags,
//! overflowing dimensions, non-finite payloads, and — because a loaded
//! cosine bank is trusted verbatim forever — bank rows whose L2 norm is not
//! 1 within [`ZSM_NORM_TOLERANCE`] — never a panic on untrusted bytes. `tests/model_artifacts.rs` covers the error paths and a
//! committed golden artifact; `tests/streaming_equiv.rs` checks that a
//! reloaded engine reproduces the golden fixture's `GzslReport` bits.

use crate::data::DataError;
use crate::error::ZslError;
use crate::infer::{ScoringEngine, Similarity};
use crate::linalg::Matrix;
use crate::model::ProjectionModel;
use crate::trainer::{KernelKind, KernelModel, ModelFamily, TrainedModel};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every `.zsm` model artifact.
pub const ZSM_MAGIC: [u8; 4] = *b"ZSMF";
/// Current `.zsm` format version (writers emit this; the reader also still
/// accepts version 1, whose files load as ESZSL).
pub const ZSM_VERSION: u16 = 2;
/// Oldest `.zsm` format version the reader accepts.
pub const ZSM_MIN_VERSION: u16 = 1;
/// Size of the kernel-family payload prelude: kernel code (1), reserved (7),
/// RBF width (8), anchor count (8).
const ZSM_KERNEL_BLOCK_LEN: usize = 24;
/// Fixed `.zsm` header length in bytes (the metadata block follows it).
pub const ZSM_HEADER_LEN: u64 = 48;
/// How far a pre-normalized (cosine) bank row's L2 norm may drift from 1
/// before the loader rejects the artifact as corrupt. Banks normalized in
/// f64 land within ~1e-15 of 1, so this is generous for rounding and tight
/// against real corruption (an all-zero or rescaled row).
pub const ZSM_NORM_TOLERANCE: f64 = 1e-6;

/// Process-wide counter making concurrent temp-file names unique; see
/// [`ScoringEngine::save_with_metadata`].
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Flags bit 0: the signature bank bytes are already L2-normalized (set iff
/// the similarity is cosine).
const FLAG_BANK_PRENORMALIZED: u16 = 1 << 0;

/// Flags bit 1 (v2 only): the engine scores in single precision. The payload
/// stays full f64 — training precision is never reduced on disk — and the
/// loader rebuilds the f32 mirror from it, so flipping the flag is always
/// lossless and reversible.
const FLAG_SCORE_F32: u16 = 1 << 1;

impl ScoringEngine {
    /// Persist this engine as a `.zsm` artifact with empty provenance
    /// metadata. See [`ScoringEngine::save_with_metadata`].
    pub fn save(&self, path: &Path) -> Result<(), ZslError> {
        self.save_with_metadata(path, "")
    }

    /// Persist this engine as a versioned `.zsm` artifact: projection `W`,
    /// cached signature bank, similarity, normalization flag, and a
    /// free-form UTF-8 provenance string (hyperparameters, source dataset,
    /// …) that [`ScoringEngine::load_with_metadata`] returns verbatim.
    ///
    /// The write is atomic: bytes land in a temporary file beside the target
    /// and are renamed over it, so a crash mid-save never leaves a truncated
    /// artifact where a serving process expects a bootable model, and a
    /// reader racing a re-save sees either the old file or the new one —
    /// never a partial write.
    ///
    /// Reloading reproduces predictions bit-for-bit; the worker-thread count
    /// is a runtime property and is not stored.
    pub fn save_with_metadata(&self, path: &Path, metadata: &str) -> Result<(), ZslError> {
        let model = self.model();
        let bank = self.signatures();
        // A cosine engine's cached bank must be unit-norm row by row — the
        // loader enforces exactly that (nothing downstream ever re-normalizes
        // a loaded bank), so refuse to write an artifact we would refuse to
        // read. The only way to get here is a degenerate all-zero signature
        // row, which `l2_normalize_rows` leaves at zero.
        if self.similarity() == Similarity::Cosine {
            if let Some(r) = first_non_unit_row(bank) {
                return Err(ZslError::Config(format!(
                    "cannot persist cosine engine: cached signature bank row {r} has L2 norm \
                     {:.6e}, not 1 (an all-zero signature row cannot be cosine-scored and would \
                     be rejected at load)",
                    row_norm(bank, r)
                )));
            }
        }
        let d = model.feature_dim();
        let a = model.attr_dim();
        let z = bank.rows();
        let mut bytes =
            Vec::with_capacity(ZSM_HEADER_LEN as usize + metadata.len() + 8 * (d * a + z * a));
        bytes.extend_from_slice(&ZSM_MAGIC);
        bytes.extend_from_slice(&ZSM_VERSION.to_le_bytes());
        let mut flags = if self.similarity() == Similarity::Cosine {
            FLAG_BANK_PRENORMALIZED
        } else {
            0
        };
        if self.precision() == crate::infer::ScoringPrecision::F32 {
            flags |= FLAG_SCORE_F32;
        }
        bytes.extend_from_slice(&flags.to_le_bytes());
        bytes.push(match self.similarity() {
            Similarity::Cosine => 0,
            Similarity::Dot => 1,
        });
        bytes.push(model.family().code());
        bytes.extend_from_slice(&[0u8; 6]); // reserved
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
        bytes.extend_from_slice(&(a as u64).to_le_bytes());
        bytes.extend_from_slice(&(z as u64).to_le_bytes());
        bytes.extend_from_slice(&(metadata.len() as u64).to_le_bytes());
        bytes.extend_from_slice(metadata.as_bytes());
        match model {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => {
                for &v in m.weights().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            TrainedModel::Kernel(km) => {
                bytes.push(km.kernel().code());
                bytes.extend_from_slice(&[0u8; 7]); // reserved
                let width = match km.kernel() {
                    KernelKind::Linear => 0.0f64,
                    KernelKind::Rbf { width } => width,
                };
                bytes.extend_from_slice(&width.to_le_bytes());
                bytes.extend_from_slice(&(km.anchors().rows() as u64).to_le_bytes());
                for &v in km.alpha().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                for &v in km.anchors().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        for &v in bank.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Temp file in the same directory (renames across filesystems fail),
        // named after the target plus a pid + process-wide-counter suffix so
        // *no* two concurrent saves share a temp file — not even two saves to
        // the same target path, which is exactly what a hot-swap retrainer
        // does (a deterministic `<target>.tmp` let two such saves interleave
        // writes into one file and rename a corrupt blend into place). The
        // data is fsynced before the rename — without that, delayed
        // allocation can commit the rename before the bytes and a power loss
        // would leave a truncated "new" artifact. Any failure cleans the temp
        // file up rather than leaving partial bytes (e.g. on a full disk)
        // behind.
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(tmp_name);
        let write_synced = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()
        })();
        write_synced.map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            ZslError::Data(DataError::io(&tmp, e))
        })?;
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            ZslError::Data(DataError::io(path, e))
        })
    }

    /// Load a `.zsm` artifact written by [`ScoringEngine::save`], discarding
    /// its provenance metadata. The engine uses one worker thread per
    /// available core, like [`ScoringEngine::new`].
    pub fn load(path: &Path) -> Result<ScoringEngine, ZslError> {
        Ok(Self::load_with_metadata(path)?.0)
    }

    /// Load a `.zsm` artifact plus its provenance metadata string.
    ///
    /// Every header field is validated before any payload is interpreted:
    /// magic, version, flags, similarity byte, reserved bytes, non-zero
    /// dimensions, checked-arithmetic payload size (a crafted header cannot
    /// wrap the length check or abort on allocation), exact file length
    /// (truncation *and* trailing garbage are errors), UTF-8 metadata, and
    /// finite `W`/bank values.
    pub fn load_with_metadata(path: &Path) -> Result<(ScoringEngine, String), ZslError> {
        read_zsm(path).map_err(ZslError::Data)
    }
}

/// Parse and validate a `.zsm` file. Internal: the public surface is
/// [`ScoringEngine::load`] / [`ScoringEngine::load_with_metadata`].
fn read_zsm(path: &Path) -> Result<(ScoringEngine, String), DataError> {
    let bytes = std::fs::read(path).map_err(|e| DataError::io(path, e))?;
    let actual = bytes.len() as u64;
    if actual < ZSM_HEADER_LEN {
        return Err(DataError::Truncated {
            path: path.into(),
            expected: ZSM_HEADER_LEN,
            actual,
        });
    }

    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != ZSM_MAGIC {
        return Err(DataError::header(
            path,
            format!("bad magic {magic:?}, expected {ZSM_MAGIC:?} (\"ZSMF\")"),
        ));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if !(ZSM_MIN_VERSION..=ZSM_VERSION).contains(&version) {
        return Err(DataError::header(
            path,
            format!(
                "unsupported version {version}, this reader handles \
                 {ZSM_MIN_VERSION}-{ZSM_VERSION}"
            ),
        ));
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    // v1 defined only bit 0; the f32-scoring bit arrived with v2, so a v1
    // file carrying it is corrupt rather than merely newer.
    let known_flags = if version == 1 {
        FLAG_BANK_PRENORMALIZED
    } else {
        FLAG_BANK_PRENORMALIZED | FLAG_SCORE_F32
    };
    if flags & !known_flags != 0 {
        return Err(DataError::header(
            path,
            format!(
                "unknown flags 0x{flags:04x}, version {version} defines only \
                 0x{known_flags:04x} (bit 0: pre-normalized bank; bit 1, v2 only: f32 scoring)"
            ),
        ));
    }
    let similarity = match bytes[8] {
        0 => Similarity::Cosine,
        1 => Similarity::Dot,
        other => {
            return Err(DataError::header(
                path,
                format!("unknown similarity code {other}, expected 0 (cosine) or 1 (dot)"),
            ));
        }
    };
    let prenormalized = flags & FLAG_BANK_PRENORMALIZED != 0;
    if prenormalized != (similarity == Similarity::Cosine) {
        return Err(DataError::header(
            path,
            format!(
                "flags claim pre-normalized={prenormalized} but similarity is {similarity}; \
                 cosine engines always store a normalized bank and dot engines never do"
            ),
        ));
    }
    // Byte 9 is the model family in v2; in v1 it was reserved (= 0), which is
    // exactly the ESZSL family code — so a genuine v1 file decodes as ESZSL,
    // and a v2 SAE/kernel file whose version was rewritten to 1 fails the
    // reserved-zero check rather than being misread as a projection.
    let family = if version == 1 {
        if bytes[9..16].iter().any(|&b| b != 0) {
            return Err(DataError::header(
                path,
                "reserved header bytes are non-zero",
            ));
        }
        ModelFamily::Eszsl
    } else {
        let code = bytes[9];
        let Some(family) = ModelFamily::from_code(code) else {
            return Err(DataError::header(
                path,
                format!("unknown model family code {code}, expected 0 (eszsl), 1 (sae), or 2 (kernel-eszsl)"),
            ));
        };
        if bytes[10..16].iter().any(|&b| b != 0) {
            return Err(DataError::header(
                path,
                "reserved header bytes are non-zero",
            ));
        }
        family
    };

    let d = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let a = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let z = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    let meta_len = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes"));
    if d == 0 || a == 0 || z == 0 {
        return Err(DataError::header(
            path,
            format!("zero-sized model: feature_dim={d}, attr_dim={a}, class_count={z}"),
        ));
    }

    // Header fields are untrusted: checked arithmetic keeps crafted dims from
    // wrapping the expected length back into range, and the usize conversions
    // reject payloads unaddressable on this platform.
    let overflow = || {
        DataError::header(
            path,
            format!(
                "header dims overflow: feature_dim={d} x attr_dim={a}, class_count={z}, \
                 metadata_len={meta_len}"
            ),
        )
    };
    let prefix = ZSM_HEADER_LEN.checked_add(meta_len).ok_or_else(overflow)?;
    let bank_bytes = 8u64
        .checked_mul(z)
        .and_then(|b| b.checked_mul(a))
        .ok_or_else(overflow)?;
    // The kernel family stores its anchor count inside the payload, so the
    // expected file length depends on payload bytes — which must themselves
    // be bounds-checked before they are read.
    let (model_bytes, kernel_parts) = match family {
        ModelFamily::Eszsl | ModelFamily::Sae => {
            let w_bytes = 8u64
                .checked_mul(d)
                .and_then(|b| b.checked_mul(a))
                .ok_or_else(overflow)?;
            (w_bytes, None)
        }
        ModelFamily::KernelEszsl => {
            let block_end = prefix
                .checked_add(ZSM_KERNEL_BLOCK_LEN as u64)
                .ok_or_else(overflow)?;
            if actual < block_end {
                return Err(DataError::Truncated {
                    path: path.into(),
                    expected: block_end,
                    actual,
                });
            }
            let p = prefix as usize;
            let code = bytes[p];
            if bytes[p + 1..p + 8].iter().any(|&b| b != 0) {
                return Err(DataError::header(
                    path,
                    "reserved kernel block bytes are non-zero",
                ));
            }
            let width = f64::from_le_bytes(bytes[p + 8..p + 16].try_into().expect("8 bytes"));
            let k = u64::from_le_bytes(bytes[p + 16..p + 24].try_into().expect("8 bytes"));
            let Some(kernel) = KernelKind::from_code(code, width) else {
                return Err(DataError::header(
                    path,
                    format!("unknown kernel code {code}, expected 0 (linear) or 1 (rbf)"),
                ));
            };
            match kernel {
                KernelKind::Linear if width != 0.0 => {
                    return Err(DataError::header(
                        path,
                        format!("linear kernel stores a non-zero width {width}"),
                    ));
                }
                KernelKind::Rbf { width } if !(width.is_finite() && width > 0.0) => {
                    return Err(DataError::header(
                        path,
                        format!("rbf kernel width must be positive and finite, got {width}"),
                    ));
                }
                _ => {}
            }
            if k == 0 {
                return Err(DataError::header(path, "kernel payload has zero anchors"));
            }
            let blob = a
                .checked_add(d)
                .and_then(|cols| 8u64.checked_mul(k)?.checked_mul(cols))
                .and_then(|b| b.checked_add(ZSM_KERNEL_BLOCK_LEN as u64))
                .ok_or_else(overflow)?;
            (blob, Some((kernel, k)))
        }
    };
    let expected = prefix
        .checked_add(model_bytes)
        .and_then(|x| x.checked_add(bank_bytes))
        .ok_or_else(overflow)?;
    let dims = usize::try_from(d)
        .ok()
        .zip(usize::try_from(a).ok())
        .zip(usize::try_from(z).ok())
        .and_then(|((d, a), z)| {
            d.checked_mul(a)?.checked_mul(8)?;
            z.checked_mul(a)?.checked_mul(8)?;
            Some((d, a, z))
        });
    let Some((d, a, z)) = dims else {
        return Err(DataError::header(
            path,
            format!(
                "header dims overflow usize on this platform: feature_dim={d} x attr_dim={a}, \
                 class_count={z}"
            ),
        ));
    };
    if actual < expected {
        return Err(DataError::Truncated {
            path: path.into(),
            expected,
            actual,
        });
    }
    if actual > expected {
        return Err(DataError::header(
            path,
            format!(
                "{} trailing bytes after the model payload",
                actual - expected
            ),
        ));
    }

    let meta_end = ZSM_HEADER_LEN as usize + meta_len as usize;
    let metadata = std::str::from_utf8(&bytes[ZSM_HEADER_LEN as usize..meta_end])
        .map_err(|_| DataError::header(path, "provenance metadata is not valid UTF-8"))?
        .to_string();

    let parse_block = |what: &str, start: usize, rows: usize, cols: usize| {
        let mut data = Vec::with_capacity(rows * cols);
        for (i, b) in bytes[start..start + 8 * rows * cols]
            .chunks_exact(8)
            .enumerate()
        {
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(DataError::header(
                    path,
                    format!(
                        "non-finite {what} value {v} at row {}, col {}",
                        i / cols,
                        i % cols
                    ),
                ));
            }
            data.push(v);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    };
    // `expected == actual` and the file is in memory, so every payload
    // extent below fits usize on this platform.
    let model = match kernel_parts {
        None => {
            let w = parse_block("weight", meta_end, d, a)?;
            let m = ProjectionModel::from_weights(w);
            match family {
                ModelFamily::Eszsl => TrainedModel::Eszsl(m),
                ModelFamily::Sae => TrainedModel::Sae(m),
                ModelFamily::KernelEszsl => unreachable!("kernel family carries kernel_parts"),
            }
        }
        Some((kernel, k)) => {
            let k = k as usize;
            let alpha_start = meta_end + ZSM_KERNEL_BLOCK_LEN;
            let alpha = parse_block("dual weight", alpha_start, k, a)?;
            let anchors = parse_block("anchor", alpha_start + 8 * k * a, k, d)?;
            KernelModel::from_parts(alpha, anchors, kernel)
                .map(TrainedModel::Kernel)
                .map_err(|e| DataError::header(path, format!("inconsistent kernel payload: {e}")))?
        }
    };
    let bank = parse_block("signature", meta_end + model_bytes as usize, z, a)?;

    // A pre-normalized bank is trusted verbatim by the engine — nothing
    // downstream ever re-normalizes it — so a corrupted or crafted cosine
    // bank (an all-zero row, a rescaled row) would silently mis-score every
    // request forever. Reject non-unit rows here, at the trust boundary.
    if prenormalized {
        if let Some(r) = first_non_unit_row(&bank) {
            return Err(DataError::header(
                path,
                format!(
                    "cosine signature bank row {r} has L2 norm {:.6e}, expected 1 within \
                     {ZSM_NORM_TOLERANCE:e}; the pre-normalized bank is corrupt",
                    row_norm(&bank, r)
                ),
            ));
        }
    }

    // from_cached_parts takes the bank exactly as stored — no
    // re-normalization — which is what makes the round trip bit-identical.
    // Its validation failures (shape/finiteness inconsistencies a crafted
    // header could smuggle past the checks above) are typed errors: this is
    // the serving boot path, and it must never panic on untrusted bytes.
    let mut engine =
        ScoringEngine::from_cached_parts(model, bank, similarity, crate::linalg::default_threads())
            .map_err(|msg| DataError::header(path, format!("inconsistent model payload: {msg}")))?;
    if flags & FLAG_SCORE_F32 != 0 {
        engine = engine.with_precision(crate::infer::ScoringPrecision::F32);
    }
    Ok((engine, metadata))
}

/// L2 norm of one bank row.
fn row_norm(bank: &Matrix, r: usize) -> f64 {
    bank.row(r).iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Index of the first row whose L2 norm is not within
/// [`ZSM_NORM_TOLERANCE`] of 1, if any — the shared check behind the cosine
/// save guard and the load-time corruption gate.
fn first_non_unit_row(bank: &Matrix) -> Option<usize> {
    (0..bank.rows()).find(|&r| (row_norm(bank, r) - 1.0).abs() > ZSM_NORM_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("zsl_artifact_{}_{tag}.zsm", std::process::id()))
    }

    fn random_engine(seed: u64, d: usize, a: usize, z: usize, sim: Similarity) -> ScoringEngine {
        let mut rng = Rng::new(seed);
        let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, sim)
    }

    // The bit-identical round-trip property lives in
    // tests/model_artifacts.rs (one copy, the integration suite); the inline
    // tests below cover only what that suite does not.

    #[test]
    fn empty_metadata_and_missing_file_behave() {
        let path = temp_path("meta");
        let engine = random_engine(5, 3, 2, 4, Similarity::Dot);
        engine.save(&path).expect("save");
        let (_, metadata) = ScoringEngine::load_with_metadata(&path).expect("load");
        assert_eq!(metadata, "");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            ScoringEngine::load(&path),
            Err(ZslError::Data(DataError::Io { .. }))
        ));
    }
}
