//! Persistable model artifacts: the versioned `.zsm` format behind
//! [`ScoringEngine::save`] / [`ScoringEngine::load`].
//!
//! A served deployment should boot from a small, cheap-to-load artifact —
//! not re-solve the closed form against the training set. A `.zsm` file
//! captures everything a [`ScoringEngine`] needs at serving time:
//!
//! | offset | size  | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `"ZSMF"` |
//! | 4      | 2     | version (= 2; version-1 files still load) |
//! | 6      | 2     | flags (bit 0: bank stored pre-normalized; bits 1-3, v2 only: score in f32, bank 64-byte aligned, calibration block present) |
//! | 8      | 1     | similarity (0 = cosine, 1 = dot) |
//! | 9      | 1     | model family (0 = eszsl, 1 = sae, 2 = kernel-eszsl; must be 0 in v1 files, where this byte was reserved) |
//! | 10     | 6     | reserved (= 0) |
//! | 16     | 8     | `feature_dim` d (u64) |
//! | 24     | 8     | `attr_dim` a (u64) |
//! | 32     | 8     | `class_count` z (u64) |
//! | 40     | 8     | provenance metadata byte length m (u64) |
//! | 48     | m     | provenance metadata, UTF-8 |
//! | 48+m   | 16    | calibration block (flag bit 3 only): `γ_cal` (f64) + seen-class prefix length (u64) |
//! | …      | …     | per-family model payload (below) |
//! | …      | 0-63  | zero padding to the next 64-byte boundary (flag bit 2 only) |
//! | …      | 8·z·a | signature bank, row-major f64, exactly as cached |
//!
//! Per-family model payload:
//!
//! - **eszsl / sae** (linear families): the projection `W : d x a`,
//!   row-major f64 — byte-compatible with the whole v1 payload.
//! - **kernel-eszsl**: a 24-byte kernel block — kernel code (u8; 0 = linear,
//!   1 = rbf), 7 reserved zero bytes, RBF width (f64; 0 for linear), anchor
//!   count `k` (u64) — then dual weights `alpha : k x a` and anchors
//!   `k x d`, row-major f64. This is everything kernel scoring needs: the
//!   daemon boots from the artifact alone.
//!
//! All integers and floats are little-endian. The signature bank is written
//! **exactly as the engine caches it** — already L2-normalized for cosine
//! engines (flags bit 0) — and the loader rebuilds the engine without
//! re-normalizing, so a save/load round trip reproduces scores and
//! predictions **bit-for-bit** (re-normalizing an already-normalized bank
//! would divide by norms of ≈1.0 and perturb the cached bits).
//!
//! The v2 writer zero-pads the bank payload to a 64-byte file offset (flag
//! bit 2, always set by this writer). In a page-aligned memory mapping that
//! makes the bank rows directly addressable as `f64`s, which is what lets
//! [`ScoringEngine::load_mapped`] borrow the bank zero-copy instead of heap-
//! copying it — the boot mode that matters when the class axis dominates the
//! artifact. Unaligned (legacy v1) files, non-Unix targets, and big-endian
//! hosts fall back to the heap path transparently.
//!
//! Writers always emit the current version; the reader accepts 1 and 2. A
//! v1 file parses exactly as it always did (its reserved family byte is
//! zero, so it loads as ESZSL); a v2 file whose version field is rewritten
//! to 1 fails the v1 reserved-byte check with a typed header error unless it
//! really is a plain ESZSL projection.
//!
//! Errors follow the `.zsb` loader's discipline: typed [`DataError`]s for
//! I/O failures, truncation, bad magic, version skew, unknown flags,
//! overflowing dimensions, non-finite payloads, and — because a loaded
//! cosine bank is trusted verbatim forever — bank rows whose L2 norm is not
//! 1 within [`ZSM_NORM_TOLERANCE`] — never a panic on untrusted bytes. `tests/model_artifacts.rs` covers the error paths and a
//! committed golden artifact; `tests/streaming_equiv.rs` checks that a
//! reloaded engine reproduces the golden fixture's `GzslReport` bits.

use crate::data::DataError;
use crate::error::ZslError;
use crate::infer::{ScoringEngine, Similarity};
use crate::linalg::Matrix;
use crate::mmap::MappedFile;
use crate::model::ProjectionModel;
use crate::trainer::{KernelKind, KernelModel, ModelFamily, TrainedModel};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every `.zsm` model artifact.
pub const ZSM_MAGIC: [u8; 4] = *b"ZSMF";
/// Current `.zsm` format version (writers emit this; the reader also still
/// accepts version 1, whose files load as ESZSL).
pub const ZSM_VERSION: u16 = 2;
/// Oldest `.zsm` format version the reader accepts.
pub const ZSM_MIN_VERSION: u16 = 1;
/// Size of the kernel-family payload prelude: kernel code (1), reserved (7),
/// RBF width (8), anchor count (8).
const ZSM_KERNEL_BLOCK_LEN: usize = 24;
/// Size of the optional calibration block: `γ_cal` (f64) + seen-class prefix
/// length (u64).
const ZSM_CALIBRATION_BLOCK_LEN: usize = 16;
/// Fixed `.zsm` header length in bytes (the metadata block follows it).
pub const ZSM_HEADER_LEN: u64 = 48;
/// File-offset alignment of the signature bank payload in artifacts carrying
/// the bank-aligned flag (bit 2) — one cache line, and a multiple of 8 inside
/// a page-aligned mapping, so mapped bank bytes reinterpret as `f64`s in
/// place.
pub const ZSM_BANK_ALIGN: usize = 64;
/// How far a pre-normalized (cosine) bank row's L2 norm may drift from 1
/// before the loader rejects the artifact as corrupt. Banks normalized in
/// f64 land within ~1e-15 of 1, so this is generous for rounding and tight
/// against real corruption (an all-zero or rescaled row).
pub const ZSM_NORM_TOLERANCE: f64 = 1e-6;

/// Flags bit 0: the signature bank bytes are already L2-normalized (set iff
/// the similarity is cosine).
const FLAG_BANK_PRENORMALIZED: u16 = 1 << 0;

/// Flags bit 1 (v2 only): the engine scores in single precision. The payload
/// stays full f64 — training precision is never reduced on disk — and the
/// loader rebuilds the f32 mirror from it, so flipping the flag is always
/// lossless and reversible.
const FLAG_SCORE_F32: u16 = 1 << 1;

/// Flags bit 2 (v2 only): the bank payload starts on a [`ZSM_BANK_ALIGN`]
/// file offset, preceded by zero padding. Always set by the current writer;
/// the mmap boot path only borrows banks from files carrying it.
const FLAG_BANK_ALIGNED: u16 = 1 << 2;

/// Flags bit 3 (v2 only): a 16-byte calibration block (`γ_cal` + seen-class
/// prefix) follows the metadata. Written exactly when the engine carries a
/// persistable seen-prefix calibration, so uncalibrated artifacts are
/// byte-identical to what they were before calibration existed.
const FLAG_CALIBRATED: u16 = 1 << 3;

impl ScoringEngine {
    /// Persist this engine as a `.zsm` artifact with empty provenance
    /// metadata. See [`ScoringEngine::save_with_metadata`].
    pub fn save(&self, path: &Path) -> Result<(), ZslError> {
        self.save_with_metadata(path, "")
    }

    /// Persist this engine as a versioned `.zsm` artifact: projection `W`,
    /// cached signature bank (zero-padded to a 64-byte file offset so mmap
    /// boots can borrow it in place), similarity, normalization flag, any
    /// seen-prefix calibration, and a free-form UTF-8 provenance string
    /// (hyperparameters, source dataset, …) that
    /// [`ScoringEngine::load_with_metadata`] returns verbatim.
    ///
    /// The write is atomic: bytes land in a temporary file beside the target
    /// and are renamed over it, so a crash mid-save never leaves a truncated
    /// artifact where a serving process expects a bootable model, and a
    /// reader racing a re-save sees either the old file or the new one —
    /// never a partial write. (The rename-not-truncate discipline is also
    /// what keeps an *mmap-booted* reader's borrowed pages valid across a
    /// hot swap: the old inode lives until its last mapping drops.)
    ///
    /// Reloading reproduces predictions bit-for-bit; the worker-thread count
    /// and shard layout are runtime properties and are not stored. An engine
    /// carrying a cross-validation-internal calibration mask (as opposed to
    /// a seen-class prefix) cannot be persisted and is a typed error.
    pub fn save_with_metadata(&self, path: &Path, metadata: &str) -> Result<(), ZslError> {
        let model = self.model();
        let bank = self.signatures();
        if self.has_mask_calibration() {
            return Err(ZslError::Config(
                "cannot persist an engine carrying a cross-validation-internal calibration mask; \
                 only a seen-class prefix calibration round-trips through .zsm"
                    .into(),
            ));
        }
        // A cosine engine's cached bank must be unit-norm row by row — the
        // loader enforces exactly that (nothing downstream ever re-normalizes
        // a loaded bank), so refuse to write an artifact we would refuse to
        // read. The only way to get here is a degenerate all-zero signature
        // row, which `l2_normalize_rows` leaves at zero.
        if self.similarity() == Similarity::Cosine {
            if let Some(r) = first_non_unit_row(bank.as_slice(), bank.cols()) {
                return Err(ZslError::Config(format!(
                    "cannot persist cosine engine: cached signature bank row {r} has L2 norm \
                     {:.6e}, not 1 (an all-zero signature row cannot be cosine-scored and would \
                     be rejected at load)",
                    row_norm(bank.row(r))
                )));
            }
        }
        let d = model.feature_dim();
        let a = model.attr_dim();
        let z = bank.rows();
        let calibration = self.seen_calibration();
        let mut bytes = Vec::with_capacity(
            ZSM_HEADER_LEN as usize + metadata.len() + ZSM_BANK_ALIGN + 8 * (d * a + z * a),
        );
        bytes.extend_from_slice(&ZSM_MAGIC);
        bytes.extend_from_slice(&ZSM_VERSION.to_le_bytes());
        let mut flags = if self.similarity() == Similarity::Cosine {
            FLAG_BANK_PRENORMALIZED
        } else {
            0
        };
        if self.precision() == crate::infer::ScoringPrecision::F32 {
            flags |= FLAG_SCORE_F32;
        }
        flags |= FLAG_BANK_ALIGNED;
        if calibration.is_some() {
            flags |= FLAG_CALIBRATED;
        }
        bytes.extend_from_slice(&flags.to_le_bytes());
        bytes.push(match self.similarity() {
            Similarity::Cosine => 0,
            Similarity::Dot => 1,
        });
        bytes.push(model.family().code());
        bytes.extend_from_slice(&[0u8; 6]); // reserved
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
        bytes.extend_from_slice(&(a as u64).to_le_bytes());
        bytes.extend_from_slice(&(z as u64).to_le_bytes());
        bytes.extend_from_slice(&(metadata.len() as u64).to_le_bytes());
        bytes.extend_from_slice(metadata.as_bytes());
        if let Some((gamma_cal, seen)) = calibration {
            bytes.extend_from_slice(&gamma_cal.to_le_bytes());
            bytes.extend_from_slice(&(seen as u64).to_le_bytes());
        }
        match model {
            TrainedModel::Eszsl(m) | TrainedModel::Sae(m) => {
                for &v in m.weights().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            TrainedModel::Kernel(km) => {
                bytes.push(km.kernel().code());
                bytes.extend_from_slice(&[0u8; 7]); // reserved
                let width = match km.kernel() {
                    KernelKind::Linear => 0.0f64,
                    KernelKind::Rbf { width } => width,
                };
                bytes.extend_from_slice(&width.to_le_bytes());
                bytes.extend_from_slice(&(km.anchors().rows() as u64).to_le_bytes());
                for &v in km.alpha().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                for &v in km.anchors().as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        // Pad the bank to the next 64-byte file offset (FLAG_BANK_ALIGNED).
        // The pad length is a pure function of the preceding byte count, so
        // the reader recomputes it instead of storing it.
        let pad = bank_pad(bytes.len());
        bytes.resize(bytes.len() + pad, 0);
        for &v in bank.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Crash-safe replace (unique temp sibling + fsync + rename) — the
        // pattern lives in `fsutil` and is shared with the bundle writers.
        crate::fsutil::write_atomic(path, &bytes)
            .map_err(|e| ZslError::Data(DataError::io(e.path, e.source)))
    }

    /// Load a `.zsm` artifact written by [`ScoringEngine::save`], discarding
    /// its provenance metadata. The engine uses one worker thread per
    /// available core, like [`ScoringEngine::new`].
    pub fn load(path: &Path) -> Result<ScoringEngine, ZslError> {
        Ok(Self::load_with_metadata(path)?.0)
    }

    /// Load a `.zsm` artifact plus its provenance metadata string.
    ///
    /// Every header field is validated before any payload is interpreted:
    /// magic, version, flags, similarity byte, reserved bytes, non-zero
    /// dimensions, checked-arithmetic payload size (a crafted header cannot
    /// wrap the length check or abort on allocation), exact file length
    /// (truncation *and* trailing garbage are errors), UTF-8 metadata,
    /// alignment padding actually zero, calibration block sanity, and finite
    /// `W`/bank values.
    pub fn load_with_metadata(path: &Path) -> Result<(ScoringEngine, String), ZslError> {
        read_zsm(path).map_err(ZslError::Data)
    }

    /// [`ScoringEngine::load_with_metadata`] in opt-in mmap mode: the file is
    /// memory-mapped and — when it is a v2 artifact with an aligned bank, on
    /// a little-endian Unix host — the engine *borrows* the bank rows from
    /// the mapping instead of heap-copying them, so boot-time resident memory
    /// stays O(model) no matter how large the class axis is
    /// ([`ScoringEngine::bank_resident_bytes`] reports 0 and
    /// [`ScoringEngine::is_bank_mapped`] reports `true`).
    ///
    /// Exactly the same validation runs as on the heap path, against the
    /// mapped bytes. Unaligned or legacy (v1) artifacts, non-Unix targets,
    /// big-endian hosts, and mapping failures all fall back to the heap
    /// loader transparently — the result differs only in where the bank
    /// lives, never in any scored bit.
    pub fn load_mapped(path: &Path) -> Result<(ScoringEngine, String), ZslError> {
        read_zsm_mapped(path).map_err(ZslError::Data)
    }
}

/// Everything [`parse_zsm`] extracts from a `.zsm` byte image except the bank
/// payload itself, which stays in place (heap loaders copy it out, the mmap
/// loader borrows it).
struct ParsedZsm {
    model: TrainedModel,
    similarity: Similarity,
    score_f32: bool,
    metadata: String,
    /// `(γ_cal, seen-class prefix)` from the calibration block, if present.
    calibration: Option<(f64, usize)>,
    /// Byte offset of the (already finiteness- and norm-validated) bank.
    bank_offset: usize,
    /// Bank shape: `z` rows of `a` columns.
    bank_rows: usize,
    bank_cols: usize,
    /// Whether the file carries [`FLAG_BANK_ALIGNED`] (v2 writer output).
    aligned: bool,
}

/// Zero padding inserted before the bank when the payload so far ends at
/// byte offset `len` — the one formula shared by writer and reader.
fn bank_pad(len: usize) -> usize {
    (ZSM_BANK_ALIGN - len % ZSM_BANK_ALIGN) % ZSM_BANK_ALIGN
}

/// Parse and validate a complete `.zsm` byte image (a read file or a memory
/// mapping): every header, length, payload, padding, and bank check from the
/// format doc, shared verbatim by the heap and mmap loaders so the two paths
/// cannot drift. The bank bytes are validated (finite; unit-norm rows when
/// pre-normalized) but not copied.
fn parse_zsm(bytes: &[u8], path: &Path) -> Result<ParsedZsm, DataError> {
    let actual = bytes.len() as u64;
    if actual < ZSM_HEADER_LEN {
        return Err(DataError::Truncated {
            path: path.into(),
            expected: ZSM_HEADER_LEN,
            actual,
        });
    }

    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != ZSM_MAGIC {
        return Err(DataError::header(
            path,
            format!("bad magic {magic:?}, expected {ZSM_MAGIC:?} (\"ZSMF\")"),
        ));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if !(ZSM_MIN_VERSION..=ZSM_VERSION).contains(&version) {
        return Err(DataError::header(
            path,
            format!(
                "unsupported version {version}, this reader handles \
                 {ZSM_MIN_VERSION}-{ZSM_VERSION}"
            ),
        ));
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    // v1 defined only bit 0; the f32-scoring, aligned-bank, and calibration
    // bits arrived with v2, so a v1 file carrying any of them is corrupt
    // rather than merely newer.
    let known_flags = if version == 1 {
        FLAG_BANK_PRENORMALIZED
    } else {
        FLAG_BANK_PRENORMALIZED | FLAG_SCORE_F32 | FLAG_BANK_ALIGNED | FLAG_CALIBRATED
    };
    if flags & !known_flags != 0 {
        return Err(DataError::header(
            path,
            format!(
                "unknown flags 0x{flags:04x}, version {version} defines only \
                 0x{known_flags:04x} (bit 0: pre-normalized bank; bits 1-3, v2 only: f32 \
                 scoring, aligned bank, calibration block)"
            ),
        ));
    }
    let similarity = match bytes[8] {
        0 => Similarity::Cosine,
        1 => Similarity::Dot,
        other => {
            return Err(DataError::header(
                path,
                format!("unknown similarity code {other}, expected 0 (cosine) or 1 (dot)"),
            ));
        }
    };
    let prenormalized = flags & FLAG_BANK_PRENORMALIZED != 0;
    if prenormalized != (similarity == Similarity::Cosine) {
        return Err(DataError::header(
            path,
            format!(
                "flags claim pre-normalized={prenormalized} but similarity is {similarity}; \
                 cosine engines always store a normalized bank and dot engines never do"
            ),
        ));
    }
    // Byte 9 is the model family in v2; in v1 it was reserved (= 0), which is
    // exactly the ESZSL family code — so a genuine v1 file decodes as ESZSL,
    // and a v2 SAE/kernel file whose version was rewritten to 1 fails the
    // reserved-zero check rather than being misread as a projection.
    let family = if version == 1 {
        if bytes[9..16].iter().any(|&b| b != 0) {
            return Err(DataError::header(
                path,
                "reserved header bytes are non-zero",
            ));
        }
        ModelFamily::Eszsl
    } else {
        let code = bytes[9];
        let Some(family) = ModelFamily::from_code(code) else {
            return Err(DataError::header(
                path,
                format!("unknown model family code {code}, expected 0 (eszsl), 1 (sae), or 2 (kernel-eszsl)"),
            ));
        };
        if bytes[10..16].iter().any(|&b| b != 0) {
            return Err(DataError::header(
                path,
                "reserved header bytes are non-zero",
            ));
        }
        family
    };

    let d = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let a = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let z = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    let meta_len = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes"));
    if d == 0 || a == 0 || z == 0 {
        return Err(DataError::header(
            path,
            format!("zero-sized model: feature_dim={d}, attr_dim={a}, class_count={z}"),
        ));
    }

    // Header fields are untrusted: checked arithmetic keeps crafted dims from
    // wrapping the expected length back into range, and the usize conversions
    // reject payloads unaddressable on this platform.
    let overflow = || {
        DataError::header(
            path,
            format!(
                "header dims overflow: feature_dim={d} x attr_dim={a}, class_count={z}, \
                 metadata_len={meta_len}"
            ),
        )
    };
    let calibrated = flags & FLAG_CALIBRATED != 0;
    let aligned = flags & FLAG_BANK_ALIGNED != 0;
    let cal_len = if calibrated {
        ZSM_CALIBRATION_BLOCK_LEN as u64
    } else {
        0
    };
    let prefix = ZSM_HEADER_LEN
        .checked_add(meta_len)
        .and_then(|p| p.checked_add(cal_len))
        .ok_or_else(overflow)?;
    let bank_bytes = 8u64
        .checked_mul(z)
        .and_then(|b| b.checked_mul(a))
        .ok_or_else(overflow)?;
    // The kernel family stores its anchor count inside the payload, so the
    // expected file length depends on payload bytes — which must themselves
    // be bounds-checked before they are read.
    let (model_bytes, kernel_parts) = match family {
        ModelFamily::Eszsl | ModelFamily::Sae => {
            let w_bytes = 8u64
                .checked_mul(d)
                .and_then(|b| b.checked_mul(a))
                .ok_or_else(overflow)?;
            (w_bytes, None)
        }
        ModelFamily::KernelEszsl => {
            let block_end = prefix
                .checked_add(ZSM_KERNEL_BLOCK_LEN as u64)
                .ok_or_else(overflow)?;
            if actual < block_end {
                return Err(DataError::Truncated {
                    path: path.into(),
                    expected: block_end,
                    actual,
                });
            }
            let p = prefix as usize;
            let code = bytes[p];
            if bytes[p + 1..p + 8].iter().any(|&b| b != 0) {
                return Err(DataError::header(
                    path,
                    "reserved kernel block bytes are non-zero",
                ));
            }
            let width = f64::from_le_bytes(bytes[p + 8..p + 16].try_into().expect("8 bytes"));
            let k = u64::from_le_bytes(bytes[p + 16..p + 24].try_into().expect("8 bytes"));
            let Some(kernel) = KernelKind::from_code(code, width) else {
                return Err(DataError::header(
                    path,
                    format!("unknown kernel code {code}, expected 0 (linear) or 1 (rbf)"),
                ));
            };
            match kernel {
                KernelKind::Linear if width != 0.0 => {
                    return Err(DataError::header(
                        path,
                        format!("linear kernel stores a non-zero width {width}"),
                    ));
                }
                KernelKind::Rbf { width } if !(width.is_finite() && width > 0.0) => {
                    return Err(DataError::header(
                        path,
                        format!("rbf kernel width must be positive and finite, got {width}"),
                    ));
                }
                _ => {}
            }
            if k == 0 {
                return Err(DataError::header(path, "kernel payload has zero anchors"));
            }
            let blob = a
                .checked_add(d)
                .and_then(|cols| 8u64.checked_mul(k)?.checked_mul(cols))
                .and_then(|b| b.checked_add(ZSM_KERNEL_BLOCK_LEN as u64))
                .ok_or_else(overflow)?;
            (blob, Some((kernel, k)))
        }
    };
    let model_end = prefix.checked_add(model_bytes).ok_or_else(overflow)?;
    // The pad length is recomputed from the same formula the writer used, so
    // it is never attacker-controlled; it only shifts where the bank starts.
    let pad = if aligned {
        bank_pad(usize::try_from(model_end % (ZSM_BANK_ALIGN as u64)).expect("< 64"))
    } else {
        0
    };
    let expected = model_end
        .checked_add(pad as u64)
        .and_then(|x| x.checked_add(bank_bytes))
        .ok_or_else(overflow)?;
    let dims = usize::try_from(d)
        .ok()
        .zip(usize::try_from(a).ok())
        .zip(usize::try_from(z).ok())
        .and_then(|((d, a), z)| {
            d.checked_mul(a)?.checked_mul(8)?;
            z.checked_mul(a)?.checked_mul(8)?;
            Some((d, a, z))
        });
    let Some((d, a, z)) = dims else {
        return Err(DataError::header(
            path,
            format!(
                "header dims overflow usize on this platform: feature_dim={d} x attr_dim={a}, \
                 class_count={z}"
            ),
        ));
    };
    if actual < expected {
        return Err(DataError::Truncated {
            path: path.into(),
            expected,
            actual,
        });
    }
    if actual > expected {
        return Err(DataError::header(
            path,
            format!(
                "{} trailing bytes after the model payload",
                actual - expected
            ),
        ));
    }

    let meta_end = ZSM_HEADER_LEN as usize + meta_len as usize;
    let metadata = std::str::from_utf8(&bytes[ZSM_HEADER_LEN as usize..meta_end])
        .map_err(|_| DataError::header(path, "provenance metadata is not valid UTF-8"))?
        .to_string();

    let calibration = if calibrated {
        let gamma_cal =
            f64::from_le_bytes(bytes[meta_end..meta_end + 8].try_into().expect("8 bytes"));
        let seen = u64::from_le_bytes(
            bytes[meta_end + 8..meta_end + 16]
                .try_into()
                .expect("8 bytes"),
        );
        if !gamma_cal.is_finite() || gamma_cal <= 0.0 {
            return Err(DataError::header(
                path,
                format!(
                    "calibration block carries gamma_cal={gamma_cal}, expected a finite positive \
                     penalty (uncalibrated engines omit the block entirely)"
                ),
            ));
        }
        if seen > z as u64 {
            return Err(DataError::header(
                path,
                format!("calibration block claims {seen} seen classes but the bank has only {z}"),
            ));
        }
        Some((gamma_cal, seen as usize))
    } else {
        None
    };

    let parse_block = |what: &str, start: usize, rows: usize, cols: usize| {
        let mut data = Vec::with_capacity(rows * cols);
        for (i, b) in bytes[start..start + 8 * rows * cols]
            .chunks_exact(8)
            .enumerate()
        {
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(DataError::header(
                    path,
                    format!(
                        "non-finite {what} value {v} at row {}, col {}",
                        i / cols,
                        i % cols
                    ),
                ));
            }
            data.push(v);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    };
    // `expected == actual` and the byte image is in memory, so every payload
    // extent below fits usize on this platform.
    let prefix = prefix as usize;
    let model = match kernel_parts {
        None => {
            let w = parse_block("weight", prefix, d, a)?;
            let m = ProjectionModel::from_weights(w);
            match family {
                ModelFamily::Eszsl => TrainedModel::Eszsl(m),
                ModelFamily::Sae => TrainedModel::Sae(m),
                ModelFamily::KernelEszsl => unreachable!("kernel family carries kernel_parts"),
            }
        }
        Some((kernel, k)) => {
            let k = k as usize;
            let alpha_start = prefix + ZSM_KERNEL_BLOCK_LEN;
            let alpha = parse_block("dual weight", alpha_start, k, a)?;
            let anchors = parse_block("anchor", alpha_start + 8 * k * a, k, d)?;
            KernelModel::from_parts(alpha, anchors, kernel)
                .map(TrainedModel::Kernel)
                .map_err(|e| DataError::header(path, format!("inconsistent kernel payload: {e}")))?
        }
    };

    let bank_offset = prefix + model_bytes as usize + pad;
    if bytes[bank_offset - pad..bank_offset]
        .iter()
        .any(|&b| b != 0)
    {
        return Err(DataError::header(
            path,
            "bank alignment padding contains non-zero bytes",
        ));
    }

    // The bank is validated in place — finite values, and (for a
    // pre-normalized cosine bank, which the engine trusts verbatim forever)
    // unit-norm rows — so the mmap loader can borrow these exact bytes
    // without a heap copy. The norm accumulates squares in ascending column
    // order then square-roots, identical float ops to the heap path's
    // `Matrix`-based check.
    let bank_end = bank_offset + 8 * z * a;
    for (r, row) in bytes[bank_offset..bank_end].chunks_exact(8 * a).enumerate() {
        let mut sq = 0.0f64;
        for (c, b) in row.chunks_exact(8).enumerate() {
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(DataError::header(
                    path,
                    format!("non-finite signature value {v} at row {r}, col {c}"),
                ));
            }
            sq += v * v;
        }
        if prenormalized && (sq.sqrt() - 1.0).abs() > ZSM_NORM_TOLERANCE {
            return Err(DataError::header(
                path,
                format!(
                    "cosine signature bank row {r} has L2 norm {:.6e}, expected 1 within \
                     {ZSM_NORM_TOLERANCE:e}; the pre-normalized bank is corrupt",
                    sq.sqrt()
                ),
            ));
        }
    }

    Ok(ParsedZsm {
        model,
        similarity,
        score_f32: flags & FLAG_SCORE_F32 != 0,
        metadata,
        calibration,
        bank_offset,
        bank_rows: z,
        bank_cols: a,
        aligned,
    })
}

/// Copy the validated bank payload out of a `.zsm` byte image.
fn copy_bank(bytes: &[u8], parsed: &ParsedZsm) -> Matrix {
    let (z, a) = (parsed.bank_rows, parsed.bank_cols);
    let data = bytes[parsed.bank_offset..parsed.bank_offset + 8 * z * a]
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
        .collect();
    Matrix::from_vec(z, a, data)
}

/// Apply the post-construction engine state a `.zsm` file carries: scoring
/// precision and calibration. Shared by every loader path.
fn finish_engine(
    mut engine: ScoringEngine,
    parsed: &ParsedZsm,
    path: &Path,
) -> Result<ScoringEngine, DataError> {
    if parsed.score_f32 {
        engine = engine.with_precision(crate::infer::ScoringPrecision::F32);
    }
    if let Some((gamma_cal, seen)) = parsed.calibration {
        engine = engine
            .with_calibration(gamma_cal, seen)
            .map_err(|e| DataError::header(path, format!("inconsistent calibration block: {e}")))?;
    }
    Ok(engine)
}

/// Heap loader: read the whole file, parse, copy the bank out.
fn read_zsm(path: &Path) -> Result<(ScoringEngine, String), DataError> {
    let bytes = std::fs::read(path).map_err(|e| DataError::io(path, e))?;
    let parsed = parse_zsm(&bytes, path)?;
    let bank = copy_bank(&bytes, &parsed);
    // from_cached_parts takes the bank exactly as stored — no
    // re-normalization — which is what makes the round trip bit-identical.
    // Its validation failures (shape/finiteness inconsistencies a crafted
    // header could smuggle past the checks above) are typed errors: this is
    // the serving boot path, and it must never panic on untrusted bytes.
    let engine = ScoringEngine::from_cached_parts(
        parsed.model.clone(),
        bank,
        parsed.similarity,
        crate::linalg::default_threads(),
    )
    .map_err(|msg| DataError::header(path, format!("inconsistent model payload: {msg}")))?;
    let engine = finish_engine(engine, &parsed, path)?;
    Ok((engine, parsed.metadata))
}

/// Mmap loader: map the file, parse against the mapped bytes, and borrow the
/// bank zero-copy when the layout allows it; otherwise copy to the heap from
/// the same mapping (legacy/unaligned files) or fall back to [`read_zsm`]
/// entirely (targets or files that cannot map).
fn read_zsm_mapped(path: &Path) -> Result<(ScoringEngine, String), DataError> {
    let file = std::fs::File::open(path).map_err(|e| DataError::io(path, e))?;
    let len = file.metadata().map_err(|e| DataError::io(path, e))?.len();
    let mapped = usize::try_from(len)
        .ok()
        .and_then(|len| MappedFile::map(&file, len));
    let Some(map) = mapped else {
        // Non-Unix target, zero-length file, or a failed syscall: the heap
        // loader produces the identical engine (or the identical typed
        // error) from a plain read.
        return read_zsm(path);
    };
    let map = Arc::new(map);
    let parsed = parse_zsm(map.as_bytes(), path)?;
    // Zero-copy needs the writer's 64-byte alignment (so the mapped bank is
    // 8-byte aligned) and a little-endian host (the payload is LE f64). The
    // offset check is structural for FLAG_BANK_ALIGNED files but kept as a
    // cheap guard.
    let zero_copy = parsed.aligned
        && parsed.bank_offset % ZSM_BANK_ALIGN == 0
        && cfg!(target_endian = "little");
    let engine = if zero_copy {
        ScoringEngine::from_mapped_parts(
            parsed.model.clone(),
            Arc::clone(&map),
            parsed.bank_offset,
            parsed.bank_rows,
            parsed.bank_cols,
            parsed.similarity,
            crate::linalg::default_threads(),
        )
        .map_err(|msg| DataError::header(path, format!("inconsistent model payload: {msg}")))?
    } else {
        let bank = copy_bank(map.as_bytes(), &parsed);
        ScoringEngine::from_cached_parts(
            parsed.model.clone(),
            bank,
            parsed.similarity,
            crate::linalg::default_threads(),
        )
        .map_err(|msg| DataError::header(path, format!("inconsistent model payload: {msg}")))?
    };
    let engine = finish_engine(engine, &parsed, path)?;
    Ok((engine, parsed.metadata))
}

/// L2 norm of one bank row slice.
fn row_norm(row: &[f64]) -> f64 {
    row.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Index of the first row whose L2 norm is not within
/// [`ZSM_NORM_TOLERANCE`] of 1, if any — the check behind the cosine save
/// guard (the load-time gate runs the same float ops in [`parse_zsm`]).
fn first_non_unit_row(data: &[f64], cols: usize) -> Option<usize> {
    data.chunks_exact(cols)
        .position(|row| (row_norm(row) - 1.0).abs() > ZSM_NORM_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Rng;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("zsl_artifact_{}_{tag}.zsm", std::process::id()))
    }

    fn random_engine(seed: u64, d: usize, a: usize, z: usize, sim: Similarity) -> ScoringEngine {
        let mut rng = Rng::new(seed);
        let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, sim)
    }

    // The bit-identical round-trip property lives in
    // tests/model_artifacts.rs (one copy, the integration suite); the inline
    // tests below cover only what that suite does not.

    #[test]
    fn empty_metadata_and_missing_file_behave() {
        let path = temp_path("meta");
        let engine = random_engine(5, 3, 2, 4, Similarity::Dot);
        engine.save(&path).expect("save");
        let (_, metadata) = ScoringEngine::load_with_metadata(&path).expect("load");
        assert_eq!(metadata, "");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            ScoringEngine::load(&path),
            Err(ZslError::Data(DataError::Io { .. }))
        ));
    }

    #[test]
    fn bank_payload_is_64_byte_aligned_and_padding_round_trips() {
        // Sweep metadata lengths so the pre-bank byte count crosses several
        // alignment residues, including zero pad.
        for meta_len in [0usize, 1, 7, 15, 16, 63, 64, 100] {
            let path = temp_path(&format!("align{meta_len}"));
            let engine = random_engine(meta_len as u64 + 11, 3, 2, 4, Similarity::Cosine);
            let metadata = "m".repeat(meta_len);
            engine.save_with_metadata(&path, &metadata).expect("save");
            let raw = std::fs::read(&path).expect("read");
            let model_end = ZSM_HEADER_LEN as usize + meta_len + 8 * 3 * 2;
            let bank_offset = model_end + bank_pad(model_end);
            assert_eq!(bank_offset % ZSM_BANK_ALIGN, 0, "meta_len={meta_len}");
            assert_eq!(raw.len(), bank_offset + 8 * 4 * 2, "meta_len={meta_len}");
            let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
            assert_eq!(meta, metadata);
            assert_eq!(back.signatures().as_slice(), engine.signatures().as_slice());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn non_zero_alignment_padding_is_a_typed_header_error() {
        let path = temp_path("padcorrupt");
        let engine = random_engine(21, 3, 2, 4, Similarity::Dot);
        engine.save_with_metadata(&path, "m").expect("save");
        let mut raw = std::fs::read(&path).expect("read");
        let model_end = ZSM_HEADER_LEN as usize + 1 + 8 * 3 * 2;
        let pad = bank_pad(model_end);
        assert!(pad > 0, "test needs a real pad region");
        raw[model_end] = 0xAB;
        std::fs::write(&path, &raw).expect("rewrite");
        match ScoringEngine::load(&path) {
            Err(ZslError::Data(DataError::Header { message, .. })) => {
                assert!(message.contains("padding"), "unexpected detail: {message}");
            }
            other => panic!("expected padding header error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn calibration_block_round_trips_and_rejects_corruption() {
        let path = temp_path("cal");
        let engine = random_engine(31, 3, 2, 6, Similarity::Cosine)
            .with_calibration(0.25, 4)
            .expect("calibrate");
        engine.save_with_metadata(&path, "prov").expect("save");
        let (back, meta) = ScoringEngine::load_with_metadata(&path).expect("load");
        assert_eq!(meta, "prov");
        assert_eq!(back.seen_calibration(), Some((0.25, 4)));
        // Resave is byte-identical (the calibration block is deterministic).
        let path2 = temp_path("cal2");
        back.save_with_metadata(&path2, "prov").expect("resave");
        assert_eq!(
            std::fs::read(&path).expect("a"),
            std::fs::read(&path2).expect("b")
        );
        // Corrupt the seen count to exceed the class count.
        let mut raw = std::fs::read(&path).expect("read");
        let seen_at = ZSM_HEADER_LEN as usize + 4 + 8;
        raw[seen_at..seen_at + 8].copy_from_slice(&1000u64.to_le_bytes());
        std::fs::write(&path, &raw).expect("rewrite");
        match ScoringEngine::load(&path) {
            Err(ZslError::Data(DataError::Header { message, .. })) => {
                assert!(message.contains("seen classes"), "unexpected: {message}");
            }
            other => panic!("expected calibration header error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn mask_calibrated_engines_refuse_to_persist() {
        let path = temp_path("mask");
        let engine = random_engine(41, 3, 2, 4, Similarity::Dot);
        let mask = std::sync::Arc::new(vec![true, false, true, false]);
        let engine = engine.with_calibration_mask(0.5, mask);
        match engine.save(&path) {
            Err(ZslError::Config(msg)) => assert!(msg.contains("mask"), "unexpected: {msg}"),
            other => panic!("expected config error, got {other:?}"),
        }
        assert!(!path.exists());
    }
}
