//! Hot-swappable model state: one immutable engine shared by every request
//! thread, atomically replaced when the artifact on disk changes.
//!
//! The serving invariants:
//!
//! - Request threads see **one immutable [`ScoringEngine`]** behind an
//!   `Arc`: a snapshot taken at batch time keeps scoring that exact model
//!   even if a reload lands mid-batch, so no batch ever mixes two models.
//! - Reload goes through [`ScoringEngine::load_with_metadata`], which
//!   validates the entire artifact before anything is swapped — combined
//!   with the writer side's fsync + unique-temp + rename discipline, a
//!   swap can only ever install a complete old or complete new model,
//!   never a partial or blended one.
//! - Reload **never panics**: every failure is a typed error, counted and
//!   logged, and the previous model keeps serving.

use crate::error::ServeError;
use crate::stats::ServeStats;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, SystemTime};
use zsl_core::ScoringEngine;

/// One immutable, fully-validated model: what a request thread scores with.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// The scoring engine, shared across request threads.
    pub engine: Arc<ScoringEngine>,
    /// Provenance metadata stored in the artifact, verbatim.
    pub metadata: String,
    /// Monotonic swap counter: 1 for the boot model, +1 per successful
    /// reload. Responses echo it so clients can observe swaps.
    pub generation: u64,
}

/// On-disk identity of the artifact last loaded, used to detect changes
/// without re-reading the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    modified: Option<SystemTime>,
}

impl Fingerprint {
    fn probe(path: &Path) -> std::io::Result<Fingerprint> {
        let meta = std::fs::metadata(path)?;
        Ok(Fingerprint {
            len: meta.len(),
            modified: meta.modified().ok(),
        })
    }
}

/// The daemon's model slot: boots from a `.zsm` artifact, hands out
/// snapshots, and swaps in re-validated replacements atomically.
#[derive(Debug)]
pub struct ModelHandle {
    path: PathBuf,
    current: RwLock<(Arc<ModelSnapshot>, Fingerprint)>,
    stats: Arc<ServeStats>,
    /// Kernel thread count applied to every engine this handle installs
    /// (boot and each reload). Sized once at boot: request threads already
    /// provide the serving concurrency, so the engine must not additionally
    /// fan each batch out to `default_threads()` bands per request thread —
    /// that oversubscribes the cores and slows every batch down.
    engine_threads: usize,
}

impl ModelHandle {
    /// Boot from the artifact at `path`. This is the daemon's cold start:
    /// the box needs the `.zsm` file and nothing else — no training data,
    /// no re-solve. A bad artifact is a typed error, never a panic.
    ///
    /// The engine keeps the artifact's default thread sizing; use
    /// [`ModelHandle::boot_with_threads`] to pin it.
    pub fn boot(path: &Path, stats: Arc<ServeStats>) -> Result<ModelHandle, ServeError> {
        Self::boot_with_threads(path, stats, zsl_core::default_threads())
    }

    /// Boot like [`ModelHandle::boot`], but size the engine's kernel
    /// parallelism to exactly `engine_threads` (clamped to at least 1).
    /// Every later hot-swap re-applies the same sizing, so a reload can
    /// never silently revert the daemon to oversubscribed defaults.
    pub fn boot_with_threads(
        path: &Path,
        stats: Arc<ServeStats>,
        engine_threads: usize,
    ) -> Result<ModelHandle, ServeError> {
        let engine_threads = engine_threads.max(1);
        let fingerprint = Fingerprint::probe(path)?;
        let (mut engine, metadata) = ScoringEngine::load_with_metadata(path)?;
        engine.set_threads(engine_threads);
        let snapshot = Arc::new(ModelSnapshot {
            engine: Arc::new(engine),
            metadata,
            generation: 1,
        });
        Ok(ModelHandle {
            path: path.to_path_buf(),
            current: RwLock::new((snapshot, fingerprint)),
            stats,
            engine_threads,
        })
    }

    /// Kernel thread count applied to every installed engine.
    pub fn engine_threads(&self) -> usize {
        self.engine_threads
    }

    /// Path of the artifact this handle watches.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current model. Cheap (one `Arc` clone under a read lock); the
    /// returned snapshot stays valid — and immutable — for as long as the
    /// caller holds it, regardless of concurrent swaps.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current.read().expect("model lock poisoned").0.clone()
    }

    /// Generation of the current model.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Reload the artifact unconditionally. On success the new model is
    /// swapped in atomically and `Ok(generation)` is returned; on failure
    /// the old model keeps serving and the error is returned (and counted).
    pub fn reload(&self) -> Result<u64, ServeError> {
        let fingerprint = Fingerprint::probe(&self.path).map_err(|e| {
            self.stats.record_reload(false);
            ServeError::Io(e)
        })?;
        match ScoringEngine::load_with_metadata(&self.path) {
            Ok((mut engine, metadata)) => {
                engine.set_threads(self.engine_threads);
                let mut slot = self.current.write().expect("model lock poisoned");
                let generation = slot.0.generation + 1;
                *slot = (
                    Arc::new(ModelSnapshot {
                        engine: Arc::new(engine),
                        metadata,
                        generation,
                    }),
                    fingerprint,
                );
                self.stats.record_reload(true);
                Ok(generation)
            }
            Err(e) => {
                self.stats.record_reload(false);
                Err(ServeError::Model(e))
            }
        }
    }

    /// Reload only if the artifact's on-disk fingerprint (length + mtime)
    /// changed since the last successful load — the watcher's poll step.
    /// Returns `Ok(Some(generation))` after a swap, `Ok(None)` when the
    /// file is unchanged.
    pub fn poll(&self) -> Result<Option<u64>, ServeError> {
        let fingerprint = Fingerprint::probe(&self.path)?;
        let unchanged = self.current.read().expect("model lock poisoned").1 == fingerprint;
        if unchanged {
            return Ok(None);
        }
        self.reload().map(Some)
    }
}

/// Watch the artifact path in a background thread, polling every
/// `interval` and hot-swapping the model on change. Reload failures are
/// counted and otherwise ignored — a half-second of stale model beats a
/// dead daemon. Returns the join handle; the thread exits promptly once
/// `stop` is set.
pub fn spawn_watcher(
    model: Arc<ModelHandle>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("zsl-serve-watcher".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Ignore poll errors here: a transient stat/read failure (or
                // a writer mid-replace on a non-atomic filesystem) must not
                // kill the watcher; the failure is already counted.
                let _ = model.poll();
                std::thread::sleep(interval);
            }
        })
        .expect("spawn watcher thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsl_core::data::Rng;
    use zsl_core::model::ProjectionModel;
    use zsl_core::{Matrix, Similarity};

    fn temp_artifact(tag: &str, seed: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("zsl_serve_model_{}_{tag}.zsm", std::process::id()));
        let mut rng = Rng::new(seed);
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(4, 2, (0..8).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Dot)
            .save_with_metadata(&path, &format!("seed={seed}"))
            .expect("save");
        path
    }

    #[test]
    fn boot_snapshot_and_forced_reload_bump_generation() {
        let path = temp_artifact("reload", 1);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot(&path, stats.clone()).expect("boot");
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.snapshot().metadata, "seed=1");
        let generation = handle.reload().expect("reload");
        assert_eq!(generation, 2);
        assert_eq!(stats.snapshot().reloads, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poll_swaps_only_on_change_and_failure_keeps_old_model() {
        let path = temp_artifact("poll", 2);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot(&path, stats.clone()).expect("boot");
        assert_eq!(handle.poll().expect("poll"), None, "unchanged file swapped");

        // Corrupt the artifact in place (not via the atomic save path):
        // reload must fail with a typed error and keep the boot model.
        std::fs::write(&path, b"garbage").expect("corrupt");
        assert!(matches!(handle.poll(), Err(ServeError::Model(_))));
        assert_eq!(handle.generation(), 1, "old model must keep serving");
        assert_eq!(stats.snapshot().reload_failures, 1);

        // A valid replacement written through the atomic save path swaps in.
        let mut rng = Rng::new(9);
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(4, 2, (0..8).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Dot)
            .save_with_metadata(&path, "replacement")
            .expect("save");
        assert_eq!(handle.poll().expect("poll"), Some(2));
        assert_eq!(handle.snapshot().metadata, "replacement");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_engine_threads_survive_boot_and_reload() {
        let path = temp_artifact("threads", 3);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot_with_threads(&path, stats, 3).expect("boot");
        assert_eq!(handle.engine_threads(), 3);
        assert_eq!(handle.snapshot().engine.threads(), 3);
        handle.reload().expect("reload");
        assert_eq!(
            handle.snapshot().engine.threads(),
            3,
            "hot swap must not revert the boot-time engine sizing"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_artifact_is_a_typed_boot_error() {
        let path = std::env::temp_dir().join("zsl_serve_model_missing.zsm");
        std::fs::remove_file(&path).ok();
        let stats = Arc::new(ServeStats::new());
        assert!(matches!(
            ModelHandle::boot(&path, stats),
            Err(ServeError::Io(_))
        ));
    }
}
