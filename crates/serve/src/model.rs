//! Hot-swappable model state: one immutable engine shared by every request
//! thread, atomically replaced when the artifact on disk changes.
//!
//! The serving invariants:
//!
//! - Request threads see **one immutable [`ScoringEngine`]** behind an
//!   `Arc`: a snapshot taken at batch time keeps scoring that exact model
//!   even if a reload lands mid-batch, so no batch ever mixes two models.
//! - Reload goes through [`ScoringEngine::load_with_metadata`] (or
//!   [`ScoringEngine::load_mapped`] under [`BootOptions::mmap_boot`]), which
//!   validates the entire artifact before anything is swapped — combined
//!   with the writer side's fsync + unique-temp + rename discipline, a
//!   swap can only ever install a complete old or complete new model,
//!   never a partial or blended one.
//! - Reload **never panics**: every failure is a typed error, counted and
//!   logged, and the previous model keeps serving.

use crate::error::ServeError;
use crate::stats::ServeStats;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, SystemTime};
use zsl_core::ScoringEngine;

/// One immutable, fully-validated model: what a request thread scores with.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// The scoring engine, shared across request threads.
    pub engine: Arc<ScoringEngine>,
    /// Provenance metadata stored in the artifact, verbatim.
    pub metadata: String,
    /// Monotonic swap counter: 1 for the boot model, +1 per successful
    /// reload. Responses echo it so clients can observe swaps.
    pub generation: u64,
}

/// On-disk identity of the artifact last loaded, used to detect changes
/// without re-reading (or re-validating) the whole file.
///
/// Length + mtime alone are not enough: a retrainer that re-saves a
/// same-shape model within the filesystem's timestamp granularity (coarse
/// on some filesystems, and a realistic fast-retrain scenario) produces a
/// byte-different artifact with an identical `(len, mtime)` pair, and the
/// watcher would skip the swap forever. The fingerprint therefore also
/// carries a cheap FNV-1a digest of the artifact's length, first page
/// (header + metadata + the start of the model payload) and last page (the
/// tail of the bank) — two 4 KiB reads, independent of artifact size, and
/// any retrain perturbs the bank tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    modified: Option<SystemTime>,
    digest: u64,
}

/// Bytes hashed from each end of the artifact.
const FINGERPRINT_SPAN: usize = 4096;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Fingerprint {
    fn probe(path: &Path) -> std::io::Result<Fingerprint> {
        use std::io::{Read, Seek, SeekFrom};
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        // One open handle for metadata and reads: even if the path is
        // atomically renamed over mid-probe, every field below describes the
        // same inode.
        let mut file = std::fs::File::open(path)?;
        let meta = file.metadata()?;
        let len = meta.len();
        let mut digest = fnv1a(FNV_OFFSET, &len.to_le_bytes());
        let span = FINGERPRINT_SPAN.min(usize::try_from(len).unwrap_or(FINGERPRINT_SPAN));
        let mut buf = vec![0u8; span];
        file.read_exact(&mut buf)?;
        digest = fnv1a(digest, &buf);
        if len > span as u64 {
            file.seek(SeekFrom::End(-(span as i64)))?;
            file.read_exact(&mut buf)?;
            digest = fnv1a(digest, &buf);
        }
        Ok(Fingerprint {
            len,
            modified: meta.modified().ok(),
            digest,
        })
    }
}

/// How [`ModelHandle::boot_with_options`] loads and sizes engines — applied
/// identically at boot and on every hot swap, so a reload can never revert
/// the daemon to different scoring behavior than it booted with.
#[derive(Clone, Copy, Debug, Default)]
pub struct BootOptions {
    /// Kernel thread count per installed engine; 0 means one thread per
    /// available core.
    pub engine_threads: usize,
    /// Load artifacts through [`ScoringEngine::load_mapped`]: zero-copy bank
    /// borrow when the artifact layout and platform allow it, transparent
    /// heap fallback otherwise.
    pub mmap_boot: bool,
    /// Split the signature bank into this many shards for streaming top-k
    /// scoring (`None` keeps the monolithic bank). Scored bits are identical
    /// at every shard count; only peak score memory changes.
    pub bank_shards: Option<usize>,
}

/// The daemon's model slot: boots from a `.zsm` artifact, hands out
/// snapshots, and swaps in re-validated replacements atomically.
#[derive(Debug)]
pub struct ModelHandle {
    path: PathBuf,
    current: RwLock<(Arc<ModelSnapshot>, Fingerprint)>,
    stats: Arc<ServeStats>,
    /// Load/sizing options applied to every engine this handle installs
    /// (boot and each reload). `engine_threads` is sized once at boot:
    /// request threads already provide the serving concurrency, so the
    /// engine must not additionally fan each batch out to
    /// `default_threads()` bands per request thread — that oversubscribes
    /// the cores and slows every batch down. The mmap and shard options are
    /// re-applied on every hot swap for the same reason.
    options: BootOptions,
}

impl ModelHandle {
    /// Boot from the artifact at `path`. This is the daemon's cold start:
    /// the box needs the `.zsm` file and nothing else — no training data,
    /// no re-solve. A bad artifact is a typed error, never a panic.
    ///
    /// The engine keeps the artifact's default thread sizing; use
    /// [`ModelHandle::boot_with_threads`] to pin it.
    pub fn boot(path: &Path, stats: Arc<ServeStats>) -> Result<ModelHandle, ServeError> {
        Self::boot_with_threads(path, stats, zsl_core::default_threads())
    }

    /// Boot like [`ModelHandle::boot`], but size the engine's kernel
    /// parallelism to exactly `engine_threads` (clamped to at least 1).
    /// Every later hot-swap re-applies the same sizing, so a reload can
    /// never silently revert the daemon to oversubscribed defaults.
    pub fn boot_with_threads(
        path: &Path,
        stats: Arc<ServeStats>,
        engine_threads: usize,
    ) -> Result<ModelHandle, ServeError> {
        Self::boot_with_options(
            path,
            stats,
            BootOptions {
                engine_threads,
                ..BootOptions::default()
            },
        )
    }

    /// Boot with full [`BootOptions`]: thread sizing, opt-in mmap loading,
    /// and bank sharding. Every later hot swap re-applies the same options.
    pub fn boot_with_options(
        path: &Path,
        stats: Arc<ServeStats>,
        mut options: BootOptions,
    ) -> Result<ModelHandle, ServeError> {
        options.engine_threads = if options.engine_threads == 0 {
            zsl_core::default_threads()
        } else {
            options.engine_threads
        };
        let fingerprint = Fingerprint::probe(path)?;
        let (engine, metadata) = Self::load_engine(path, &options)?;
        Self::set_bank_gauges(&stats, &engine);
        let snapshot = Arc::new(ModelSnapshot {
            engine: Arc::new(engine),
            metadata,
            generation: 1,
        });
        Ok(ModelHandle {
            path: path.to_path_buf(),
            current: RwLock::new((snapshot, fingerprint)),
            stats,
            options,
        })
    }

    /// Load + size one engine per the handle's options — the single code
    /// path behind boot and every reload.
    fn load_engine(
        path: &Path,
        options: &BootOptions,
    ) -> Result<(ScoringEngine, String), ServeError> {
        let (mut engine, metadata) = if options.mmap_boot {
            ScoringEngine::load_mapped(path)?
        } else {
            ScoringEngine::load_with_metadata(path)?
        };
        engine.set_threads(options.engine_threads);
        if let Some(shards) = options.bank_shards {
            engine.set_bank_shards(shards);
        }
        Ok((engine, metadata))
    }

    fn set_bank_gauges(stats: &ServeStats, engine: &ScoringEngine) {
        stats.set_bank_gauges(
            engine.bank_shards().count(),
            engine.bank_resident_bytes(),
            engine.is_bank_mapped(),
        );
    }

    /// Kernel thread count applied to every installed engine.
    pub fn engine_threads(&self) -> usize {
        self.options.engine_threads
    }

    /// The load/sizing options applied to every installed engine.
    pub fn options(&self) -> BootOptions {
        self.options
    }

    /// Path of the artifact this handle watches.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current model. Cheap (one `Arc` clone under a read lock); the
    /// returned snapshot stays valid — and immutable — for as long as the
    /// caller holds it, regardless of concurrent swaps.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current.read().expect("model lock poisoned").0.clone()
    }

    /// Generation of the current model.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Reload the artifact unconditionally. On success the new model is
    /// swapped in atomically and `Ok(generation)` is returned; on failure
    /// the old model keeps serving and the error is returned (and counted).
    pub fn reload(&self) -> Result<u64, ServeError> {
        let fingerprint = Fingerprint::probe(&self.path).map_err(|e| {
            self.stats.record_reload(false);
            ServeError::Io(e)
        })?;
        match Self::load_engine(&self.path, &self.options) {
            Ok((engine, metadata)) => {
                Self::set_bank_gauges(&self.stats, &engine);
                let mut slot = self.current.write().expect("model lock poisoned");
                let generation = slot.0.generation + 1;
                *slot = (
                    Arc::new(ModelSnapshot {
                        engine: Arc::new(engine),
                        metadata,
                        generation,
                    }),
                    fingerprint,
                );
                self.stats.record_reload(true);
                Ok(generation)
            }
            Err(e) => {
                self.stats.record_reload(false);
                Err(e)
            }
        }
    }

    /// Reload only if the artifact's on-disk fingerprint (length + mtime +
    /// content digest) changed since the last successful load — the
    /// watcher's poll step.
    /// Returns `Ok(Some(generation))` after a swap, `Ok(None)` when the
    /// file is unchanged.
    pub fn poll(&self) -> Result<Option<u64>, ServeError> {
        let fingerprint = Fingerprint::probe(&self.path)?;
        let unchanged = self.current.read().expect("model lock poisoned").1 == fingerprint;
        if unchanged {
            return Ok(None);
        }
        self.reload().map(Some)
    }
}

/// Watch the artifact path in a background thread, polling every
/// `interval` and hot-swapping the model on change. Reload failures are
/// counted and otherwise ignored — a half-second of stale model beats a
/// dead daemon. Returns the join handle; the thread exits promptly once
/// `stop` is set.
pub fn spawn_watcher(
    model: Arc<ModelHandle>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("zsl-serve-watcher".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Ignore poll errors here: a transient stat/read failure (or
                // a writer mid-replace on a non-atomic filesystem) must not
                // kill the watcher; the failure is already counted.
                let _ = model.poll();
                std::thread::sleep(interval);
            }
        })
        .expect("spawn watcher thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsl_core::data::Rng;
    use zsl_core::model::ProjectionModel;
    use zsl_core::{Matrix, Similarity};

    fn temp_artifact(tag: &str, seed: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("zsl_serve_model_{}_{tag}.zsm", std::process::id()));
        let mut rng = Rng::new(seed);
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(4, 2, (0..8).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Dot)
            .save_with_metadata(&path, &format!("seed={seed}"))
            .expect("save");
        path
    }

    #[test]
    fn boot_snapshot_and_forced_reload_bump_generation() {
        let path = temp_artifact("reload", 1);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot(&path, stats.clone()).expect("boot");
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.snapshot().metadata, "seed=1");
        let generation = handle.reload().expect("reload");
        assert_eq!(generation, 2);
        assert_eq!(stats.snapshot().reloads, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poll_swaps_only_on_change_and_failure_keeps_old_model() {
        let path = temp_artifact("poll", 2);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot(&path, stats.clone()).expect("boot");
        assert_eq!(handle.poll().expect("poll"), None, "unchanged file swapped");

        // Corrupt the artifact in place (not via the atomic save path):
        // reload must fail with a typed error and keep the boot model.
        std::fs::write(&path, b"garbage").expect("corrupt");
        assert!(matches!(handle.poll(), Err(ServeError::Model(_))));
        assert_eq!(handle.generation(), 1, "old model must keep serving");
        assert_eq!(stats.snapshot().reload_failures, 1);

        // A valid replacement written through the atomic save path swaps in.
        let mut rng = Rng::new(9);
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(4, 2, (0..8).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Dot)
            .save_with_metadata(&path, "replacement")
            .expect("save");
        assert_eq!(handle.poll().expect("poll"), Some(2));
        assert_eq!(handle.snapshot().metadata, "replacement");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_engine_threads_survive_boot_and_reload() {
        let path = temp_artifact("threads", 3);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot_with_threads(&path, stats, 3).expect("boot");
        assert_eq!(handle.engine_threads(), 3);
        assert_eq!(handle.snapshot().engine.threads(), 3);
        handle.reload().expect("reload");
        assert_eq!(
            handle.snapshot().engine.threads(),
            3,
            "hot swap must not revert the boot-time engine sizing"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_length_same_mtime_resave_still_triggers_hot_swap() {
        let path = temp_artifact("digest", 4);
        let stats = Arc::new(ServeStats::new());
        let handle = ModelHandle::boot(&path, stats).expect("boot");
        let original_len = std::fs::metadata(&path).expect("meta").len();
        let original_mtime = std::fs::metadata(&path)
            .expect("meta")
            .modified()
            .expect("mtime");

        // Retrain scenario: a byte-different artifact of identical length
        // (same dims, same metadata length) lands faster than the
        // filesystem's timestamp granularity. Simulate the worst case by
        // pinning the mtime back to the original value — a `(len, mtime)`
        // fingerprint sees nothing, only the content digest can.
        let mut rng = Rng::new(77);
        let w = Matrix::from_vec(3, 2, (0..6).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(4, 2, (0..8).map(|_| rng.normal()).collect());
        ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Dot)
            .save_with_metadata(&path, "seed=77")
            .expect("resave");
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            original_len,
            "scenario requires a same-length resave"
        );
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for set_times");
        file.set_times(std::fs::FileTimes::new().set_modified(original_mtime))
            .expect("pin mtime");
        drop(file);
        assert_eq!(
            std::fs::metadata(&path)
                .expect("meta")
                .modified()
                .expect("mtime"),
            original_mtime,
            "scenario requires an identical mtime"
        );

        assert_eq!(
            handle.poll().expect("poll"),
            Some(2),
            "content digest must catch a same-length same-mtime rewrite"
        );
        assert_eq!(handle.snapshot().metadata, "seed=77");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_artifact_is_a_typed_boot_error() {
        let path = std::env::temp_dir().join("zsl_serve_model_missing.zsm");
        std::fs::remove_file(&path).ok();
        let stats = Arc::new(ServeStats::new());
        assert!(matches!(
            ModelHandle::boot(&path, stats),
            Err(ServeError::Io(_))
        ));
    }
}
