//! `zsl-serve` — boot a prediction daemon from a `.zsm` model artifact.
//!
//! ```sh
//! # Train + persist a model with the core CLI, then serve it:
//! cargo run --release --example eval_dataset -- train /tmp/zsl_bundle --save /tmp/model.zsm
//! cargo run --release -p zsl-serve -- /tmp/model.zsm --addr 127.0.0.1:7878
//!
//! # Score rows (one per line, values comma/space separated):
//! curl -s http://127.0.0.1:7878/predict?k=3 --data-binary $'0.1 0.2 0.3\n1 2 3'
//! curl -s http://127.0.0.1:7878/healthz
//! curl -s http://127.0.0.1:7878/stats
//!
//! # Hot-swap: re-save the artifact (atomic rename) and the watcher picks
//! # it up; or force it:
//! curl -s -X POST http://127.0.0.1:7878/reload
//! ```

use std::process::ExitCode;
use std::time::Duration;
use zsl_serve::{BatchConfig, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: zsl-serve <model.zsm> [--addr HOST:PORT] [--threads N] [--max-batch N] \
         [--linger-us N] [--watch-ms N | --no-watch] [--max-body-mb N] [--mmap] [--shards N]\n\n\
         Boots a prediction server from the .zsm artifact alone. Concurrent requests are\n\
         coalesced into batches (up to --max-batch rows, lingering --linger-us for\n\
         stragglers); the artifact path is polled every --watch-ms and hot-swapped\n\
         atomically on change. --threads pins the scoring engine's kernel parallelism\n\
         (default: one band per CPU; pin it low on loaded boxes — request threads\n\
         already provide concurrency, and kernel fan-out on top oversubscribes cores).\n\
         --mmap boots by memory-mapping the artifact (zero-copy signature bank when the\n\
         file layout allows, heap fallback otherwise); --shards splits the bank into N\n\
         row bands for streaming top-k scoring — same bits, lower peak score memory."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(model_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut batch = BatchConfig::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--no-watch" {
            config.watch_interval = None;
            i += 1;
            continue;
        }
        if flag == "--mmap" {
            config.mmap_boot = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} needs a value");
            return usage();
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--threads" => match value.parse() {
                Ok(n) if n > 0 => config.engine_threads = Some(n),
                _ => return usage(),
            },
            "--max-batch" => match value.parse() {
                Ok(n) if n > 0 => batch.max_batch = n,
                _ => return usage(),
            },
            "--linger-us" => match value.parse() {
                Ok(us) => batch.linger = Duration::from_micros(us),
                Err(_) => return usage(),
            },
            "--watch-ms" => match value.parse() {
                Ok(ms) => config.watch_interval = Some(Duration::from_millis(ms)),
                Err(_) => return usage(),
            },
            "--max-body-mb" => match value.parse::<usize>() {
                Ok(mb) if mb > 0 => config.max_body_bytes = mb << 20,
                _ => return usage(),
            },
            "--shards" => match value.parse() {
                Ok(n) if n > 0 => config.bank_shards = Some(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    config.batch = batch;

    let server = match Server::start(model_path.as_ref(), config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            let mut source = std::error::Error::source(&e);
            while let Some(inner) = source {
                eprintln!("  caused by: {inner}");
                source = inner.source();
            }
            return ExitCode::FAILURE;
        }
    };
    let snapshot = server.model().snapshot();
    println!(
        "zsl-serve: model {} ({}, {} features -> {} attrs -> {} classes, {} similarity, \
         {} scoring), generation {}",
        model_path,
        snapshot.engine.model().family(),
        snapshot.engine.feature_dim(),
        snapshot.engine.model().attr_dim(),
        snapshot.engine.num_classes(),
        snapshot.engine.similarity(),
        snapshot.engine.precision(),
        snapshot.generation,
    );
    println!(
        "zsl-serve: listening on http://{} (engine_threads={}, max_batch={}, linger={:?}, \
         watch={:?}, bank_shards={}, mmap={})",
        server.addr(),
        snapshot.engine.threads(),
        config.batch.max_batch,
        config.batch.linger,
        config.watch_interval,
        snapshot.engine.bank_shards().count(),
        snapshot.engine.is_bank_mapped(),
    );
    server.run_until_stopped();
    ExitCode::SUCCESS
}
