//! # zsl-serve — the prediction-serving daemon over `.zsm` artifacts
//!
//! A long-running server that boots from a [`zsl_core`] `.zsm` model
//! artifact **alone** — no training data, no re-solve — and scores feature
//! vectors over HTTP through the engine's chunked parallel kernels.
//! Everything is `std`-only: no async runtime, no HTTP or serialization
//! dependencies.
//!
//! The production-scale pieces, in module order:
//!
//! | module | role |
//! |--------|------|
//! | [`model`] | ONE immutable `Arc<ScoringEngine>` shared across request threads, plus hot-swap reload: a watcher polls the artifact path and atomically swaps the `Arc` on change, leaning on the writer's fsync + unique-temp + rename discipline so a swap only ever installs a complete model |
//! | [`batch`] | the request coalescer: concurrent single-row requests linger briefly and merge into one matrix, so the row-banded matmul sees wide inputs instead of degenerate 1-row calls |
//! | [`http`] | minimal HTTP/1.1 front end: `/predict` (batched scoring, `?k=` rankings), `/healthz`, `/stats`, `/model`, `/reload` |
//! | [`stats`] | lock-free counters proving the batches really form (`max_batch_rows`, `coalesced_batches`) and tracking reloads |
//! | [`error`] | [`ServeError`]: every failure on the serving path is typed — untrusted request bytes and untrusted artifact bytes can never panic the daemon |
//!
//! ## Quick start
//!
//! ```no_run
//! use zsl_serve::{Server, ServerConfig};
//!
//! # fn main() -> Result<(), zsl_serve::ServeError> {
//! let server = Server::start("model.zsm".as_ref(), ServerConfig::default())?;
//! println!("serving on http://{}", server.addr());
//! server.run_until_stopped();
//! # Ok(())
//! # }
//! ```
//!
//! The `zsl-serve` binary wraps exactly this. Latency/throughput numbers
//! (p50/p99 per request, requests/s) are recorded as `[bench]` lines by
//! `tests/throughput.rs`, mirroring the core crate's harness.

pub mod batch;
pub mod error;
pub mod http;
pub mod model;
pub mod stats;

pub use batch::{BatchConfig, Coalescer, RowResult};
pub use error::ServeError;
pub use http::{Server, ServerConfig};
pub use model::{spawn_watcher, BootOptions, ModelHandle, ModelSnapshot};
pub use stats::{ServeStats, StatsSnapshot};
