//! The std-only HTTP/1.1 front end of the serving daemon.
//!
//! No async runtime and no HTTP dependency: a nonblocking accept loop, one
//! thread per connection (keep-alive honored), and a hand-rolled parser for
//! the tiny request surface the daemon speaks. Every request body is
//! untrusted: framing errors, oversized bodies, unparsable or non-finite
//! feature values, and width mismatches are all 4xx responses — the process
//! never panics on a socket's bytes.
//!
//! ## Protocol
//!
//! | route | behavior |
//! |-------|----------|
//! | `GET /healthz` | liveness: `200 ok` |
//! | `GET /stats`   | `key=value` counter lines (see [`crate::stats`]) |
//! | `GET /model`   | generation, model family, dims, similarity, scoring precision, provenance metadata |
//! | `POST /reload` | force a model reload now (`503` + old model kept on failure) |
//! | `POST /predict[?k=N]` | score feature rows (see below) |
//!
//! `POST /predict` takes `text/plain`: one feature row per line, values
//! separated by whitespace and/or commas. The response mirrors it, one line
//! per row: `class=<argmax> generation=<model generation> topk=<c>:<s>,…`
//! with `k` entries (`k` clamped to the class count; `k=0` leaves `topk=`
//! empty; default `k=1`). Scores print with Rust's shortest-round-trip
//! float formatting, so equal text means bit-equal scores.
//!
//! Every row — including each row of a multi-row body — goes through the
//! [`crate::batch::Coalescer`], so one client's rows batch with every
//! concurrent client's before hitting the matmul kernels.

use crate::batch::{BatchConfig, Coalescer, RowResult};
use crate::error::ServeError;
use crate::model::{spawn_watcher, BootOptions, ModelHandle};
use crate::stats::{ServeStats, StatsSnapshot};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Coalescer tunables.
    pub batch: BatchConfig,
    /// Artifact-watch poll interval; `None` disables hot-swap watching
    /// (`POST /reload` still works).
    pub watch_interval: Option<Duration>,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Kernel thread count for the shared scoring engine, sized once at
    /// boot and re-applied on every hot swap. `None` keeps the library
    /// default ([`zsl_core::default_threads`]). Request threads already
    /// provide concurrency, so a loaded daemon usually wants this at 1–2:
    /// per-request kernel fan-out on top of per-connection threads
    /// oversubscribes the cores.
    pub engine_threads: Option<usize>,
    /// Boot (and hot-swap) through [`zsl_core::ScoringEngine::load_mapped`]:
    /// the signature bank is borrowed zero-copy from the mmap'd artifact
    /// when layout and platform allow, with a transparent heap fallback.
    pub mmap_boot: bool,
    /// Split the signature bank into this many shards for streaming top-k
    /// scoring; `None` keeps the monolithic bank. Bit-identical scores at
    /// every shard count — only peak score memory changes.
    pub bank_shards: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            watch_interval: Some(Duration::from_millis(500)),
            max_body_bytes: 16 << 20,
            engine_threads: None,
            mmap_boot: false,
            bank_shards: None,
        }
    }
}

/// A running daemon: accept loop, coalescing worker, and (optionally) the
/// artifact watcher. Dropping the server stops all of them.
pub struct Server {
    addr: SocketAddr,
    model: Arc<ModelHandle>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    watcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boot from the `.zsm` artifact at `model_path` — the artifact is the
    /// only state the daemon needs — bind, and start serving.
    pub fn start(model_path: &Path, config: ServerConfig) -> Result<Server, ServeError> {
        let stats = Arc::new(ServeStats::new());
        let engine_threads = config
            .engine_threads
            .unwrap_or_else(zsl_core::default_threads)
            .max(1);
        let model = Arc::new(ModelHandle::boot_with_options(
            model_path,
            stats.clone(),
            BootOptions {
                engine_threads,
                mmap_boot: config.mmap_boot,
                bank_shards: config.bank_shards,
            },
        )?);
        // Warm the process-wide linalg pool now, off the request path, and
        // publish both sizing gauges so `/stats` shows how the engine was
        // sized relative to the pool.
        stats.set_thread_gauges(engine_threads, zsl_core::pool_threads());
        let coalescer = Arc::new(Coalescer::start(model.clone(), stats.clone(), config.batch));
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let watcher = config
            .watch_interval
            .map(|interval| spawn_watcher(model.clone(), interval, stop.clone()));

        let accept = {
            let stop = stop.clone();
            let model = model.clone();
            let stats = stats.clone();
            let max_body = config.max_body_bytes;
            std::thread::Builder::new()
                .name("zsl-serve-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let model = model.clone();
                            let stats = stats.clone();
                            let coalescer = coalescer.clone();
                            std::thread::Builder::new()
                                .name("zsl-serve-conn".into())
                                .spawn(move || {
                                    handle_connection(stream, &model, &stats, &coalescer, max_body)
                                })
                                .ok();
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            model,
            stats,
            stop,
            accept: Some(accept),
            watcher,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-swappable model slot.
    pub fn model(&self) -> &Arc<ModelHandle> {
        &self.model
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Block the calling thread until `stop` is observed — the daemon
    /// binary's main-thread park.
    pub fn run_until_stopped(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(200));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
        if let Some(t) = self.watcher.take() {
            t.join().ok();
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    query: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Serve one connection: parse requests until EOF, `Connection: close`, or
/// a framing error.
fn handle_connection(
    stream: TcpStream,
    model: &Arc<ModelHandle>,
    stats: &Arc<ServeStats>,
    coalescer: &Arc<Coalescer>,
    max_body: usize,
) {
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    // Serving is request/response over small messages: Nagle's algorithm
    // would hold each response back waiting for an ACK (a ~40ms delayed-ACK
    // stall per request), so turn it off.
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, max_body) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(ReadError::TooLarge) => {
                respond(
                    &mut writer,
                    413,
                    "Payload Too Large",
                    "body too large\n",
                    false,
                );
                return;
            }
            Err(ReadError::Malformed(msg)) => {
                respond(&mut writer, 400, "Bad Request", &format!("{msg}\n"), false);
                return;
            }
            Err(ReadError::Io) => return,
        };
        stats.record_request();
        let keep_alive = request.keep_alive;
        match route(&request, model, stats, coalescer) {
            Ok(body) => respond(&mut writer, 200, "OK", &body, keep_alive),
            Err(e) => {
                stats.record_rejected();
                let (code, phrase) = match &e {
                    ServeError::Protocol(_) => (400, "Bad Request"),
                    ServeError::Model(_) | ServeError::Closed => (503, "Service Unavailable"),
                    ServeError::Io(_) => (500, "Internal Server Error"),
                };
                respond(&mut writer, code, phrase, &format!("{e}\n"), keep_alive);
            }
        }
        if !keep_alive {
            return;
        }
    }
}

enum ReadError {
    Io,
    TooLarge,
    Malformed(String),
}

/// Parse one HTTP/1.1 request off the wire. `Ok(None)` is a clean EOF
/// before a request line (keep-alive connection closed by the client).
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Option<Request>, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Err(ReadError::Io),
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), t.to_string()),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line: {}",
                line.trim_end()
            )))
        }
    };

    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(ReadError::Malformed("eof inside headers".into())),
            Ok(_) => {}
            Err(_) => return Err(ReadError::Io),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header: {header}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length: {value}")))?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "transfer-encoding is not supported; send a content-length body".into(),
                ));
            }
            "connection" if value.eq_ignore_ascii_case("close") => {
                keep_alive = false;
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|_| ReadError::Io)?;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

fn respond(writer: &mut TcpStream, code: u16, phrase: &str, body: &str, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write_all for the whole response: two small writes would hand
    // Nagle/delayed-ACK a chance to stall the tail of the response.
    let message = format!(
        "HTTP/1.1 {code} {phrase}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    writer
        .write_all(message.as_bytes())
        .and_then(|_| writer.flush())
        .ok();
}

fn route(
    request: &Request,
    model: &Arc<ModelHandle>,
    stats: &Arc<ServeStats>,
    coalescer: &Arc<Coalescer>,
) -> Result<String, ServeError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok("ok\n".into()),
        ("GET", "/stats") => Ok(stats.snapshot().render()),
        ("GET", "/model") => {
            let snapshot = model.snapshot();
            let engine = &snapshot.engine;
            Ok(format!(
                "generation={}\nfamily={}\nfeature_dim={}\nattr_dim={}\nclasses={}\n\
                 similarity={}\nprecision={}\nthreads={}\nmetadata={}\n",
                snapshot.generation,
                engine.model().family(),
                engine.feature_dim(),
                engine.model().attr_dim(),
                engine.num_classes(),
                engine.similarity(),
                engine.precision(),
                engine.threads(),
                snapshot.metadata
            ))
        }
        ("POST", "/reload") => {
            let generation = model.reload()?;
            Ok(format!("reloaded generation={generation}\n"))
        }
        ("POST", "/predict") => predict(request, coalescer),
        ("GET" | "POST", _) => Err(ServeError::Protocol(format!(
            "no such route: {} {}",
            request.method, request.path
        ))),
        _ => Err(ServeError::Protocol(format!(
            "unsupported method {}",
            request.method
        ))),
    }
}

fn predict(request: &Request, coalescer: &Arc<Coalescer>) -> Result<String, ServeError> {
    let k = parse_k(&request.query)?;
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::Protocol("request body is not valid UTF-8".into()))?;
    let rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(ServeError::Protocol(
            "empty body: send one feature row per line".into(),
        ));
    }
    // Enqueue every row first, then collect: the rows coalesce with each
    // other and with concurrent requests into wide kernel batches.
    let receivers: Vec<_> = rows
        .into_iter()
        .map(|row| coalescer.enqueue(row, k))
        .collect();
    let mut body = String::new();
    for rx in receivers {
        let result = rx.recv().unwrap_or(Err(ServeError::Closed))?;
        render_row(&mut body, &result);
    }
    Ok(body)
}

/// `k=N` from the query string (default 1). Unknown parameters are typed
/// errors — silently ignoring a typo like `topk=5` would mis-serve.
fn parse_k(query: &str) -> Result<usize, ServeError> {
    let mut k = 1usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("k", value)) => {
                k = value
                    .parse()
                    .map_err(|_| ServeError::Protocol(format!("bad k value: {value}")))?;
            }
            _ => {
                return Err(ServeError::Protocol(format!(
                    "unknown query parameter: {pair}"
                )))
            }
        }
    }
    Ok(k)
}

/// One feature row per non-empty line; values split on whitespace and/or
/// commas. Non-finite values are rejected here, at the trust boundary: a
/// NaN feature would poison its whole score row and serve garbage
/// deterministically forever after.
fn parse_rows(text: &str) -> Result<Vec<Vec<f64>>, ServeError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for token in line.split(|c: char| c == ',' || c.is_whitespace()) {
            if token.is_empty() {
                continue;
            }
            let v: f64 = token.parse().map_err(|_| {
                ServeError::Protocol(format!("line {}: bad feature value '{token}'", i + 1))
            })?;
            if !v.is_finite() {
                return Err(ServeError::Protocol(format!(
                    "line {}: non-finite feature value '{token}'",
                    i + 1
                )));
            }
            row.push(v);
        }
        if !row.is_empty() {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// `class=<c> generation=<g> topk=<c>:<s>,…` — scores in Rust's shortest
/// round-trip float formatting, so textually equal responses are bit-equal.
fn render_row(out: &mut String, result: &RowResult) {
    use std::fmt::Write as _;
    write!(
        out,
        "class={} generation={} topk=",
        result.class, result.generation
    )
    .ok();
    for (i, (c, s)) in result
        .topk
        .classes
        .iter()
        .zip(&result.topk.scores)
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{c}:{s}").ok();
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_accepts_k_and_rejects_unknowns() {
        assert_eq!(parse_k("").unwrap(), 1);
        assert_eq!(parse_k("k=0").unwrap(), 0);
        assert_eq!(parse_k("k=17").unwrap(), 17);
        assert!(parse_k("k=banana").is_err());
        assert!(parse_k("topk=3").is_err());
    }

    #[test]
    fn row_parsing_handles_separators_and_rejects_bad_values() {
        let rows = parse_rows("1.0, 2.5 -3\n\n4,5,6\n").expect("parse");
        assert_eq!(rows, vec![vec![1.0, 2.5, -3.0], vec![4.0, 5.0, 6.0]]);
        assert!(parse_rows("1.0 abc").is_err());
        assert!(parse_rows("1e999").is_err(), "inf must be rejected");
        assert!(parse_rows("nan 1.0").is_err(), "nan must be rejected");
        assert!(parse_rows("\n \n").expect("blank").is_empty());
    }
}
