//! The daemon's error type.
//!
//! Serving code handles untrusted input by definition — request bytes off a
//! socket, artifact bytes off disk that another process may be rewriting —
//! so every failure mode is a typed [`ServeError`] that degrades to an error
//! response (or a kept-serving old model), never a panic that takes the
//! process down.

use zsl_core::ZslError;

/// Everything that can go wrong between accepting a connection and writing
/// a response.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or filesystem operation failed.
    Io(std::io::Error),
    /// Loading or validating a `.zsm` model artifact failed; the full typed
    /// chain (`ZslError` → `DataError` → …) is preserved through `source()`.
    Model(ZslError),
    /// The client's request was malformed: bad HTTP framing, an unparsable
    /// feature value, a non-finite feature, or a row whose width disagrees
    /// with the model's feature dimension.
    Protocol(String),
    /// The batching worker shut down while a request was in flight — only
    /// observable during daemon shutdown.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Protocol(msg) => write!(f, "bad request: {msg}"),
            ServeError::Closed => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Protocol(_) | ServeError::Closed => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ZslError> for ServeError {
    fn from(e: ZslError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chains_reach_the_inner_model_error() {
        let top = ServeError::Model(ZslError::Config("bad bank".into()));
        let inner = top.source().expect("model source");
        assert!(inner.to_string().contains("bad bank"));
        assert!(ServeError::Protocol("x".into()).source().is_none());
        assert!(ServeError::Closed.source().is_none());
    }
}
