//! Lock-free serving counters.
//!
//! Every counter is a relaxed atomic: the stats are observability, not
//! synchronization, and the hot path must not pay for them. A
//! [`StatsSnapshot`] is a plain copy taken at read time — the acceptance
//! evidence that request coalescing actually happens under load
//! (`max_batch_rows > 1`) is read from here by tests and `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by the coalescer, the model watcher, and the HTTP layer.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// HTTP requests accepted (any route).
    requests: AtomicU64,
    /// Feature rows scored.
    rows: AtomicU64,
    /// Batches executed by the coalescing worker.
    batches: AtomicU64,
    /// Widest batch (in rows) executed so far.
    max_batch_rows: AtomicU64,
    /// Batches that coalesced more than one row — the whole point of the
    /// batching layer.
    coalesced_batches: AtomicU64,
    /// Successful hot-swap model reloads.
    reloads: AtomicU64,
    /// Failed reload attempts (old model kept serving).
    reload_failures: AtomicU64,
    /// Requests rejected with a protocol error.
    rejected: AtomicU64,
    /// Thread count the scoring engine was sized to at boot. A gauge, not a
    /// counter: set once when the server starts so `/stats` shows how the
    /// engine was sized (the fix for kernel threads oversubscribing CPU
    /// cores under concurrent request threads).
    engine_threads: AtomicU64,
    /// Threads in the process-wide linalg worker pool (including the
    /// submitting thread). Also a boot-time gauge.
    pool_threads: AtomicU64,
    /// Shard count of the installed engine's signature bank. A gauge,
    /// refreshed on every snapshot install (boot and each hot swap).
    bank_shards: AtomicU64,
    /// Heap bytes resident for the installed engine's bank (0 when the bank
    /// is borrowed from an mmap'd artifact). Refreshed on every install.
    bank_resident_bytes: AtomicU64,
    /// 1 when the installed engine borrows its bank from a memory-mapped
    /// artifact, 0 when the bank is heap-owned. Refreshed on every install.
    mmap_boot: AtomicU64,
}

/// One consistent-enough copy of the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub rows: u64,
    pub batches: u64,
    pub max_batch_rows: u64,
    pub coalesced_batches: u64,
    pub reloads: u64,
    pub reload_failures: u64,
    pub rejected: u64,
    pub engine_threads: u64,
    pub pool_threads: u64,
    pub bank_shards: u64,
    pub bank_resident_bytes: u64,
    pub mmap_boot: u64,
}

impl ServeStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one executed batch of `rows` coalesced rows.
    pub fn record_batch(&self, rows: usize) {
        let rows = rows as u64;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.max_batch_rows.fetch_max(rows, Ordering::Relaxed);
        if rows > 1 {
            self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Set the boot-time sizing gauges: the engine's kernel thread count and
    /// the shared linalg pool width. Called once by [`crate::Server::start`].
    pub fn set_thread_gauges(&self, engine_threads: usize, pool_threads: usize) {
        self.engine_threads
            .store(engine_threads as u64, Ordering::Relaxed);
        self.pool_threads
            .store(pool_threads as u64, Ordering::Relaxed);
    }

    /// Set the bank gauges for the engine just installed: shard count,
    /// heap-resident bank bytes, and whether the bank is mmap-borrowed.
    /// Called by the model handle on boot and on every successful hot swap,
    /// so `/stats` always describes the engine actually serving.
    pub fn set_bank_gauges(&self, shards: usize, resident_bytes: usize, mapped: bool) {
        self.bank_shards.store(shards as u64, Ordering::Relaxed);
        self.bank_resident_bytes
            .store(resident_bytes as u64, Ordering::Relaxed);
        self.mmap_boot.store(u64::from(mapped), Ordering::Relaxed);
    }

    pub fn record_reload(&self, ok: bool) {
        if ok {
            self.reloads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reload_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_rows: self.max_batch_rows.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            engine_threads: self.engine_threads.load(Ordering::Relaxed),
            pool_threads: self.pool_threads.load(Ordering::Relaxed),
            bank_shards: self.bank_shards.load(Ordering::Relaxed),
            bank_resident_bytes: self.bank_resident_bytes.load(Ordering::Relaxed),
            mmap_boot: self.mmap_boot.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// `key=value` lines, one per counter — the `/stats` response body.
    pub fn render(&self) -> String {
        format!(
            "requests={}\nrows={}\nbatches={}\nmax_batch_rows={}\ncoalesced_batches={}\n\
             reloads={}\nreload_failures={}\nrejected={}\nengine_threads={}\npool_threads={}\n\
             bank_shards={}\nbank_resident_bytes={}\nmmap_boot={}\n",
            self.requests,
            self.rows,
            self.batches,
            self.max_batch_rows,
            self.coalesced_batches,
            self.reloads,
            self.reload_failures,
            self.rejected,
            self.engine_threads,
            self.pool_threads,
            self.bank_shards,
            self.bank_resident_bytes,
            self.mmap_boot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_tracks_width_and_coalescing() {
        let stats = ServeStats::new();
        stats.record_batch(1);
        stats.record_batch(7);
        stats.record_batch(3);
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.rows, 11);
        assert_eq!(snap.max_batch_rows, 7);
        assert_eq!(snap.coalesced_batches, 2);
        assert!(snap.render().contains("max_batch_rows=7"));
    }

    #[test]
    fn thread_gauges_are_set_once_and_rendered() {
        let stats = ServeStats::new();
        assert_eq!(stats.snapshot().engine_threads, 0);
        stats.set_thread_gauges(3, 4);
        let snap = stats.snapshot();
        assert_eq!(snap.engine_threads, 3);
        assert_eq!(snap.pool_threads, 4);
        assert!(snap.render().contains("engine_threads=3"));
        assert!(snap.render().contains("pool_threads=4"));
    }

    #[test]
    fn bank_gauges_track_each_install_and_render() {
        let stats = ServeStats::new();
        stats.set_bank_gauges(4, 8192, false);
        let snap = stats.snapshot();
        assert_eq!(snap.bank_shards, 4);
        assert_eq!(snap.bank_resident_bytes, 8192);
        assert_eq!(snap.mmap_boot, 0);
        stats.set_bank_gauges(1, 0, true);
        let snap = stats.snapshot();
        assert_eq!(snap.bank_resident_bytes, 0);
        assert_eq!(snap.mmap_boot, 1);
        assert!(snap.render().contains("bank_shards=1"));
        assert!(snap.render().contains("bank_resident_bytes=0"));
        assert!(snap.render().contains("mmap_boot=1"));
    }
}
