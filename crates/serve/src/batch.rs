//! The request coalescer: turns concurrent single-row predictions into one
//! wide matrix so the row-banded parallel matmul kernels actually see the
//! batch shapes they were built for.
//!
//! A single-row score is almost pure overhead for the chunked kernels —
//! ZSpeedL's framing (inference-time performance as a first-class metric)
//! is why the serving layer batches at the front door instead of scoring
//! rows as they arrive. Mechanics:
//!
//! - Request threads [`Coalescer::predict`]: enqueue one row + a response
//!   channel, wake the worker, block on the reply.
//! - The worker drains the queue, **lingers** up to
//!   [`BatchConfig::linger`] for stragglers (or until
//!   [`BatchConfig::max_batch`] rows), snapshots the current model
//!   **once**, scores the whole batch through
//!   [`zsl_core::ScoringEngine::predict_topk`], and fans results back out.
//! - One model snapshot per batch means a hot swap never splits a batch
//!   across two models.
//!
//! Rows whose width disagrees with the snapshot's feature dimension get a
//! typed per-row error — the rest of the batch still scores. Nothing in
//! this module can panic on request data.

use crate::error::ServeError;
use crate::model::{ModelHandle, ModelSnapshot};
use crate::stats::ServeStats;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use zsl_core::{Matrix, TopK};

/// Tunables for the coalescing worker.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Hard cap on rows per scored batch. Default 256.
    pub max_batch: usize,
    /// How long a non-empty batch waits for more rows before scoring.
    /// Default 200µs — enough for concurrent arrivals to pile up, far below
    /// human-visible latency.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 256,
            linger: Duration::from_micros(200),
        }
    }
}

/// One scored row, fanned back to the requesting thread.
#[derive(Clone, Debug)]
pub struct RowResult {
    /// Argmax class (ties and NaN ordering exactly as
    /// [`zsl_core::ScoringEngine::predict`]).
    pub class: usize,
    /// The requested top-`k` ranking, `k` clamped to the class count
    /// (`k = 0` yields an empty ranking).
    pub topk: TopK,
    /// Generation of the model that scored this row.
    pub generation: u64,
}

struct Pending {
    row: Vec<f64>,
    k: usize,
    reply: mpsc::Sender<Result<RowResult, ServeError>>,
}

#[derive(Default)]
struct Queue {
    pending: Vec<Pending>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    arrived: Condvar,
    model: Arc<ModelHandle>,
    stats: Arc<ServeStats>,
    config: BatchConfig,
}

/// Handle to the coalescing worker. Dropping it shuts the worker down after
/// the queue drains; in-flight requests then observe [`ServeError::Closed`].
pub struct Coalescer {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Coalescer {
    /// Spawn the batching worker over `model`.
    pub fn start(model: Arc<ModelHandle>, stats: Arc<ServeStats>, config: BatchConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue::default()),
            arrived: Condvar::new(),
            model,
            stats,
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                linger: config.linger,
            },
        });
        let worker_inner = inner.clone();
        let worker = std::thread::Builder::new()
            .name("zsl-serve-batcher".into())
            .spawn(move || worker_loop(&worker_inner))
            .expect("spawn batcher thread");
        Coalescer {
            inner,
            worker: Some(worker),
        }
    }

    /// Enqueue one row without blocking; the returned channel yields the
    /// result. Multi-row requests enqueue every row first (one queue lock
    /// each, all visible to the same worker pass) and only then collect, so
    /// a request's own rows coalesce with each other *and* with concurrent
    /// requests.
    pub fn enqueue(
        &self,
        row: Vec<f64>,
        k: usize,
    ) -> mpsc::Receiver<Result<RowResult, ServeError>> {
        let (reply, rx) = mpsc::channel();
        let mut queue = self.inner.queue.lock().expect("queue poisoned");
        if queue.shutdown {
            reply.send(Err(ServeError::Closed)).ok();
        } else {
            queue.pending.push(Pending { row, k, reply });
            self.inner.arrived.notify_all();
        }
        rx
    }

    /// Score one row, blocking until its batch executes.
    pub fn predict(&self, row: Vec<f64>, k: usize) -> Result<RowResult, ServeError> {
        self.enqueue(row, k)
            .recv()
            .unwrap_or(Err(ServeError::Closed))
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue poisoned");
            queue.shutdown = true;
            self.inner.arrived.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

/// Should the worker linger for stragglers before scoring? Only when the
/// rows are *fresh* — the queue was empty when this pass began — and the
/// batch still has room. Leftover rows from a previous over-full drain have
/// already waited one full linger + score cycle, and a queue that woke
/// already at `max_batch` can't grow its batch: lingering in either case
/// only adds dead latency. (This was a real bug: rows 257..N of a burst
/// paid the linger again on every drain pass.)
fn should_linger(queue_was_empty: bool, pending: usize, max_batch: usize) -> bool {
    queue_was_empty && pending < max_batch
}

fn worker_loop(inner: &Inner) {
    loop {
        let mut queue = inner.queue.lock().expect("queue poisoned");
        let queue_was_empty = queue.pending.is_empty();
        while queue.pending.is_empty() && !queue.shutdown {
            queue = inner.arrived.wait(queue).expect("queue poisoned");
        }
        if queue.pending.is_empty() && queue.shutdown {
            return;
        }
        // Linger: give concurrent requests a short window to join this
        // batch, bounded by max_batch. Shutdown skips the linger so the
        // drain is prompt; so do leftover rows and already-full queues
        // (see `should_linger`).
        if !queue.shutdown
            && should_linger(queue_was_empty, queue.pending.len(), inner.config.max_batch)
        {
            let deadline = Instant::now() + inner.config.linger;
            while queue.pending.len() < inner.config.max_batch && !queue.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = inner
                    .arrived
                    .wait_timeout(queue, deadline - now)
                    .expect("queue poisoned");
                queue = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = queue.pending.len().min(inner.config.max_batch);
        let batch: Vec<Pending> = queue.pending.drain(..take).collect();
        drop(queue);
        score_batch(inner, batch);
    }
}

/// Score one coalesced batch against ONE model snapshot and fan results out.
fn score_batch(inner: &Inner, batch: Vec<Pending>) {
    let snapshot: Arc<ModelSnapshot> = inner.model.snapshot();
    let d = snapshot.engine.feature_dim();
    let z = snapshot.engine.num_classes();

    // Reject width-mismatched rows per row; everything else forms the batch
    // matrix. (Width can legitimately change between enqueue and scoring if
    // a hot swap replaced the model with one from a different feature
    // space — that must be an error response, not a panic.)
    let mut rows = Vec::new();
    let mut flat = Vec::new();
    for pending in batch {
        if pending.row.len() == d {
            flat.extend_from_slice(&pending.row);
            rows.push(pending);
        } else {
            let got = pending.row.len();
            pending
                .reply
                .send(Err(ServeError::Protocol(format!(
                    "feature row has {got} values but the model expects {d}"
                ))))
                .ok();
        }
    }
    if rows.is_empty() {
        return;
    }

    let x = Matrix::from_vec(rows.len(), d, flat);
    // One kernel call wide enough for the largest request; k >= 1 so the
    // ranking's head doubles as the argmax (same total_cmp order, same
    // first-index tie-break as `predict`).
    let k_max = rows.iter().map(|p| p.k).max().unwrap_or(1).clamp(1, z);
    let ranked = snapshot.engine.predict_topk(&x, k_max);
    inner.stats.record_batch(rows.len());

    for (pending, full) in rows.into_iter().zip(ranked) {
        let keep = pending.k.min(z);
        let result = RowResult {
            class: full.classes[0],
            topk: TopK {
                classes: full.classes[..keep].to_vec(),
                scores: full.scores[..keep].to_vec(),
            },
            generation: snapshot.generation,
        };
        pending.reply.send(Ok(result)).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use zsl_core::data::Rng;
    use zsl_core::model::ProjectionModel;
    use zsl_core::{ScoringEngine, Similarity};

    fn artifact(tag: &str, seed: u64, d: usize, z: usize) -> (PathBuf, ScoringEngine) {
        let path =
            std::env::temp_dir().join(format!("zsl_serve_batch_{}_{tag}.zsm", std::process::id()));
        let mut rng = Rng::new(seed);
        let a = 3;
        let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
        let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
        let engine = ScoringEngine::new(ProjectionModel::from_weights(w), bank, Similarity::Cosine);
        engine.save(&path).expect("save");
        (path, engine)
    }

    fn start(path: &std::path::Path, config: BatchConfig) -> (Coalescer, Arc<ServeStats>) {
        let stats = Arc::new(ServeStats::new());
        let model = Arc::new(ModelHandle::boot(path, stats.clone()).expect("boot"));
        (Coalescer::start(model, stats.clone(), config), stats)
    }

    #[test]
    fn single_row_results_match_direct_engine_calls() {
        let (path, engine) = artifact("direct", 11, 4, 6);
        let (coalescer, _) = start(&path, BatchConfig::default());
        let mut rng = Rng::new(5);
        for _ in 0..8 {
            let row: Vec<f64> = (0..4).map(|_| rng.normal()).collect();
            let got = coalescer.predict(row.clone(), 3).expect("predict");
            let x = Matrix::from_vec(1, 4, row);
            assert_eq!(got.class, engine.predict(&x)[0]);
            assert_eq!(got.topk, engine.predict_topk(&x, 3)[0]);
            assert_eq!(got.generation, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn k_zero_and_k_beyond_class_count_clamp() {
        let (path, engine) = artifact("clamp", 12, 3, 4);
        let (coalescer, _) = start(&path, BatchConfig::default());
        let row = vec![0.5, -1.0, 2.0];
        let x = Matrix::from_vec(1, 3, row.clone());

        let empty = coalescer.predict(row.clone(), 0).expect("k=0");
        assert_eq!(empty.class, engine.predict(&x)[0]);
        assert!(empty.topk.classes.is_empty() && empty.topk.scores.is_empty());

        let all = coalescer.predict(row, 99).expect("k>z");
        assert_eq!(all.topk, engine.predict_topk(&x, 99)[0]);
        assert_eq!(all.topk.classes.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn width_mismatch_is_a_per_row_protocol_error() {
        let (path, _) = artifact("width", 13, 4, 5);
        let (coalescer, stats) = start(&path, BatchConfig::default());
        // Wrong-width row errors; a good row in the same window still scores.
        let bad = coalescer.enqueue(vec![1.0, 2.0], 1);
        let good = coalescer.enqueue(vec![1.0, 2.0, 3.0, 4.0], 1);
        assert!(matches!(
            bad.recv().expect("reply"),
            Err(ServeError::Protocol(_))
        ));
        assert!(good.recv().expect("reply").is_ok());
        assert_eq!(stats.snapshot().rows, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enqueued_rows_coalesce_into_one_batch() {
        let (path, engine) = artifact("widebatch", 14, 4, 5);
        // Generous linger so all enqueues land in the first worker pass.
        let (coalescer, stats) = start(
            &path,
            BatchConfig {
                max_batch: 64,
                linger: Duration::from_millis(100),
            },
        );
        let mut rng = Rng::new(6);
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|_| (0..4).map(|_| rng.normal()).collect())
            .collect();
        let receivers: Vec<_> = rows
            .iter()
            .map(|row| coalescer.enqueue(row.clone(), 1))
            .collect();
        for (row, rx) in rows.iter().zip(receivers) {
            let got = rx.recv().expect("reply").expect("scored");
            let x = Matrix::from_vec(1, 4, row.clone());
            assert_eq!(got.class, engine.predict(&x)[0]);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.rows, 10);
        assert!(snap.max_batch_rows > 1, "rows never coalesced: {snap:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn linger_decision_skips_leftovers_and_full_queues() {
        // Fresh rows with room to grow: linger.
        assert!(should_linger(true, 1, 256));
        assert!(should_linger(true, 255, 256));
        // Woke to an already-full (or over-full) queue: score immediately.
        assert!(!should_linger(true, 256, 256));
        assert!(!should_linger(true, 300, 256));
        // Leftovers from a previous over-full drain: score immediately.
        assert!(!should_linger(false, 1, 256));
        assert!(!should_linger(false, 300, 256));
    }

    #[test]
    fn leftover_rows_after_a_full_drain_skip_the_linger() {
        let (path, _) = artifact("leftover", 16, 4, 5);
        // 6 rows against max_batch=2 force three drain passes. With the old
        // linger (re-waited on every pass), passes 2 and 3 each burned the
        // full 400ms window on an idle queue: >= 800ms total. Fixed, only
        // the first (fresh) pass may linger, and it ends early once the
        // queue hits max_batch.
        let (coalescer, stats) = start(
            &path,
            BatchConfig {
                max_batch: 2,
                linger: Duration::from_millis(400),
            },
        );
        let started = Instant::now();
        let receivers: Vec<_> = (0..6)
            .map(|_| coalescer.enqueue(vec![0.25; 4], 1))
            .collect();
        for rx in receivers {
            rx.recv().expect("reply").expect("scored");
        }
        let elapsed = started.elapsed();
        let snap = stats.snapshot();
        assert_eq!(snap.rows, 6);
        assert!(
            elapsed < Duration::from_millis(750),
            "leftover rows re-lingered: 6 rows at max_batch=2 took {elapsed:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shutdown_drains_queue_then_rejects() {
        let (path, _) = artifact("shutdown", 15, 4, 5);
        let (coalescer, _) = start(&path, BatchConfig::default());
        let rx = coalescer.enqueue(vec![0.0; 4], 1);
        drop(coalescer); // drains the queue, then joins the worker
        assert!(rx.recv().expect("drained reply").is_ok());
        std::fs::remove_file(&path).ok();
    }
}
