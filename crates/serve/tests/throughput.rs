//! Release-mode serving-latency harness, mirroring the core crate's
//! `tests/throughput.rs` discipline: `#[ignore]`d, run with
//!
//! ```sh
//! cargo test --release -p zsl-serve --test throughput -- --ignored --nocapture
//! ```
//!
//! `ZSL_BENCH_SMOKE=1` (CI) shrinks the workload. Each run prints stable
//! `[bench]`-prefixed lines — per-request p50/p99 latency and end-to-end
//! throughput through the full socket → parse → coalesce → kernel →
//! respond path — so future serving PRs diff against this baseline.
//! Setting `ZSL_BENCH_JSON=<path>` additionally writes the numbers as a
//! JSON snapshot (the committed `BENCH_serving.json` trajectory).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zsl_core::data::Rng;
use zsl_core::model::ProjectionModel;
use zsl_core::{Matrix, ScoringEngine, Similarity};
use zsl_serve::{BatchConfig, Server, ServerConfig};

struct Workload {
    d: usize,
    a: usize,
    z: usize,
    clients: usize,
    requests_per_client: usize,
}

fn smoke() -> bool {
    std::env::var("ZSL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workload() -> Workload {
    if smoke() {
        Workload {
            d: 128,
            a: 32,
            z: 64,
            clients: 4,
            requests_per_client: 50,
        }
    } else {
        Workload {
            d: 512,
            a: 64,
            z: 256,
            clients: 8,
            requests_per_client: 250,
        }
    }
}

/// One keep-alive client connection issuing single-row predicts and timing
/// each round trip.
fn client_loop(
    addr: SocketAddr,
    engine: &ScoringEngine,
    seed: u64,
    requests: usize,
) -> Vec<Duration> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).ok();
    let mut rng = Rng::new(seed);
    let d = engine.feature_dim();
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let row: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
        let body = row
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(" ")
            + "\n";
        let request = format!(
            "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let start = Instant::now();
        stream.write_all(request.as_bytes()).expect("write");
        let response = read_one_response(&mut stream);
        latencies.push(start.elapsed());
        // Correctness inside the bench: the served class is the engine's.
        let x = Matrix::from_vec(1, d, row);
        let expected = format!("class={} ", engine.predict(&x)[0]);
        assert!(
            response.starts_with(&expected),
            "served wrong class: {response} (expected {expected})"
        );
    }
    latencies
}

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut header = Vec::new();
    let mut one = [0u8; 1];
    while !header.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut one).expect("read header");
        header.push(one[0]);
    }
    let text = String::from_utf8(header).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    let length: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("length")
        .trim()
        .parse()
        .expect("parse length");
    let mut payload = vec![0u8; length];
    stream.read_exact(&mut payload).expect("read body");
    String::from_utf8(payload).expect("utf8 body")
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn serving_latency_and_throughput_under_concurrent_load() {
    let w = workload();
    let mut rng = Rng::new(0x5E12);
    let weights = Matrix::from_vec(w.d, w.a, (0..w.d * w.a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(w.z, w.a, (0..w.z * w.a).map(|_| rng.normal()).collect());
    let engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );
    let path = std::env::temp_dir().join(format!("zsl_serve_bench_{}.zsm", std::process::id()));
    engine.save(&path).expect("save");

    let batch = BatchConfig {
        max_batch: 256,
        linger: Duration::from_micros(200),
    };
    let server = Server::start(
        &path,
        ServerConfig {
            batch,
            watch_interval: None,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();
    let engine = Arc::new(engine);

    // Warm-up: one request per client's worth of connections.
    client_loop(addr, &engine, 1, 2);

    let wall = Instant::now();
    let handles: Vec<_> = (0..w.clients)
        .map(|c| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                client_loop(addr, &engine, 0xC0FE + c as u64, w.requests_per_client)
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client"))
        .collect();
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let total = latencies.len();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = total as f64 / elapsed;
    let stats = server.stats();
    println!(
        "[bench] serving d={} a={} z={} clients={} requests={} batch(max={},linger={}us): \
         p50={:.3}ms p99={:.3}ms throughput={:.0} req/s max_batch_rows={} coalesced_batches={}",
        w.d,
        w.a,
        w.z,
        w.clients,
        total,
        batch.max_batch,
        batch.linger.as_micros(),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        throughput,
        stats.max_batch_rows,
        stats.coalesced_batches,
    );

    // Acceptance: under concurrent load the coalescer must actually form
    // wide batches — single-row scoring wastes the row-banded kernels.
    if w.clients > 1 {
        assert!(
            stats.max_batch_rows > 1,
            "no batch ever coalesced more than one row: {stats:?}"
        );
    }

    if let Ok(json_path) = std::env::var("ZSL_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"serving\",\n  \"smoke\": {},\n  \"workload\": {{ \"d\": {}, \
             \"a\": {}, \"z\": {}, \"clients\": {}, \"requests\": {} }},\n  \"batch\": {{ \
             \"max_batch\": {}, \"linger_us\": {} }},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \
             \"throughput_rps\": {:.1},\n  \"max_batch_rows\": {},\n  \"coalesced_batches\": {}\n}}\n",
            smoke(),
            w.d,
            w.a,
            w.z,
            w.clients,
            total,
            batch.max_batch,
            batch.linger.as_micros(),
            p50.as_micros(),
            p99.as_micros(),
            throughput,
            stats.max_batch_rows,
            stats.coalesced_batches,
        );
        std::fs::write(&json_path, json).expect("write bench json");
        println!("[bench] wrote {json_path}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn hot_swap_latency_is_bounded_by_one_artifact_load() {
    // How long does a reload take, i.e. how stale can a swapped model be?
    // The bound a deployment cares about: watcher interval + this.
    let w = workload();
    let mut rng = Rng::new(0x5A7E);
    let weights = Matrix::from_vec(w.d, w.a, (0..w.d * w.a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(w.z, w.a, (0..w.z * w.a).map(|_| rng.normal()).collect());
    let engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );
    let path = std::env::temp_dir().join(format!("zsl_swap_bench_{}.zsm", std::process::id()));
    engine.save(&path).expect("save");
    let server = Server::start(
        &path,
        ServerConfig {
            watch_interval: None,
            ..ServerConfig::default()
        },
    )
    .expect("start");

    let iters = if smoke() { 3 } else { 10 };
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        server.model().reload().expect("reload");
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!(
        "[bench] hot-swap d={} a={} z={} artifact={:.1} KiB: reload={:.3}ms",
        w.d,
        w.a,
        w.z,
        std::fs::metadata(&path).expect("meta").len() as f64 / 1024.0,
        best * 1e3
    );
    std::fs::remove_file(&path).ok();
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn mmap_sharded_boot_and_reload_latency() {
    // The large-class-axis serving mode: boot via mmap (zero-copy bank) with
    // the bank sharded for streaming top-k, and measure what a hot swap
    // costs in that mode — the staleness bound for a daemon fronting a bank
    // too large to want on the heap.
    let w = workload();
    let z_big = if smoke() { 512 } else { 4096 };
    let shards = 8usize;
    let mut rng = Rng::new(0x3A99);
    let weights = Matrix::from_vec(w.d, w.a, (0..w.d * w.a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(z_big, w.a, (0..z_big * w.a).map(|_| rng.normal()).collect());
    let engine = ScoringEngine::new(
        ProjectionModel::from_weights(weights),
        bank,
        Similarity::Cosine,
    );
    let path = std::env::temp_dir().join(format!("zsl_mmap_bench_{}.zsm", std::process::id()));
    engine.save(&path).expect("save");
    let server = Server::start(
        &path,
        ServerConfig {
            watch_interval: None,
            mmap_boot: true,
            bank_shards: Some(shards),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let stats = server.stats();
    assert!(stats.bank_shards >= 1, "shard gauge never published");
    if cfg!(all(unix, target_endian = "little")) {
        assert_eq!(stats.mmap_boot, 1, "aligned artifact must boot mapped");
    }

    // Served bits must match direct engine scoring in this mode too.
    let addr = server.addr();
    client_loop(addr, &engine, 0xBEA7, 3);

    let iters = if smoke() { 3 } else { 10 };
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        server.model().reload().expect("reload");
        best = best.min(t.elapsed().as_secs_f64());
    }
    let stats = server.stats();
    println!(
        "[bench] mmap-sharded-boot d={} a={} z={} shards={} artifact={:.1} KiB \
         mmap_boot={} bank_resident={:.1} KiB: reload={:.3}ms",
        w.d,
        w.a,
        z_big,
        stats.bank_shards,
        std::fs::metadata(&path).expect("meta").len() as f64 / 1024.0,
        stats.mmap_boot,
        stats.bank_resident_bytes as f64 / 1024.0,
        best * 1e3
    );
    std::fs::remove_file(&path).ok();
}
