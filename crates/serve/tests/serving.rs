//! End-to-end tests of the serving daemon over real sockets.
//!
//! Every test boots a [`Server`] from a `.zsm` artifact alone (the daemon's
//! entire state) and speaks plain HTTP/1.1 to it through `TcpStream`. The
//! acceptance-critical properties pinned here:
//!
//! - served predictions are **bit-identical** to direct
//!   [`ScoringEngine::predict`] / [`predict_topk`] calls (scores render in
//!   shortest-round-trip form, so equal text ⇒ equal bits);
//! - under concurrent single-row load, the coalescer forms batches of
//!   width > 1 (`max_batch_rows` in `/stats`);
//! - hot-swap reload never serves a partial or blended model: while a
//!   writer re-saves the artifact in a loop, every response matches one of
//!   the complete models exactly;
//! - untrusted input (bad floats, wrong widths, bogus routes, corrupt
//!   artifacts) produces typed 4xx/5xx responses, never a dead daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use zsl_core::data::Rng;
use zsl_core::model::ProjectionModel;
use zsl_core::trainer::{KernelEszslConfig, KernelKind, SaeConfig, Trainer};
use zsl_core::{Matrix, ScoringEngine, Similarity, SyntheticConfig};
use zsl_serve::{BatchConfig, Server, ServerConfig};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn temp_artifact(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zsl_serving_{}_{tag}.zsm", std::process::id()))
}

fn random_engine(seed: u64, d: usize, a: usize, z: usize, sim: Similarity) -> ScoringEngine {
    let mut rng = Rng::new(seed);
    let w = Matrix::from_vec(d, a, (0..d * a).map(|_| rng.normal()).collect());
    let bank = Matrix::from_vec(z, a, (0..z * a).map(|_| rng.normal()).collect());
    ScoringEngine::new(ProjectionModel::from_weights(w), bank, sim)
}

/// One-shot HTTP client: send a request with `Connection: close`, return
/// `(status, body)`.
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in: {response}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, "GET", target, "")
}

/// Render the reference response line exactly as the daemon does, from a
/// direct engine call.
fn expected_line(engine: &ScoringEngine, row: &[f64], k: usize, generation: u64) -> String {
    let x = Matrix::from_vec(1, row.len(), row.to_vec());
    let class = engine.predict(&x)[0];
    let ranked = &engine.predict_topk(&x, k.max(1))[0];
    let keep = k.min(engine.num_classes());
    let topk: Vec<String> = ranked.classes[..keep]
        .iter()
        .zip(&ranked.scores[..keep])
        .map(|(c, s)| format!("{c}:{s}"))
        .collect();
    format!(
        "class={class} generation={generation} topk={}",
        topk.join(",")
    )
}

// ---------------------------------------------------------------------------
// Boot + correctness
// ---------------------------------------------------------------------------

#[test]
fn daemon_boots_from_artifact_alone_and_serves_bit_identical_predictions() {
    let path = temp_artifact("boot");
    let engine = random_engine(101, 5, 3, 7, Similarity::Cosine);
    engine
        .save_with_metadata(&path, "trainer=test; seed=101")
        .expect("save");
    let server = Server::start(&path, ServerConfig::default()).expect("start");
    // The artifact can disappear after boot — the daemon holds the model in
    // memory; nothing else on the box is consulted per request.
    std::fs::remove_file(&path).expect("remove artifact");

    let (status, body) = get(server.addr(), "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(server.addr(), "/model");
    assert_eq!(status, 200);
    assert!(body.contains("generation=1"), "{body}");
    assert!(body.contains("feature_dim=5"), "{body}");
    assert!(body.contains("classes=7"), "{body}");
    assert!(body.contains("metadata=trainer=test; seed=101"), "{body}");

    // Multi-row predict: every line bit-identical to the direct engine call.
    let mut rng = Rng::new(7);
    let rows: Vec<Vec<f64>> = (0..9)
        .map(|_| (0..5).map(|_| rng.normal()).collect())
        .collect();
    let payload: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let (status, body) = http(
        server.addr(),
        "POST",
        "/predict?k=4",
        &(payload.join("\n") + "\n"),
    );
    assert_eq!(status, 200, "{body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), rows.len());
    for (row, line) in rows.iter().zip(lines) {
        assert_eq!(line, expected_line(&engine, row, 4, 1));
    }
}

#[test]
fn daemon_boots_every_model_family_from_its_artifact_alone() {
    // The daemon knows nothing about trainers: the `.zsm` family tag alone
    // must reconstruct an SAE projection and a kernelized (dual-form)
    // scorer, and both serve bit-identical to the in-process engine.
    let ds = SyntheticConfig::new()
        .classes(6, 2)
        .dims(4, 5)
        .samples(4, 3)
        .noise(0.05)
        .seed(0xFA01)
        .build();
    let trainers: [(&str, Box<dyn Trainer>); 2] = [
        ("sae", Box::new(SaeConfig::new().lambda(0.7).build())),
        (
            "kernel-eszsl",
            Box::new(
                KernelEszslConfig::new()
                    .kernel(KernelKind::Rbf { width: 0.25 })
                    .max_anchors(8)
                    .build(),
            ),
        ),
    ];
    for (family, trainer) in trainers {
        let model = trainer.fit(&ds).expect("fit");
        let engine = ScoringEngine::new(model, ds.all_signatures(), Similarity::Cosine);
        let path = temp_artifact(&format!("family_{family}"));
        engine
            .save_with_metadata(&path, &trainer.describe())
            .expect("save");
        let server = Server::start(&path, ServerConfig::default()).expect("start");
        // Artifact alone: nothing else on disk is consulted per request.
        std::fs::remove_file(&path).expect("remove artifact");

        let (status, body) = get(server.addr(), "/model");
        assert_eq!(status, 200, "{family}: {body}");
        assert!(
            body.contains(&format!("family={family}")),
            "{family}: {body}"
        );
        assert!(body.contains("feature_dim=5"), "{family}: {body}");
        assert!(
            body.contains(&format!("metadata={}", trainer.describe())),
            "{family}: {body}"
        );

        let mut rng = Rng::new(0xB007);
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..5).map(|_| rng.normal()).collect())
            .collect();
        let payload: Vec<String> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let (status, body) = http(
            server.addr(),
            "POST",
            "/predict?k=3",
            &(payload.join("\n") + "\n"),
        );
        assert_eq!(status, 200, "{family}: {body}");
        for (row, line) in rows.iter().zip(body.lines()) {
            assert_eq!(line, expected_line(&engine, row, 3, 1), "{family}");
        }
    }
}

#[test]
fn topk_edge_cases_k_zero_and_k_beyond_class_count() {
    let path = temp_artifact("edges");
    let engine = random_engine(102, 3, 2, 4, Similarity::Dot);
    engine.save(&path).expect("save");
    let server = Server::start(&path, ServerConfig::default()).expect("start");

    // k=0: the argmax class still comes back, the ranking is empty.
    let (status, body) = http(server.addr(), "POST", "/predict?k=0", "1.0 -2.0 0.5\n");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body.trim_end(),
        expected_line(&engine, &[1.0, -2.0, 0.5], 0, 1)
    );
    assert!(body.trim_end().ends_with("topk="), "{body}");

    // k far beyond the class count clamps to all 4 classes.
    let (status, body) = http(server.addr(), "POST", "/predict?k=1000", "1.0 -2.0 0.5\n");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body.trim_end(),
        expected_line(&engine, &[1.0, -2.0, 0.5], 1000, 1)
    );
    assert_eq!(
        body.trim_end().split(':').count(),
        5,
        "4 ranked entries: {body}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn untrusted_input_gets_typed_responses_and_the_daemon_survives() {
    let path = temp_artifact("untrusted");
    random_engine(103, 4, 3, 5, Similarity::Cosine)
        .save(&path)
        .expect("save");
    let server = Server::start(&path, ServerConfig::default()).expect("start");
    let addr = server.addr();

    for (what, (status, body)) in [
        (
            "bad float",
            http(addr, "POST", "/predict", "1.0 abc 2.0 3.0\n"),
        ),
        (
            "non-finite",
            http(addr, "POST", "/predict", "1e999 0 0 0\n"),
        ),
        ("nan", http(addr, "POST", "/predict", "nan 0 0 0\n")),
        ("wrong width", http(addr, "POST", "/predict", "1.0 2.0\n")),
        ("empty body", http(addr, "POST", "/predict", "\n")),
        ("bad k", http(addr, "POST", "/predict?k=x", "1 2 3 4\n")),
        (
            "bad param",
            http(addr, "POST", "/predict?kk=2", "1 2 3 4\n"),
        ),
        ("bad route", get(addr, "/nope")),
        ("bad method", http(addr, "DELETE", "/predict", "")),
    ] {
        assert_eq!(status, 400, "{what}: {body}");
        assert!(!body.is_empty(), "{what}: empty error body");
    }

    // And the daemon still serves after all of that.
    let (status, _) = http(addr, "POST", "/predict", "1 2 3 4\n");
    assert_eq!(status, 200);
    assert!(server.stats().rejected >= 9);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Coalescing under concurrent load
// ---------------------------------------------------------------------------

#[test]
fn concurrent_single_row_requests_coalesce_into_wide_batches() {
    let path = temp_artifact("coalesce");
    let engine = random_engine(104, 6, 3, 8, Similarity::Cosine);
    engine.save(&path).expect("save");
    // A generous linger makes batch formation deterministic enough to pin:
    // all clients arrive within the window, far under the 50ms linger.
    let server = Server::start(
        &path,
        ServerConfig {
            batch: BatchConfig {
                max_batch: 64,
                linger: Duration::from_millis(50),
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = barrier.clone();
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(0x600D + c as u64);
                let row: Vec<f64> = (0..6).map(|_| rng.normal()).collect();
                let payload = row
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                barrier.wait();
                let (status, body) = http(addr, "POST", "/predict?k=2", &(payload + "\n"));
                assert_eq!(status, 200, "{body}");
                assert_eq!(body.trim_end(), expected_line(&engine, &row, 2, 1));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client");
    }

    let stats = server.stats();
    assert_eq!(stats.rows, clients as u64);
    assert!(
        stats.max_batch_rows > 1,
        "coalescer never formed a batch wider than one row: {stats:?}"
    );
    assert!(stats.coalesced_batches >= 1, "{stats:?}");
    // The /stats route reports the same numbers.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("max_batch_rows={}", stats.max_batch_rows)),
        "{body}"
    );
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Hot-swap reload
// ---------------------------------------------------------------------------

/// Two same-shape models whose responses to a probe differ, so every served
/// line attributes itself to exactly one complete model.
fn swap_pair() -> (ScoringEngine, ScoringEngine) {
    let bank = Matrix::identity(2);
    let to_class_0 =
        ProjectionModel::from_weights(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]));
    let to_class_1 =
        ProjectionModel::from_weights(Matrix::from_rows(&[vec![-1.0, 0.0], vec![0.0, 1.0]]));
    (
        ScoringEngine::new(to_class_0, bank.clone(), Similarity::Dot),
        ScoringEngine::new(to_class_1, bank, Similarity::Dot),
    )
}

#[test]
fn hot_swap_under_concurrent_resaves_never_serves_a_partial_or_blended_model() {
    let path = temp_artifact("hotswap");
    let (model_a, model_b) = swap_pair();
    model_a
        .save_with_metadata(&path, "model=a")
        .expect("save a");
    let server = Server::start(
        &path,
        ServerConfig {
            watch_interval: Some(Duration::from_millis(3)),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();
    let probe = [0.7, 0.4];

    // The only two responses a correct daemon can ever produce (generation
    // varies; strip it before comparing).
    let strip_generation = |line: &str| -> String {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        parts.retain(|p| !p.starts_with("generation="));
        parts.join(" ")
    };
    let legal: Vec<String> = [&model_a, &model_b]
        .iter()
        .map(|m| strip_generation(&expected_line(m, &probe, 2, 1)))
        .collect();
    assert_ne!(legal[0], legal[1], "swap pair must be distinguishable");

    let stop = Arc::new(AtomicBool::new(false));
    // Writer: hammer the artifact path with alternating full re-saves —
    // exactly the hot-swap retrainer scenario the unique-temp-name fix
    // covers (plus extra writers below in the core race test).
    let writer = {
        let path = path.clone();
        let stop = stop.clone();
        let (model_a, model_b) = (model_a.clone(), model_b.clone());
        std::thread::spawn(move || {
            for i in 0..60 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let (model, tag) = if i % 2 == 0 {
                    (&model_b, "model=b")
                } else {
                    (&model_a, "model=a")
                };
                model.save_with_metadata(&path, tag).expect("re-save");
                std::thread::sleep(Duration::from_millis(4));
            }
        })
    };

    // Readers: every response must match one of the two complete models,
    // bit for bit — never an error, never a mixture.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let legal = legal.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut observed = std::collections::HashSet::new();
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) = http(addr, "POST", "/predict?k=2", "0.7 0.4\n");
                    assert_eq!(status, 200, "serving failed mid-swap: {body}");
                    let line = strip_generation(body.trim_end());
                    assert!(
                        legal.contains(&line),
                        "served a blended/partial model: {line:?} not in {legal:?}"
                    );
                    observed.insert(line);
                }
                observed.len()
            })
        })
        .collect();

    writer.join().expect("writer");
    // Give the watcher one more interval to settle, then stop the readers.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let distinct: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader"))
        .max()
        .unwrap();

    let stats = server.stats();
    assert!(
        stats.reloads >= 2,
        "watcher never actually swapped models: {stats:?}"
    );
    assert_eq!(stats.reload_failures, 0, "{stats:?}");
    assert!(
        distinct == 2 || stats.reloads < 2,
        "swaps happened but readers only ever saw one model"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_reload_keeps_serving_the_old_model() {
    let path = temp_artifact("badreload");
    let engine = random_engine(105, 4, 2, 3, Similarity::Dot);
    engine.save_with_metadata(&path, "good").expect("save");
    // Watcher disabled: reloads only happen through POST /reload, so the
    // failure timing is deterministic.
    let server = Server::start(
        &path,
        ServerConfig {
            watch_interval: None,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    // Corrupt the artifact *in place* (bypassing the atomic save path).
    std::fs::write(&path, b"ZSMF garbage").expect("corrupt");
    let (status, body) = http(addr, "POST", "/reload", "");
    assert_eq!(status, 503, "{body}");

    // The boot model keeps serving, bit-identically.
    let (status, body) = http(addr, "POST", "/predict", "1 2 3 4\n");
    assert_eq!(status, 200);
    assert_eq!(
        body.trim_end(),
        expected_line(&engine, &[1.0, 2.0, 3.0, 4.0], 1, 1)
    );
    assert_eq!(server.model().generation(), 1);
    assert_eq!(server.stats().reload_failures, 1);

    // A valid artifact heals it via the same endpoint.
    let replacement = random_engine(106, 4, 2, 3, Similarity::Dot);
    replacement.save(&path).expect("re-save");
    let (status, body) = http(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("generation=2"), "{body}");
    let (_, body) = http(addr, "POST", "/predict", "1 2 3 4\n");
    assert_eq!(
        body.trim_end(),
        expected_line(&replacement, &[1.0, 2.0, 3.0, 4.0], 1, 2)
    );
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Keep-alive
// ---------------------------------------------------------------------------

#[test]
fn keep_alive_connections_serve_multiple_requests() {
    let path = temp_artifact("keepalive");
    let engine = random_engine(107, 3, 2, 4, Similarity::Cosine);
    engine.save(&path).expect("save");
    let server = Server::start(&path, ServerConfig::default()).expect("start");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for i in 0..3 {
        let body = "0.1 0.2 0.3\n";
        let request = format!(
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("write");
        // Read exactly one response: headers, then Content-Length bytes.
        let mut header = Vec::new();
        let mut one = [0u8; 1];
        while !header.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut one).expect("read header");
            header.push(one[0]);
        }
        let text = String::from_utf8(header).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200"), "request {i}: {text}");
        let length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .trim()
            .parse()
            .expect("length");
        let mut payload = vec![0u8; length];
        stream.read_exact(&mut payload).expect("read body");
        assert_eq!(
            String::from_utf8(payload).expect("utf8").trim_end(),
            expected_line(&engine, &[0.1, 0.2, 0.3], 1, 1),
            "request {i}"
        );
    }
    std::fs::remove_file(&path).ok();
}
