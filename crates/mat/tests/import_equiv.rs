//! The importer's differential proof: a synthetic dataset serialized as a
//! MAT v5 pair (both byte orders, uncompressed and both compressed
//! encodings, `double` and auto-narrowed integer storage), imported through
//! `zsl-import`'s library path, must reproduce the in-memory dataset — and
//! therefore the trained model's `GzslReport` — **bit-for-bit**. Also pins
//! chunk-size invariance: the streamed `features.zsb` bytes are identical
//! whatever `chunk_rows` the conversion used.

mod common;

use common::{scratch_dir, synth_xlsa, write_pair, PairOpts, SynthXlsa};
use zsl_core::data::{ClassMap, Dataset, DatasetBundle, SplitManifest, StreamingBundle};
use zsl_core::linalg::Matrix;
use zsl_core::{evaluate_gzsl, EszslConfig, GzslReport, Similarity};
use zsl_mat::{ByteOrder, Compression, MatBundle};

/// The in-memory reference: the same arrays assembled directly into a
/// `DatasetBundle`, no disk involved.
fn in_memory_bundle(ds: &SynthXlsa) -> DatasetBundle {
    let class_labels: Vec<u32> = (1..=ds.z as u32).collect();
    let mut unseen: Vec<u32> = ds.test_unseen.iter().map(|&i| ds.labels[i]).collect();
    unseen.sort_unstable();
    unseen.dedup();
    DatasetBundle {
        features: Matrix::from_vec(ds.n, ds.d, ds.features.clone()),
        labels: ds.labels.iter().map(|&l| l as usize - 1).collect(),
        signatures: Matrix::from_vec(ds.z, ds.a, ds.att.clone()),
        class_map: ClassMap::from_labels(&class_labels).expect("labels distinct"),
        manifest: SplitManifest {
            trainval: ds.trainval.clone(),
            test_seen: ds.test_seen.clone(),
            test_unseen: ds.test_unseen.clone(),
            unseen_classes: Some(unseen),
        },
    }
}

fn train_and_report(ds: &Dataset) -> GzslReport {
    let model = EszslConfig::new()
        .gamma(10.0)
        .lambda(0.1)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    evaluate_gzsl(&model, ds, Similarity::Dot).expect("evaluate")
}

fn report_bits(r: &GzslReport) -> Vec<u64> {
    let mut bits = vec![
        r.seen_accuracy.to_bits(),
        r.unseen_accuracy.to_bits(),
        r.harmonic_mean.to_bits(),
    ];
    for acc in r.per_class_seen.iter().chain(r.per_class_unseen.iter()) {
        bits.push(acc.map(f64::to_bits).unwrap_or(u64::MAX));
    }
    bits
}

#[test]
fn imported_bundle_reproduces_in_memory_report_bit_for_bit() {
    let ds = synth_xlsa(0xA1);
    let reference = in_memory_bundle(&ds);
    let ref_dataset = reference.to_dataset().expect("reference dataset");
    let ref_report = train_and_report(&ref_dataset);
    assert!(
        ref_report.harmonic_mean > 0.0,
        "degenerate reference report; the differential proof would be vacuous"
    );

    let variants = [
        ("le_plain", ByteOrder::Little, Compression::None, false),
        ("le_stored", ByteOrder::Little, Compression::Stored, false),
        (
            "le_fixed",
            ByteOrder::Little,
            Compression::FixedHuffman,
            true,
        ),
        ("be_plain", ByteOrder::Big, Compression::None, true),
        ("be_fixed", ByteOrder::Big, Compression::FixedHuffman, false),
    ];
    for (tag, order, compression, narrow) in variants {
        let dir = scratch_dir(&format!("equiv_{tag}"));
        let (res, att) = write_pair(
            &dir,
            &ds,
            PairOpts {
                order,
                compression,
                narrow,
            },
        );
        let bundle = MatBundle::open(&res, &att).expect(tag);
        assert_eq!(bundle.num_samples(), ds.n);
        assert_eq!(bundle.feature_dim(), ds.d);
        assert_eq!(bundle.num_classes(), ds.z);
        assert_eq!(bundle.attr_dim(), ds.a);
        let out = dir.join("bundle");
        let summary = bundle.convert_to_zsb(&out, 7).expect("convert");
        assert_eq!(summary.num_samples, ds.n);
        assert_eq!(summary.unseen_classes, 2);

        let imported = DatasetBundle::load(&out).expect("load converted bundle");
        // Structure and bytes identical to the in-memory reference.
        assert_eq!(imported.labels, reference.labels, "{tag}: labels");
        assert_eq!(imported.manifest, reference.manifest, "{tag}: manifest");
        assert_eq!(
            imported.features.as_slice(),
            reference.features.as_slice(),
            "{tag}: feature bytes"
        );
        assert_eq!(
            imported.signatures.as_slice(),
            reference.signatures.as_slice(),
            "{tag}: signature bytes"
        );

        // And so is everything downstream: the full GZSL report.
        let report = train_and_report(&imported.to_dataset().expect("dataset"));
        assert_eq!(
            report_bits(&report),
            report_bits(&ref_report),
            "{tag}: GzslReport drifted from the in-memory reference"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn conversion_is_chunk_size_invariant() {
    let ds = synth_xlsa(0xB2);
    let dir = scratch_dir("chunk_invariance");
    let (res, att) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Little,
            compression: Compression::FixedHuffman,
            narrow: false,
        },
    );
    let bundle = MatBundle::open(&res, &att).expect("open");
    let mut reference_bytes = None;
    for chunk_rows in [1usize, 7, 40, 10_000] {
        let out = dir.join(format!("bundle_{chunk_rows}"));
        bundle.convert_to_zsb(&out, chunk_rows).expect("convert");
        let bytes = std::fs::read(out.join("features.zsb")).expect("read zsb");
        match &reference_bytes {
            None => reference_bytes = Some(bytes),
            Some(reference) => assert_eq!(
                &bytes, reference,
                "features.zsb differs at chunk_rows={chunk_rows}"
            ),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_column_chunks_are_bounded_and_ordered() {
    let ds = synth_xlsa(0xC3);
    let dir = scratch_dir("stream_bounds");
    let (res, _att) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Big,
            compression: Compression::Stored,
            narrow: false,
        },
    );
    let file = zsl_mat::MatFile::open(&res).expect("open");
    let chunk_cols = 7;
    let mut reader = file.stream_columns("features", chunk_cols).expect("stream");
    assert_eq!(reader.feature_dim(), ds.d);
    assert_eq!(reader.total_cols(), ds.n);
    let mut rebuilt = Vec::new();
    while let Some(chunk) = reader.next_chunk().expect("chunk") {
        // The O(chunk_rows x d) memory bound: no chunk ever exceeds the
        // requested column count.
        assert!(chunk.rows() <= chunk_cols, "oversized chunk");
        assert_eq!(chunk.cols(), ds.d);
        rebuilt.extend_from_slice(chunk.as_slice());
    }
    assert_eq!(reader.cols_read(), ds.n);
    // Concatenated chunks = the row-major n x d matrix, bit for bit.
    assert_eq!(rebuilt, ds.features);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_bundle_over_imported_features_matches_in_memory_evaluation() {
    let ds = synth_xlsa(0xD4);
    let reference = in_memory_bundle(&ds);
    let ref_dataset = reference.to_dataset().expect("reference dataset");
    let model = EszslConfig::new()
        .gamma(10.0)
        .lambda(0.1)
        .build()
        .train(
            &ref_dataset.train_x,
            &ref_dataset.train_labels,
            &ref_dataset.seen_signatures,
        )
        .expect("train");
    let in_memory = evaluate_gzsl(&model, &ref_dataset, Similarity::Dot).expect("evaluate");

    let dir = scratch_dir("streaming_equiv");
    let (res, att) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Little,
            compression: Compression::FixedHuffman,
            narrow: false,
        },
    );
    let out = dir.join("bundle");
    MatBundle::open(&res, &att)
        .expect("open")
        .convert_to_zsb(&out, 5)
        .expect("convert");
    // Evaluate the same model against the imported bundle *streamed from
    // disk* in small chunks — same report bits as the in-memory source.
    let streaming = StreamingBundle::open(&out, 3).expect("streaming bundle");
    let streamed = evaluate_gzsl(&model, &streaming, Similarity::Dot).expect("evaluate streamed");
    assert_eq!(report_bits(&streamed), report_bits(&in_memory));
    std::fs::remove_dir_all(&dir).ok();
}
