//! Shared fixture machinery for the `zsl-mat` integration tests: a seeded
//! synthetic dataset in xlsa17 shape, and a helper that serializes it as a
//! `res101.mat` + `att_splits.mat` pair in any byte order / compression.
#![allow(dead_code)] // not every test binary uses every helper

use std::path::{Path, PathBuf};
use zsl_core::data::Rng;
use zsl_mat::{ArrayOpts, ByteOrder, Compression, MatWriter};

/// A synthetic dataset laid out exactly like an xlsa17 benchmark.
///
/// The `features` buffer is simultaneously the column-major `d x n` MATLAB
/// matrix (column `i` = sample `i`) and the row-major `n x d` matrix the
/// in-memory path uses — the byte layouts coincide, which is the identity
/// the importer exploits. Same for `att` (column-major `a x z` == row-major
/// `z x a`).
pub struct SynthXlsa {
    /// Samples.
    pub n: usize,
    /// Feature dimension.
    pub d: usize,
    /// Classes (first `seen` are seen).
    pub z: usize,
    /// Attributes per class.
    pub a: usize,
    /// Features: col-major `d x n` / row-major `n x d`.
    pub features: Vec<f64>,
    /// 1-based class label per sample.
    pub labels: Vec<u32>,
    /// Attributes: col-major `a x z` / row-major `z x a`.
    pub att: Vec<f64>,
    /// 0-based trainval sample indices.
    pub trainval: Vec<usize>,
    /// 0-based test-seen sample indices.
    pub test_seen: Vec<usize>,
    /// 0-based test-unseen sample indices.
    pub test_unseen: Vec<usize>,
}

/// Deterministic synthetic xlsa17 benchmark: 5 classes (3 seen, 2 unseen),
/// class-informative features so the GZSL accuracies are non-degenerate.
pub fn synth_xlsa(seed: u64) -> SynthXlsa {
    let (n, d, z, a) = (40usize, 6usize, 5usize, 4usize);
    let seen = 3usize;
    let mut rng = Rng::new(seed);

    // Class signatures: random normal columns (a x z, column-major).
    let att: Vec<f64> = (0..a * z).map(|_| rng.normal()).collect();
    // Random linear lift from attribute space to feature space.
    let lift: Vec<f64> = (0..d * a).map(|_| rng.normal()).collect();

    let mut labels = Vec::with_capacity(n);
    let mut features = vec![0.0; n * d];
    for i in 0..n {
        let class = i % z; // 0-based
        labels.push(class as u32 + 1);
        let sig = &att[class * a..(class + 1) * a];
        for row in 0..d {
            let mut v = 0.0;
            for (k, &s) in sig.iter().enumerate() {
                v += lift[row * a + k] * s;
            }
            features[i * d + row] = v + 0.1 * rng.normal();
        }
    }

    let mut trainval = Vec::new();
    let mut test_seen = Vec::new();
    let mut test_unseen = Vec::new();
    let mut seen_count = vec![0usize; z];
    for i in 0..n {
        let class = i % z;
        if class >= seen {
            test_unseen.push(i);
        } else if seen_count[class] % 4 == 0 {
            test_seen.push(i);
            seen_count[class] += 1;
        } else {
            trainval.push(i);
            seen_count[class] += 1;
        }
    }

    SynthXlsa {
        n,
        d,
        z,
        a,
        features,
        labels,
        att,
        trainval,
        test_seen,
        test_unseen,
    }
}

/// How the pair's numeric payloads are stored.
#[derive(Clone, Copy)]
pub struct PairOpts {
    /// File byte order.
    pub order: ByteOrder,
    /// Top-level element compression.
    pub compression: Compression,
    /// Store labels/locs as narrow integer element types (as MATLAB's
    /// auto-narrowing does) instead of `miDOUBLE`.
    pub narrow: bool,
}

/// Serialize the dataset as `res101.mat` + `att_splits.mat` under `dir`.
pub fn write_pair(dir: &Path, ds: &SynthXlsa, opts: PairOpts) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).expect("fixture dir");
    let array_opts = |store_as| ArrayOpts {
        store_as,
        compression: opts.compression,
        ..ArrayOpts::default()
    };
    let int_ty = if opts.narrow {
        zsl_mat::mat5::mi::UINT16
    } else {
        zsl_mat::mat5::mi::DOUBLE
    };

    let res_path = dir.join("res101.mat");
    let mut res = MatWriter::new(opts.order);
    res.add_array(
        "features",
        &[ds.d, ds.n],
        &ds.features,
        array_opts(zsl_mat::mat5::mi::DOUBLE),
    );
    let labels_f64: Vec<f64> = ds.labels.iter().map(|&l| l as f64).collect();
    res.add_array("labels", &[ds.n, 1], &labels_f64, array_opts(int_ty));
    res.write_to(&res_path).expect("write res101.mat");

    let att_path = dir.join("att_splits.mat");
    let mut att = MatWriter::new(opts.order);
    att.add_array(
        "att",
        &[ds.a, ds.z],
        &ds.att,
        array_opts(zsl_mat::mat5::mi::DOUBLE),
    );
    let one_based = |ix: &[usize]| -> Vec<f64> { ix.iter().map(|&i| i as f64 + 1.0).collect() };
    for (name, ix) in [
        ("trainval_loc", &ds.trainval),
        ("test_seen_loc", &ds.test_seen),
        ("test_unseen_loc", &ds.test_unseen),
    ] {
        att.add_array(name, &[ix.len(), 1], &one_based(ix), array_opts(int_ty));
    }
    att.write_to(&att_path).expect("write att_splits.mat");

    (res_path, att_path)
}

/// Unique scratch directory for a test.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsl_mat_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}
