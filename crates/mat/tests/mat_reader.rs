//! Error-path suite for the MAT level-5 reader: every malformed input the
//! importer can meet in the wild — truncation, bad magic, v7.3/HDF5
//! containers, unknown endian indicators, corrupt zlib payloads, schema
//! violations against the xlsa17 layout — must surface as the right typed
//! [`MatError`] variant, never a panic and never a misparse.

mod common;

use common::{scratch_dir, synth_xlsa, write_pair, PairOpts};
use std::path::{Path, PathBuf};
use zsl_mat::mat5::mi;
use zsl_mat::{ArrayOpts, ByteOrder, Compression, MatBundle, MatError, MatFile, MatWriter};

/// A minimal valid little-endian file holding one `double` matrix `m`.
fn single_array_file(dir: &Path, compression: Compression, complex: bool) -> PathBuf {
    let mut w = MatWriter::new(ByteOrder::Little);
    w.add_array(
        "m",
        &[2, 3],
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ArrayOpts {
            store_as: mi::DOUBLE,
            compression,
            complex,
            ..ArrayOpts::default()
        },
    );
    let path = dir.join("single.mat");
    w.write_to(&path).expect("write fixture");
    path
}

fn write_bytes(dir: &Path, name: &str, bytes: &[u8]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write raw fixture");
    path
}

#[test]
fn short_file_is_truncated() {
    let dir = scratch_dir("err_short");
    let path = write_bytes(&dir, "short.mat", &[0x4D; 64]);
    assert!(
        matches!(MatFile::open(&path), Err(MatError::Truncated { .. })),
        "64-byte file must be Truncated"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn level4_zero_magic_is_a_header_error() {
    // MAT level-4 files routinely begin with four zero bytes; level 5
    // guarantees the first four header-text bytes are nonzero.
    let dir = scratch_dir("err_v4");
    let path = write_bytes(&dir, "v4.mat", &[0u8; 256]);
    assert!(matches!(MatFile::open(&path), Err(MatError::Header { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hdf5_magic_is_unsupported_v73() {
    let dir = scratch_dir("err_hdf5");
    let mut bytes = vec![0u8; 512];
    bytes[..8].copy_from_slice(&[0x89, b'H', b'D', b'F', b'\r', b'\n', 0x1A, b'\n']);
    let path = write_bytes(&dir, "v73.mat", &bytes);
    assert!(matches!(
        MatFile::open(&path),
        Err(MatError::UnsupportedV73 { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_word_0x0200_is_unsupported_v73() {
    let dir = scratch_dir("err_v0200");
    let path = single_array_file(&dir, Compression::None, false);
    let mut bytes = std::fs::read(&path).expect("read");
    // Little-endian header: version u16 lives at 124..126.
    bytes[124] = 0x00;
    bytes[125] = 0x02;
    let path = write_bytes(&dir, "v0200.mat", &bytes);
    assert!(matches!(
        MatFile::open(&path),
        Err(MatError::UnsupportedV73 { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_endian_indicator_is_a_header_error() {
    let dir = scratch_dir("err_endian");
    let path = single_array_file(&dir, Compression::None, false);
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[126] = b'X';
    bytes[127] = b'Y';
    let path = write_bytes(&dir, "endian.mat", &bytes);
    let err = MatFile::open(&path).unwrap_err();
    match err {
        MatError::Header { message, .. } => {
            assert!(message.contains("endian"), "unhelpful message: {message}")
        }
        other => panic!("expected Header, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_inside_a_tag_or_element_is_truncated() {
    let dir = scratch_dir("err_trunc_elem");
    let path = single_array_file(&dir, Compression::None, false);
    let bytes = std::fs::read(&path).expect("read");
    // Cut mid-tag (header + 4 of the 8 tag bytes) and mid-element (header +
    // tag + a few body bytes): both must be typed truncations.
    for cut in [128 + 4, 128 + 8 + 10] {
        let path = write_bytes(&dir, "cut.mat", &bytes[..cut]);
        assert!(
            matches!(MatFile::open(&path), Err(MatError::Truncated { .. })),
            "cut at {cut} must be Truncated"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_compressed_stream_is_typed_not_a_panic() {
    let dir = scratch_dir("err_trunc_zlib");
    let path = single_array_file(&dir, Compression::FixedHuffman, false);
    let bytes = std::fs::read(&path).expect("read");
    let path = write_bytes(&dir, "cut.mat", &bytes[..bytes.len() - 20]);
    // The outer tag promises more compressed bytes than remain.
    assert!(matches!(
        MatFile::open(&path),
        Err(MatError::Truncated { .. } | MatError::Inflate { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_adler_trailer_is_a_checksum_error() {
    let dir = scratch_dir("err_adler");
    for compression in [Compression::Stored, Compression::FixedHuffman] {
        let path = single_array_file(&dir, compression, false);
        let mut bytes = std::fs::read(&path).expect("read");
        // The zlib stream is the last thing in the file; its final 4 bytes
        // are the Adler-32 trailer.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let path = write_bytes(&dir, "adler.mat", &bytes);
        // The scan only parses the matrix prefix, so open() succeeds; the
        // corruption surfaces when the value bytes are drained and verified.
        let file = MatFile::open(&path).expect("prefix scan tolerates a bad trailer");
        let err = file.read_numeric("m").unwrap_err();
        match err {
            MatError::Checksum {
                expected, actual, ..
            } => assert_ne!(expected, actual),
            other => panic!("expected Checksum, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_deflate_body_is_typed() {
    let dir = scratch_dir("err_deflate");
    let path = single_array_file(&dir, Compression::FixedHuffman, false);
    let mut bytes = std::fs::read(&path).expect("read");
    // Damage a byte in the middle of the deflate body (well past the outer
    // tag + zlib header, well before the trailer).
    let mid = 128 + 8 + 2 + 20;
    bytes[mid] ^= 0x5A;
    let path = write_bytes(&dir, "deflate.mat", &bytes);
    let outcome = MatFile::open(&path).and_then(|f| f.read_numeric("m"));
    assert!(
        matches!(
            outcome,
            Err(MatError::Inflate { .. }
                | MatError::Checksum { .. }
                | MatError::Truncated { .. }
                | MatError::Element { .. })
        ),
        "corrupt deflate body must be a typed error, got {outcome:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn complex_array_is_unsupported() {
    let dir = scratch_dir("err_complex");
    let path = single_array_file(&dir, Compression::None, true);
    let file = MatFile::open(&path).expect("open");
    assert!(matches!(
        file.read_numeric("m"),
        Err(MatError::Unsupported { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_required_variable_is_typed() {
    let dir = scratch_dir("err_missing_var");
    let ds = synth_xlsa(7);
    let opts = PairOpts {
        order: ByteOrder::Little,
        compression: Compression::None,
        narrow: false,
    };
    let (res, att) = write_pair(&dir, &ds, opts);

    // A res101.mat without 'labels'.
    let mut w = MatWriter::new(ByteOrder::Little);
    w.add_array(
        "features",
        &[ds.d, ds.n],
        &ds.features,
        ArrayOpts::default(),
    );
    let bad_res = dir.join("res_no_labels.mat");
    w.write_to(&bad_res).expect("write");
    match MatBundle::open(&bad_res, &att).unwrap_err() {
        MatError::MissingVariable { name, .. } => assert_eq!(name, "labels"),
        other => panic!("expected MissingVariable, got {other:?}"),
    }

    // An att_splits.mat without 'trainval_loc'.
    let mut w = MatWriter::new(ByteOrder::Little);
    w.add_array("att", &[ds.a, ds.z], &ds.att, ArrayOpts::default());
    let bad_att = dir.join("att_no_locs.mat");
    w.write_to(&bad_att).expect("write");
    assert!(matches!(
        MatBundle::open(&res, &bad_att).unwrap_err(),
        MatError::MissingVariable { .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Re-serialize the dataset with a mutation applied, then open the pair.
fn open_mutated(
    dir: &Path,
    mutate: impl FnOnce(&mut common::SynthXlsa),
) -> Result<MatBundle, MatError> {
    let mut ds = synth_xlsa(9);
    mutate(&mut ds);
    let (res, att) = write_pair(
        dir,
        &ds,
        PairOpts {
            order: ByteOrder::Little,
            compression: Compression::None,
            narrow: false,
        },
    );
    MatBundle::open(&res, &att)
}

#[test]
fn label_outside_att_class_count_is_a_schema_error() {
    let dir = scratch_dir("err_label_range");
    // att defines z classes; a label of z+1 has no signature column.
    let err = open_mutated(&dir, |ds| ds.labels[3] = ds.z as u32 + 1).unwrap_err();
    match err {
        MatError::Schema { message, .. } => assert!(
            message.contains("classes"),
            "message should point at the att class count: {message}"
        ),
        other => panic!("expected Schema, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn labels_length_disagreeing_with_features_is_a_schema_error() {
    let dir = scratch_dir("err_label_len");
    let ds = synth_xlsa(9);
    let (_, att) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Little,
            compression: Compression::None,
            narrow: false,
        },
    );
    // A res101.mat whose labels vector is one sample short of the features.
    let mut w = MatWriter::new(ByteOrder::Little);
    w.add_array(
        "features",
        &[ds.d, ds.n],
        &ds.features,
        ArrayOpts::default(),
    );
    let short: Vec<f64> = ds.labels[..ds.n - 1].iter().map(|&l| l as f64).collect();
    w.add_array("labels", &[ds.n - 1, 1], &short, ArrayOpts::default());
    let res = dir.join("res_short_labels.mat");
    w.write_to(&res).expect("write");
    let err = MatBundle::open(&res, &att).unwrap_err();
    assert!(matches!(err, MatError::Schema { .. }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_integral_split_index_is_a_schema_error() {
    let dir = scratch_dir("err_frac_loc");
    let ds = synth_xlsa(11);
    let (res, _) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Little,
            compression: Compression::None,
            narrow: false,
        },
    );
    // Hand-build an att_splits.mat whose trainval_loc holds 1.5.
    let mut w = MatWriter::new(ByteOrder::Little);
    w.add_array("att", &[ds.a, ds.z], &ds.att, ArrayOpts::default());
    w.add_array("trainval_loc", &[2, 1], &[1.5, 2.0], ArrayOpts::default());
    let one_based: Vec<f64> = ds.test_seen.iter().map(|&i| i as f64 + 1.0).collect();
    w.add_array(
        "test_seen_loc",
        &[one_based.len(), 1],
        &one_based,
        ArrayOpts::default(),
    );
    let one_based: Vec<f64> = ds.test_unseen.iter().map(|&i| i as f64 + 1.0).collect();
    w.add_array(
        "test_unseen_loc",
        &[one_based.len(), 1],
        &one_based,
        ArrayOpts::default(),
    );
    let att_path = dir.join("att_frac.mat");
    w.write_to(&att_path).expect("write");
    let err = MatBundle::open(&res, &att_path).unwrap_err();
    match err {
        MatError::Schema { message, .. } => assert!(
            message.contains("trainval_loc"),
            "message should name the offending variable: {message}"
        ),
        other => panic!("expected Schema, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn big_endian_prefix_scan_reports_correct_shapes() {
    // Not an error path, but the cheapest spot to pin the BE scan metadata:
    // dims/classes must come back identical to the LE reading.
    let dir = scratch_dir("be_meta");
    let ds = synth_xlsa(13);
    let (res, _) = write_pair(
        &dir,
        &ds,
        PairOpts {
            order: ByteOrder::Big,
            compression: Compression::FixedHuffman,
            narrow: true,
        },
    );
    let file = MatFile::open(&res).expect("open BE");
    let var = file.var("features").expect("features present");
    assert_eq!(var.dims, vec![ds.d, ds.n]);
    let labels = file.read_numeric("labels").expect("labels");
    assert_eq!(labels.dims, vec![ds.n, 1]);
    assert_eq!(labels.data.len(), ds.n);
    std::fs::remove_dir_all(&dir).ok();
}
