//! Golden-import pinning: two committed byte-exact `.mat` fixture pairs
//! (little-endian compressed, big-endian plain — same synthetic dataset)
//! must keep converting to byte-identical bundles and the same GZSL report
//! bits, release after release. If an intentional format change shifts the
//! bytes, regenerate with `make import-fixtures` (which runs the `#[ignore]`
//! test below) and commit the new digests it prints.

mod common;

use common::{synth_xlsa, write_pair, PairOpts};
use std::path::{Path, PathBuf};
use zsl_core::data::DatasetBundle;
use zsl_core::{evaluate_gzsl, EszslConfig, Similarity};
use zsl_mat::{ByteOrder, Compression, MatBundle};

/// FNV-1a digests of the converted bundle files. Both fixture variants must
/// produce these same bytes — the on-disk byte order and compression of the
/// source `.mat` never leak into the output.
const GOLDEN_FEATURES_FNV: u64 = 0x06ab9c7f1b83d6dd;
const GOLDEN_SIGNATURES_FNV: u64 = 0x8caacf2171bd0fd4;
const GOLDEN_SPLITS_FNV: u64 = 0xb07aceb556d1c255;
/// `(seen, unseen, harmonic)` accuracy bits of the ESZSL GZSL report trained
/// from the converted bundle.
const GOLDEN_REPORT_BITS: [u64; 3] = [0x3ff0000000000000, 0x3fe2000000000000, 0x3fe70a3d70a3d70a];

const FIXTURE_SEED: u64 = 0xA1;
const VARIANTS: [(&str, ByteOrder, Compression); 2] = [
    ("le_fixed", ByteOrder::Little, Compression::FixedHuffman),
    ("be_plain", ByteOrder::Big, Compression::None),
];

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn convert_fixture(name: &str) -> (u64, u64, u64, [u64; 3]) {
    let src = fixtures_root().join(name);
    let bundle = MatBundle::open(&src.join("res101.mat"), &src.join("att_splits.mat"))
        .unwrap_or_else(|e| panic!("open fixture {name}: {e}"));
    let out = common::scratch_dir(&format!("golden_{name}"));
    bundle.convert_to_zsb(&out, 7).expect("convert");
    let digests = (
        fnv1a(&std::fs::read(out.join("features.zsb")).expect("features.zsb")),
        fnv1a(&std::fs::read(out.join("signatures.csv")).expect("signatures.csv")),
        fnv1a(&std::fs::read(out.join("splits.txt")).expect("splits.txt")),
    );
    let ds = DatasetBundle::load(&out)
        .expect("load")
        .to_dataset()
        .expect("dataset");
    let model = EszslConfig::new()
        .gamma(10.0)
        .lambda(0.1)
        .build()
        .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
        .expect("train");
    let report = evaluate_gzsl(&model, &ds, Similarity::Dot).expect("evaluate");
    let bits = [
        report.seen_accuracy.to_bits(),
        report.unseen_accuracy.to_bits(),
        report.harmonic_mean.to_bits(),
    ];
    std::fs::remove_dir_all(&out).ok();
    (digests.0, digests.1, digests.2, bits)
}

#[test]
fn committed_fixtures_convert_to_the_golden_bundle() {
    for (name, _, _) in VARIANTS {
        let (features, signatures, splits, bits) = convert_fixture(name);
        assert_eq!(
            features, GOLDEN_FEATURES_FNV,
            "{name}: features.zsb bytes drifted"
        );
        assert_eq!(
            signatures, GOLDEN_SIGNATURES_FNV,
            "{name}: signatures.csv bytes drifted"
        );
        assert_eq!(
            splits, GOLDEN_SPLITS_FNV,
            "{name}: splits.txt bytes drifted"
        );
        assert_eq!(bits, GOLDEN_REPORT_BITS, "{name}: GzslReport bits drifted");
    }
}

/// Rewrites the committed fixture pairs and prints the constants to paste
/// above. Run via `make import-fixtures`.
#[test]
#[ignore = "regenerates committed fixtures; run explicitly via `make import-fixtures`"]
fn regenerate_import_fixtures() {
    let ds = synth_xlsa(FIXTURE_SEED);
    for (name, order, compression) in VARIANTS {
        let dir = fixtures_root().join(name);
        std::fs::create_dir_all(&dir).expect("fixture dir");
        write_pair(
            &dir,
            &ds,
            PairOpts {
                order,
                compression,
                narrow: matches!(order, ByteOrder::Big),
            },
        );
    }
    let (features, signatures, splits, bits) = convert_fixture(VARIANTS[0].0);
    println!("const GOLDEN_FEATURES_FNV: u64 = {features:#018x};");
    println!("const GOLDEN_SIGNATURES_FNV: u64 = {signatures:#018x};");
    println!("const GOLDEN_SPLITS_FNV: u64 = {splits:#018x};");
    println!(
        "const GOLDEN_REPORT_BITS: [u64; 3] = [{:#018x}, {:#018x}, {:#018x}];",
        bits[0], bits[1], bits[2]
    );
}
