//! Real-benchmark acceptance: when the xlsa17 "Proposed Splits" datasets
//! are available locally, import each one end-to-end and pin the ESZSL GZSL
//! harmonic mean to the published number within a ±0.02 tolerance window.
//!
//! Gated on `ZSL_DATA_DIR` pointing at a directory laid out as
//! `$ZSL_DATA_DIR/{AWA2,CUB,SUN,APY}/{res101.mat,att_splits.mat}`. Absent
//! datasets are reported as `[skipped]` lines rather than failures, so the
//! suite stays green on machines without the multi-GB downloads.

use std::path::PathBuf;
use zsl_core::data::DatasetBundle;
use zsl_core::{evaluate_gzsl, EszslConfig, Similarity};
use zsl_mat::MatBundle;

struct Benchmark {
    name: &'static str,
    /// ESZSL regularizers, as `10^exponent` per the published grid search.
    gamma: f64,
    lambda: f64,
    /// Published GZSL numbers for ESZSL on the proposed splits.
    seen: f64,
    unseen: f64,
    harmonic: f64,
}

const TOLERANCE: f64 = 0.02;

const BENCHMARKS: [Benchmark; 4] = [
    Benchmark {
        name: "AWA2",
        gamma: 1e3,
        lambda: 1e0,
        seen: 0.8884,
        unseen: 0.0404,
        harmonic: 0.0772,
    },
    Benchmark {
        name: "CUB",
        gamma: 1e3,
        lambda: 1e-1,
        seen: 0.6380,
        unseen: 0.1263,
        harmonic: 0.2108,
    },
    Benchmark {
        name: "SUN",
        gamma: 1e3,
        lambda: 1e2,
        seen: 0.2841,
        unseen: 0.1375,
        harmonic: 0.1853,
    },
    Benchmark {
        name: "APY",
        gamma: 1e3,
        lambda: 1e-1,
        seen: 0.8017,
        unseen: 0.0241,
        harmonic: 0.0468,
    },
];

#[test]
fn published_eszsl_gzsl_numbers_within_tolerance() {
    let Some(data_dir) = std::env::var_os("ZSL_DATA_DIR").map(PathBuf::from) else {
        println!("[skipped] xlsa17 acceptance: ZSL_DATA_DIR not set");
        return;
    };
    let mut failures = Vec::new();
    for bench in &BENCHMARKS {
        let dir = data_dir.join(bench.name);
        let res101 = dir.join("res101.mat");
        let att_splits = dir.join("att_splits.mat");
        if !res101.is_file() || !att_splits.is_file() {
            println!(
                "[skipped] xlsa17 acceptance: {} not found under {}",
                bench.name,
                dir.display()
            );
            continue;
        }
        let bundle = MatBundle::open(&res101, &att_splits)
            .unwrap_or_else(|e| panic!("{}: open failed: {e}", bench.name));
        let out = std::env::temp_dir().join(format!(
            "zsl_xlsa_accept_{}_{}",
            std::process::id(),
            bench.name
        ));
        std::fs::remove_dir_all(&out).ok();
        bundle
            .convert_to_zsb(&out, zsl_mat::DEFAULT_CHUNK_ROWS)
            .unwrap_or_else(|e| panic!("{}: convert failed: {e}", bench.name));
        let ds = DatasetBundle::load(&out)
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", bench.name))
            .to_dataset()
            .unwrap_or_else(|e| panic!("{}: dataset failed: {e}", bench.name));
        let model = EszslConfig::new()
            .gamma(bench.gamma)
            .lambda(bench.lambda)
            .build()
            .train(&ds.train_x, &ds.train_labels, &ds.seen_signatures)
            .unwrap_or_else(|e| panic!("{}: train failed: {e}", bench.name));
        let report = evaluate_gzsl(&model, &ds, Similarity::Dot)
            .unwrap_or_else(|e| panic!("{}: evaluate failed: {e}", bench.name));
        std::fs::remove_dir_all(&out).ok();
        println!(
            "{}: S {:.4} (published {:.4}), U {:.4} (published {:.4}), \
             H {:.4} (published {:.4})",
            bench.name,
            report.seen_accuracy,
            bench.seen,
            report.unseen_accuracy,
            bench.unseen,
            report.harmonic_mean,
            bench.harmonic,
        );
        if (report.harmonic_mean - bench.harmonic).abs() > TOLERANCE {
            failures.push(format!(
                "{}: harmonic mean {:.4} outside {:.4} +/- {TOLERANCE}",
                bench.name, report.harmonic_mean, bench.harmonic
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
