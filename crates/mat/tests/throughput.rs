//! Import throughput baseline for the `.mat` ingestion path.
//!
//! Prints a stable `[bench] mat_import_throughput` line so future PRs can
//! diff importer speed. `#[ignore]`d like the core harness; run with
//!
//! ```sh
//! cargo test --release -p zsl-mat --test throughput -- --ignored --nocapture
//! ```
//!
//! `ZSL_BENCH_SMOKE=1` shrinks the workload (CI); `ZSL_BENCH_JSON=<path>`
//! merges a `"mat_import"` entry into the benchmark JSON written by the
//! core throughput suite.

mod common;

use common::scratch_dir;
use std::time::Instant;
use zsl_core::data::Rng;
use zsl_mat::{mat5::mi, ArrayOpts, ByteOrder, Compression, MatBundle, MatWriter};

fn smoke() -> bool {
    std::env::var("ZSL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

#[test]
#[ignore = "timing harness; run with --release -- --ignored --nocapture"]
fn mat_import_throughput() {
    let (n, d, z, a) = if smoke() {
        (400usize, 32usize, 10usize, 8usize)
    } else {
        (2000usize, 128usize, 20usize, 16usize)
    };
    let mut rng = Rng::new(0xBEEF);
    let features: Vec<f64> = (0..n * d).map(|_| rng.normal()).collect();
    let att: Vec<f64> = (0..a * z).map(|_| rng.normal()).collect();
    let labels: Vec<f64> = (0..n).map(|i| (i % z) as f64 + 1.0).collect();
    let locs: [Vec<f64>; 3] = [
        (1..=n / 2).map(|i| i as f64).collect(),
        (n / 2 + 1..=3 * n / 4).map(|i| i as f64).collect(),
        (3 * n / 4 + 1..=n).map(|i| i as f64).collect(),
    ];

    let dir = scratch_dir("bench_import");
    let mut timings = Vec::new();
    for (tag, compression) in [
        ("plain", Compression::None),
        ("zlib", Compression::FixedHuffman),
    ] {
        let sub = dir.join(tag);
        std::fs::create_dir_all(&sub).expect("dir");
        let opts = ArrayOpts {
            store_as: mi::DOUBLE,
            compression,
            ..ArrayOpts::default()
        };
        let mut res = MatWriter::new(ByteOrder::Little);
        res.add_array("features", &[d, n], &features, opts);
        res.add_array("labels", &[n, 1], &labels, opts);
        let res_path = sub.join("res101.mat");
        res.write_to(&res_path).expect("write res");
        let mut attf = MatWriter::new(ByteOrder::Little);
        attf.add_array("att", &[a, z], &att, opts);
        for (name, loc) in ["trainval_loc", "test_seen_loc", "test_unseen_loc"]
            .iter()
            .zip(&locs)
        {
            attf.add_array(name, &[loc.len(), 1], loc, opts);
        }
        let att_path = sub.join("att_splits.mat");
        attf.write_to(&att_path).expect("write att");

        let start = Instant::now();
        let bundle = MatBundle::open(&res_path, &att_path).expect("open");
        let out = sub.join("bundle");
        bundle.convert_to_zsb(&out, 256).expect("convert");
        let secs = start.elapsed().as_secs_f64();
        timings.push((tag, secs, n as f64 / secs));
    }
    std::fs::remove_dir_all(&dir).ok();

    let line = format!(
        "[bench] mat_import_throughput n={n} d={d} chunk_rows=256: \
         plain={:.4}s ({:.0} samples/s) zlib={:.4}s ({:.0} samples/s)",
        timings[0].1, timings[0].2, timings[1].1, timings[1].2
    );
    println!("{line}");

    if let Ok(json_path) = std::env::var("ZSL_BENCH_JSON") {
        merge_bench_json(&json_path, n, d, &timings);
        println!("[bench] merged mat_import into {json_path}");
    }
}

/// Insert (or replace) a single `"mat_import"` line in the benchmark JSON
/// the core suite writes, just before its closing brace. Keeps this test
/// and the core writer from fighting over the file format: the core suite
/// owns the document, we own exactly one line of it.
fn merge_bench_json(path: &str, n: usize, d: usize, timings: &[(&str, f64, f64)]) {
    let entry = format!(
        "  ,\"mat_import\": {{ \"n\": {n}, \"d\": {d}, \"chunk_rows\": 256, \
         \"plain_s\": {:.4}, \"plain_rows_per_s\": {:.0}, \
         \"zlib_s\": {:.4}, \"zlib_rows_per_s\": {:.0} }}",
        timings[0].1, timings[0].2, timings[1].1, timings[1].2
    );
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"core-trainers\"\n}\n".to_string());
    let kept: Vec<&str> = doc
        .lines()
        .filter(|l| !l.trim_start().starts_with(",\"mat_import\""))
        .collect();
    let Some(close) = kept.iter().rposition(|l| l.trim() == "}") else {
        eprintln!("[bench] {path} has no closing brace; leaving it untouched");
        return;
    };
    let mut out: Vec<String> = kept[..close].iter().map(|s| s.to_string()).collect();
    out.push(entry);
    out.extend(kept[close..].iter().map(|s| s.to_string()));
    let mut text = out.join("\n");
    text.push('\n');
    std::fs::write(path, text).expect("write bench json");
}
