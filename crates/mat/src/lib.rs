//! # zsl-mat — std-only MATLAB `.mat` ingestion
//!
//! The published GZSL benchmarks (AWA2, CUB, SUN, APY) ship as MAT-file
//! level-5 binaries — `res101.mat` feature dumps plus `att_splits.mat`
//! attribute/split files in the xlsa17 "Proposed Splits" layout. This crate
//! reads that format with **zero dependencies beyond `std`** and converts
//! it into the bundle directories [`zsl_core`] trains from, so the real
//! benchmarks run end-to-end through the same loaders, trainers, and
//! evaluation protocol as the synthetic fixtures.
//!
//! Three layers:
//!
//! | Module | Role |
//! |--------|------|
//! | [`inflate`] | std-only RFC 1950/1951 zlib decompressor (fixed + dynamic Huffman, stored blocks, Adler-32 verification) for v7 `miCOMPRESSED` elements |
//! | [`mat5`] | the MAT level-5 container: header/endianness validation, tag/element scan, `miMATRIX` sub-element tree, lazy numeric reads; [`stream`] adds bounded-memory column streaming |
//! | [`xlsa`] | the xlsa17 schema mapping: `res101.mat` + `att_splits.mat` → `features.zsb` + `signatures.csv` + `splits.txt` |
//!
//! The `zsl-import` binary wraps [`MatBundle::convert_to_zsb`] as a CLI.
//!
//! Design commitments, tested in `tests/`:
//!
//! - **Typed rejection, never a panic**: truncated tags, bad magic, MAT
//!   v7.3/HDF5 containers, wrong endian indicators, corrupt Adler-32
//!   trailers, and schema mismatches against `att` all surface as
//!   [`MatError`] variants.
//! - **Bounded memory**: feature matrices are decoded `chunk_rows` columns
//!   at a time and streamed into [`zsl_core::ZsbWriter`]; peak resident
//!   feature memory is `O(chunk_rows x d)`, never `O(N x d)`.
//! - **Bit-identical imports**: a dataset round-tripped through a `.mat`
//!   file (either endianness, compressed or not) and back through the
//!   bundle loader produces the *same bytes* — and therefore the same
//!   [`zsl_core::GzslReport`] bits — as the in-memory original.

pub mod error;
pub mod inflate;
pub mod mat5;
pub mod stream;
pub mod writer;
pub mod xlsa;

pub use error::MatError;
pub use inflate::{adler32, InflateError, ZlibDecoder};
pub use mat5::{ByteOrder, MatClass, MatFile, MatVar, NumericArray};
pub use stream::ColumnChunkReader;
pub use writer::{ArrayOpts, Compression, MatWriter};
pub use xlsa::{ImportSummary, MatBundle, DEFAULT_CHUNK_ROWS};
